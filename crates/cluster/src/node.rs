//! One scoring node as the router sees it: a wrapped [`ScoringService`]
//! plus liveness, incarnation and failover bookkeeping.
//!
//! The node keeps *two* liveness bits. `alive` is ground truth — whether
//! the simulated process is running. `router_live` is the router's belief,
//! which lags reality by the heartbeat detection window: between a crash
//! and its detection the router keeps dispatching into the void, exactly
//! as a real fleet does, and those requests sit in `outstanding` until the
//! missed heartbeats trip failover.

use crate::store::SharedStore;
use kyp_serve::{ScoringService, ServeResponse};
use std::collections::BTreeMap;

/// A request the router has handed to a node and not yet seen complete.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    /// The request URL as received.
    pub url: String,
    /// Canonical landing key (ring/cache key) — resolved once at arrival.
    pub landing_key: String,
    /// The *original* arrival instant; failover re-dispatches keep it so
    /// end-to-end latency spans every attempt.
    pub arrival_ms: u64,
    /// Failover re-dispatches consumed so far.
    pub retries: u32,
}

/// One node slot in the cluster.
#[derive(Debug)]
pub(crate) struct NodeSlot {
    /// The wrapped scoring service (its own queue, batcher, cache shard).
    pub service: ScoringService<SharedStore>,
    /// Ground truth: is the simulated process up?
    pub alive: bool,
    /// The router's belief, trailing `alive` by the detection window.
    pub router_live: bool,
    /// Restart count; names the incarnation in the crash schedule.
    pub incarnation: u32,
    /// Crashes suffered over the run.
    pub crashes: u64,
    /// Responses finalized from this node.
    pub delivered: u64,
    /// When the current incarnation came up.
    pub up_since_ms: u64,
    /// Scheduled crash instant of the current incarnation, if any.
    pub crash_at: Option<u64>,
    /// When the router will have missed enough heartbeats to declare the
    /// node dead (set at crash time).
    pub detect_at: Option<u64>,
    /// When the crashed process restarts (cold), if down.
    pub recover_at: Option<u64>,
    /// When the router re-admits the node (first heartbeat heard after
    /// recovery), if down.
    pub relive_at: Option<u64>,
    /// Requests dispatched here and not yet completed, by id. Ordered so
    /// failover re-dispatches requests in id order, not map order.
    pub outstanding: BTreeMap<u64, Pending>,
    /// Responses the service has produced whose completion instant is
    /// still in the future; a crash before that instant destroys them.
    pub inflight: Vec<ServeResponse>,
}

impl NodeSlot {
    /// A fresh, live node wrapping `service`.
    pub fn new(service: ScoringService<SharedStore>) -> Self {
        NodeSlot {
            service,
            alive: true,
            router_live: true,
            incarnation: 0,
            crashes: 0,
            delivered: 0,
            up_since_ms: 0,
            crash_at: None,
            detect_at: None,
            recover_at: None,
            relive_at: None,
            outstanding: BTreeMap::new(),
            inflight: Vec::new(),
        }
    }

    /// The earliest completion instant among in-flight responses.
    pub fn next_completion(&self) -> Option<u64> {
        self.inflight.iter().map(|r| r.completed_ms).min()
    }

    /// Takes every in-flight response completing at or before `now_ms`,
    /// preserving production order.
    pub fn take_completions(&mut self, now_ms: u64) -> Vec<ServeResponse> {
        let mut done = Vec::new();
        let mut rest = Vec::with_capacity(self.inflight.len());
        for r in self.inflight.drain(..) {
            if r.completed_ms <= now_ms {
                done.push(r);
            } else {
                rest.push(r);
            }
        }
        self.inflight = rest;
        done
    }
}
