//! The cluster router: admission, placement, dispatch, failure detection
//! and failover over a fleet of scoring nodes.
//!
//! # Event model
//!
//! The router is a deterministic discrete-event loop over the same virtual
//! clock as its nodes. Between arrivals it processes, in `(time, kind,
//! node)` order: response completions, node batch flushes, crashes,
//! crash detections (missed heartbeats), cold restarts and re-admissions.
//! Heartbeats are never simulated beat-by-beat — a node's detection
//! instant is *derived* from its crash instant and the heartbeat grid, so
//! the event queue stays O(nodes), not O(virtual time).
//!
//! # Determinism contract
//!
//! The verdict stream — the id-sorted [`ServeResponse::verdict_line`]
//! projection of every response — is byte-identical across shard counts,
//! ring placements, thread counts and crash schedules, because every
//! byte-affecting decision is placement-independent:
//!
//! - **Fetch at the router.** Pages are fetched once, at arrival, in
//!   trace order, whatever the cluster shape ([`crate::SharedStore`]).
//!   Stateful sources see one canonical fetch sequence; nodes only read.
//! - **Shed at the router.** Cluster admission is a token bucket over
//!   arrival instants only. Per-node backpressure never sheds: a refusal
//!   routes around to the next ring candidate or parks for retry, so
//!   which node refused can never change *whether* a request is answered.
//! - **Pure verdicts.** A verdict is a pure function of the fetched page,
//!   so *which* node classifies it (and whether its cache shard was warm
//!   or lost in a crash) cannot change the bytes.
//!
//! Completion *order* legitimately varies with the cluster shape (batch
//! boundaries move), which is why the canonical stream is id-sorted — see
//! [`verdict_stream`].

use crate::crash::CrashPlan;
use crate::node::{NodeSlot, Pending};
use crate::report::{ClusterReport, FailoverCounters, NodeReport, RoutingCounters, ShedCounters};
use crate::ring::HashRing;
use crate::store::SharedStore;
use kyp_core::{CascadeClassifier, CascadeDecision, Pipeline};
use kyp_obs::VerdictStage;
use kyp_serve::{
    canonical_key, CacheState, CascadeCounters, LatencyHistogram, PageSource, ScoringService,
    ServeConfig, ServeOutcome, ServeRequest, ServeResponse,
};
use std::collections::{BTreeMap, VecDeque};

/// Shed reason when cluster admission (the token bucket) refuses a
/// request on arrival.
pub const SHED_CLUSTER_OVERLOAD: &str = "cluster_overload";

/// Shed reason when a request exhausts its failover retry budget.
pub const SHED_RETRIES_EXHAUSTED: &str = "retries_exhausted";

/// Cluster-level admission: a token bucket over virtual arrival instants.
///
/// Deliberately placement-independent — refills depend only on arrival
/// times, so the set of admitted requests is invariant across shard
/// counts, placements and crash schedules (the determinism contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Sustained admission rate, requests per virtual second.
    pub rate_per_sec: u64,
    /// Bucket depth: the largest burst admitted at once (clamped ≥ 1).
    pub burst: u64,
}

/// Tuning of a [`ClusterService`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Scoring nodes (cache shards) in the fleet, clamped ≥ 1.
    pub shards: usize,
    /// Replica fan-out for hot landing URLs, clamped to `1..=shards`.
    pub replicas: usize,
    /// Virtual tokens per node on the hash ring, clamped ≥ 1.
    pub vnodes: usize,
    /// Seed of the ring placement; verdict bytes are invariant under it.
    pub placement_seed: u64,
    /// Configuration of every node's scoring service.
    pub node: ServeConfig,
    /// Cluster admission policy; `None` admits everything.
    pub admission: Option<AdmissionPolicy>,
    /// Heartbeat period of the virtual failure detector, clamped ≥ 1 ms.
    pub heartbeat_interval_ms: u64,
    /// Consecutive missed heartbeats before a node is declared dead,
    /// clamped ≥ 1.
    pub miss_threshold: u32,
    /// Failover re-dispatches a request may consume before it is shed
    /// with [`SHED_RETRIES_EXHAUSTED`].
    pub retry_budget: u32,
    /// Requests to one landing URL before it counts as hot and fans out
    /// over the replica set.
    pub hot_threshold: u64,
    /// Crash/recovery schedule; `None` keeps every node up forever.
    pub crash: Option<CrashPlan>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            replicas: 1,
            vnodes: 16,
            placement_seed: 1,
            node: ServeConfig::default(),
            admission: None,
            heartbeat_interval_ms: 100,
            miss_threshold: 3,
            retry_budget: 16,
            hot_threshold: 3,
            crash: None,
        }
    }
}

/// One response as the cluster reports it: the node that served it (if
/// any), the failover retries it consumed, and the underlying service
/// response with end-to-end latency (original arrival to final
/// completion, across every failover attempt).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterResponse {
    /// The node that produced the response; `None` for router-level
    /// outcomes (admission shed, unfetchable, retry exhaustion).
    pub node: Option<usize>,
    /// Failover re-dispatches this request consumed.
    pub retries: u32,
    /// The response itself.
    pub response: ServeResponse,
}

impl ClusterResponse {
    /// The timing-, cache-, node- and placement-independent projection of
    /// this response — exactly [`ServeResponse::verdict_line`].
    pub fn verdict_line(&self) -> String {
        self.response.verdict_line()
    }
}

/// The canonical verdict stream of a cluster run: every response's
/// [`ClusterResponse::verdict_line`], sorted by request id.
///
/// Completion order is a timing artifact (batch boundaries move with the
/// cluster shape); the id-sorted projection is what the determinism
/// contract pins down and what `kyp cluster --verdicts` writes for CI's
/// byte-comparison.
pub fn verdict_stream(responses: &[ClusterResponse]) -> Vec<String> {
    let mut keyed: Vec<(u64, String)> = responses
        .iter()
        .map(|r| (r.response.id, r.verdict_line()))
        .collect();
    keyed.sort_by_key(|&(id, _)| id);
    keyed.into_iter().map(|(_, line)| line).collect()
}

/// Internal event kinds, in tie-break order at equal instants: finalize
/// completions before anything else, flush before crashing, detect before
/// recovering, recover before re-admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Completion,
    NodeDue,
    Crash,
    Detect,
    Recover,
    Relive,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: u64,
    kind: EventKind,
    node: usize,
}

/// A deterministic multi-node scoring cluster.
///
/// Wraps `shards` [`ScoringService`] nodes behind a consistent-hash
/// router. Drive it like a single service: [`ClusterService::push`] per
/// arrival, [`ClusterService::finish`] to drain, or
/// [`ClusterService::run_trace`] for a whole trace.
#[derive(Debug)]
pub struct ClusterService<S> {
    config: ClusterConfig,
    ring: HashRing,
    source: S,
    store: SharedStore,
    nodes: Vec<NodeSlot>,
    /// The URL-only cascade pre-filter, screening at the router so
    /// cascade-final requests never fetch, route or queue.
    cascade: Option<CascadeClassifier>,
    cascade_counters: CascadeCounters,
    /// Requests per landing key — the hot-URL detector. Ordered map so
    /// nothing here can leak iteration order (kyp-lint D01).
    hot: BTreeMap<String, u64>,
    /// Requests every live candidate refused, awaiting capacity.
    parked: VecDeque<(u64, Pending)>,
    /// Token bucket state, in millitokens.
    bucket_milli: u64,
    last_refill_ms: u64,
    /// Crash downtime clamped above the detection window.
    downtime_ms: u64,
    last_arrival_ms: u64,
    first_arrival_ms: Option<u64>,
    last_event_ms: u64,
    requests: u64,
    answered: u64,
    unfetchable: u64,
    degraded: u64,
    shed_by: ShedCounters,
    failover: FailoverCounters,
    routing: RoutingCounters,
    latency: LatencyHistogram,
}

impl<S: PageSource> ClusterService<S> {
    /// A fresh cluster of `config.shards` nodes, each scoring with its
    /// own clone of `pipeline`, all reading pages the router fetches
    /// from `source`.
    pub fn new(pipeline: Pipeline, source: S, config: ClusterConfig) -> Self {
        let config = ClusterConfig {
            shards: config.shards.max(1),
            replicas: config.replicas.clamp(1, config.shards.max(1)),
            vnodes: config.vnodes.max(1),
            heartbeat_interval_ms: config.heartbeat_interval_ms.max(1),
            miss_threshold: config.miss_threshold.max(1),
            ..config
        };
        let ring = HashRing::new(config.shards, config.vnodes, config.placement_seed);
        let store = SharedStore::new();
        let detection_window = u64::from(config.miss_threshold) * config.heartbeat_interval_ms;
        let downtime_ms = config
            .crash
            .as_ref()
            .map_or(0, |plan| plan.downtime_ms.max(detection_window + 1));
        let mut nodes = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let service = ScoringService::new(pipeline.clone(), store.clone(), config.node.clone());
            let mut slot = NodeSlot::new(service);
            if let Some(plan) = &config.crash {
                slot.crash_at = plan.crash_after(i, 0);
            }
            nodes.push(slot);
        }
        let bucket_milli = config
            .admission
            .map_or(0, |p| p.burst.max(1).saturating_mul(1_000));
        ClusterService {
            ring,
            source,
            store,
            nodes,
            cascade: None,
            cascade_counters: CascadeCounters::default(),
            hot: BTreeMap::new(),
            parked: VecDeque::new(),
            bucket_milli,
            last_refill_ms: 0,
            downtime_ms,
            last_arrival_ms: 0,
            first_arrival_ms: None,
            last_event_ms: 0,
            requests: 0,
            answered: 0,
            unfetchable: 0,
            degraded: 0,
            shed_by: ShedCounters::default(),
            failover: FailoverCounters::default(),
            routing: RoutingCounters::default(),
            latency: LatencyHistogram::new(),
            config,
        }
    }

    /// The configuration in force (after clamping).
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Installs the URL-only cascade pre-filter at the router: admitted
    /// requests whose URL score falls outside the uncertainty band are
    /// answered immediately at arrival — no fetch, no placement, no node
    /// — tagged [`VerdictStage::UrlOnly`]. Prescreening is a pure
    /// function of the URL string, so the decision (and the verdict
    /// stream) stays invariant across shard counts, placements, thread
    /// counts and crash schedules.
    pub fn with_cascade(mut self, cascade: CascadeClassifier) -> Self {
        self.cascade = Some(cascade);
        self
    }

    /// The installed cascade pre-filter, if any.
    pub fn cascade(&self) -> Option<&CascadeClassifier> {
        self.cascade.as_ref()
    }

    /// Feeds one arrival into the cluster, returning every response
    /// finalized up to this arrival instant plus any immediate
    /// router-level outcome for the request itself.
    pub fn push(&mut self, request: ServeRequest) -> Vec<ClusterResponse> {
        let arrival = request.arrival_ms.max(self.last_arrival_ms);
        self.last_arrival_ms = arrival;
        self.first_arrival_ms.get_or_insert(arrival);
        self.note_time(arrival);

        let mut out = Vec::new();
        self.run_events_until(arrival, &mut out);
        self.drain_parked(arrival, &mut out);

        self.requests += 1;
        if !self.admit(arrival) {
            self.shed_by.admission += 1;
            out.push(router_outcome(
                request.id,
                request.url,
                ServeOutcome::Shed {
                    reason: SHED_CLUSTER_OVERLOAD.to_owned(),
                },
                arrival,
                0,
            ));
            return out;
        }

        // Stage one: the URL-only pre-filter, after admission but before
        // the fetch — a cascade-final request costs neither a scrape nor
        // a node dispatch.
        if let Some(cascade) = &self.cascade {
            let decision = cascade.prescreen(&request.url);
            self.cascade_counters.screened += 1;
            match decision {
                CascadeDecision::Final(verdict) => {
                    self.cascade_counters.url_only += 1;
                    self.answered += 1;
                    self.latency.record(0);
                    out.push(ClusterResponse {
                        node: None,
                        retries: 0,
                        response: ServeResponse {
                            id: request.id,
                            url: request.url,
                            outcome: ServeOutcome::from_verdict(&verdict.verdict),
                            cache: CacheState::Skipped,
                            degraded: false,
                            latency_ms: 0,
                            completed_ms: arrival,
                            stage: VerdictStage::UrlOnly,
                        },
                    });
                    return out;
                }
                CascadeDecision::Uncertain { .. } => self.cascade_counters.fallthrough += 1,
                CascadeDecision::Unscorable => self.cascade_counters.unscorable += 1,
            }
        }

        // Fetch once, at the router, in trace order — the determinism
        // anchor: the page source sees the same fetch sequence whatever
        // the cluster shape.
        let store_key = SharedStore::key_of(&request.url);
        if !self.store.contains(&store_key) {
            let result = self.source.fetch(&request.url);
            self.store.put(store_key.clone(), result);
        }
        let landing_key = match self.store.get(&store_key) {
            Some(Ok(page)) => canonical_key(&page.visit.landing_url),
            fetched => {
                // Unfetchable (or, defensively, a missing memo entry):
                // decided here, before placement, so it is crash- and
                // shard-independent.
                let cause = match fetched {
                    Some(Err(cause)) => cause,
                    _ => kyp_web::FailureCause::NotFound,
                };
                self.unfetchable += 1;
                self.latency.record(0);
                out.push(router_outcome(
                    request.id,
                    request.url,
                    ServeOutcome::Unfetchable {
                        cause: cause.wire_name().to_owned(),
                    },
                    arrival,
                    0,
                ));
                return out;
            }
        };

        let seen = self.hot.entry(landing_key.clone()).or_insert(0);
        *seen += 1;
        let pending = Pending {
            url: request.url,
            landing_key,
            arrival_ms: arrival,
            retries: 0,
        };
        self.dispatch(request.id, pending, arrival, &mut out);
        out
    }

    /// Drains the cluster: processes every remaining event until no work
    /// is left, and returns the responses.
    pub fn finish(&mut self) -> Vec<ClusterResponse> {
        let mut out = Vec::new();
        while self.work_remains() {
            self.drain_parked(self.last_event_ms, &mut out);
            if !self.work_remains() {
                break;
            }
            let Some(ev) = self.next_event() else {
                // Unreachable by construction (pending work always has a
                // next event); break rather than spin if it ever isn't.
                break;
            };
            self.process_event(ev, &mut out);
        }
        out
    }

    /// Runs a whole trace: pushes every request in order, drains, and
    /// returns all responses in finalization order.
    pub fn run_trace(&mut self, trace: &[ServeRequest]) -> Vec<ClusterResponse> {
        let mut out = Vec::new();
        for request in trace {
            out.extend(self.push(request.clone()));
        }
        out.extend(self.finish());
        out
    }

    /// The end-of-run accounting report.
    pub fn report(&self) -> ClusterReport {
        let first = self.first_arrival_ms.unwrap_or(0);
        let elapsed = self.last_event_ms.saturating_sub(first);
        let throughput = if elapsed > 0 {
            self.answered as f64 / (elapsed as f64 / 1_000.0)
        } else {
            0.0
        };
        let shed = self.shed_by.total();
        let shed_ratio = if self.requests > 0 {
            shed as f64 / self.requests as f64
        } else {
            0.0
        };
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, slot)| NodeReport {
                node: i,
                crashes: slot.crashes,
                delivered: slot.delivered,
                serve: slot.service.report(),
            })
            .collect();
        ClusterReport {
            requests: self.requests,
            answered: self.answered,
            shed,
            shed_ratio,
            unfetchable: self.unfetchable,
            degraded: self.degraded,
            shed_by: self.shed_by,
            cascade_enabled: self.cascade.is_some(),
            cascade: self.cascade_counters,
            failover: self.failover,
            routing: self.routing,
            latency: self.latency.summary(),
            virtual_elapsed_ms: elapsed,
            throughput_per_vsec: throughput,
            nodes,
        }
    }

    /// Exports the end-of-run accounting into `registry`: the
    /// [`ClusterReport`] counters as `cluster.*` gauges plus the
    /// end-to-end latency histogram as `cluster.latency_ms`. Everything
    /// exported derives from virtual time and input-order counts, so the
    /// rendered json is byte-identical at any thread count.
    pub fn export_metrics(&self, registry: &mut kyp_obs::MetricsRegistry) {
        self.report().export_metrics(registry);
        registry.set_histogram("cluster.latency_ms", self.latency.as_histogram().clone());
    }

    /// Unique URLs fetched over the run.
    pub fn unique_fetches(&self) -> usize {
        self.store.len()
    }

    fn note_time(&mut self, t: u64) {
        self.last_event_ms = self.last_event_ms.max(t);
    }

    /// Token-bucket admission at `arrival`. Pure in the arrival sequence.
    fn admit(&mut self, arrival_ms: u64) -> bool {
        let Some(policy) = self.config.admission else {
            return true;
        };
        let dt = arrival_ms.saturating_sub(self.last_refill_ms);
        self.last_refill_ms = arrival_ms;
        let cap = policy.burst.max(1).saturating_mul(1_000);
        self.bucket_milli = self
            .bucket_milli
            .saturating_add(dt.saturating_mul(policy.rate_per_sec))
            .min(cap);
        if self.bucket_milli >= 1_000 {
            self.bucket_milli -= 1_000;
            true
        } else {
            false
        }
    }

    /// The candidate nodes for `pending`, in preference order: the ring
    /// successors of its landing key, with hot keys rotating their entry
    /// point across the first `replicas` candidates.
    fn candidates(&mut self, pending: &Pending) -> Vec<usize> {
        let order = self.ring.successors(&pending.landing_key);
        let r = self.config.replicas.min(order.len()).max(1);
        let seen = self.hot.get(&pending.landing_key).copied().unwrap_or(1);
        if r > 1 && seen >= self.config.hot_threshold {
            self.routing.hot_fanout += 1;
            let start = ((seen - self.config.hot_threshold) % r as u64) as usize;
            let mut rotated = Vec::with_capacity(order.len());
            for i in 0..r {
                rotated.push(order[(start + i) % r]);
            }
            rotated.extend_from_slice(&order[r..]);
            rotated
        } else {
            order
        }
    }

    /// Hands `pending` to the best available node at `now_ms`: tries each
    /// candidate the router believes live, routing around refusals
    /// (per-node backpressure), black-holing into dead-but-undetected
    /// nodes, and parking when every live candidate refuses. Never sheds.
    fn dispatch(
        &mut self,
        id: u64,
        pending: Pending,
        now_ms: u64,
        _out: &mut Vec<ClusterResponse>,
    ) {
        let candidates = self.candidates(&pending);
        for cand in candidates {
            let slot = &mut self.nodes[cand];
            if !slot.router_live {
                continue;
            }
            if !slot.alive {
                // Crashed but not yet detected: the router dispatches
                // into the void, exactly as a real fleet does during the
                // detection window. The request sits in `outstanding`
                // until the missed heartbeats trip failover.
                self.routing.dispatched += 1;
                slot.outstanding.insert(id, pending);
                return;
            }
            let responses = slot.service.push(ServeRequest {
                id,
                url: pending.url.clone(),
                arrival_ms: now_ms,
            });
            let mut refused = false;
            for r in responses {
                if r.id == id && matches!(r.outcome, ServeOutcome::Shed { .. }) {
                    refused = true;
                } else {
                    slot.inflight.push(r);
                }
            }
            if refused {
                self.routing.route_around += 1;
                continue;
            }
            self.routing.dispatched += 1;
            slot.outstanding.insert(id, pending);
            return;
        }
        self.routing.parked += 1;
        self.parked.push_back((id, pending));
    }

    /// Re-attempts every parked request once at `now_ms`. Requests still
    /// refused re-park (at the back), so one drain pass terminates.
    fn drain_parked(&mut self, now_ms: u64, out: &mut Vec<ClusterResponse>) {
        let rounds = self.parked.len();
        for _ in 0..rounds {
            let Some((id, pending)) = self.parked.pop_front() else {
                break;
            };
            self.dispatch(id, pending, now_ms, out);
        }
    }

    /// Any request not yet finally answered?
    fn work_remains(&self) -> bool {
        !self.parked.is_empty()
            || self.nodes.iter().any(|s| {
                !s.outstanding.is_empty()
                    || !s.inflight.is_empty()
                    || (s.alive && s.service.queue_len() > 0)
            })
    }

    /// The earliest pending event across the fleet, in `(time, kind,
    /// node)` order.
    fn next_event(&self) -> Option<Event> {
        let mut best: Option<Event> = None;
        let mut consider = |at: Option<u64>, kind: EventKind, node: usize| {
            if let Some(at) = at {
                let ev = Event { at, kind, node };
                if best.is_none_or(|b| ev < b) {
                    best = Some(ev);
                }
            }
        };
        for (i, slot) in self.nodes.iter().enumerate() {
            consider(slot.next_completion(), EventKind::Completion, i);
            if slot.alive {
                consider(slot.service.next_due(), EventKind::NodeDue, i);
            }
            consider(slot.crash_at, EventKind::Crash, i);
            consider(slot.detect_at, EventKind::Detect, i);
            consider(slot.recover_at, EventKind::Recover, i);
            consider(slot.relive_at, EventKind::Relive, i);
        }
        best
    }

    /// Processes every pending event at or before `horizon_ms`.
    fn run_events_until(&mut self, horizon_ms: u64, out: &mut Vec<ClusterResponse>) {
        while let Some(ev) = self.next_event() {
            if ev.at > horizon_ms {
                break;
            }
            self.process_event(ev, out);
        }
    }

    fn process_event(&mut self, ev: Event, out: &mut Vec<ClusterResponse>) {
        self.note_time(ev.at);
        match ev.kind {
            EventKind::Completion => {
                let done = self.nodes[ev.node].take_completions(ev.at);
                for r in done {
                    self.finalize(ev.node, r, out);
                }
            }
            EventKind::NodeDue => {
                let responses = self.nodes[ev.node].service.advance_to(ev.at);
                self.nodes[ev.node].inflight.extend(responses);
            }
            EventKind::Crash => self.crash_node(ev.node, ev.at),
            EventKind::Detect => self.detect_node(ev.node, ev.at, out),
            EventKind::Recover => self.recover_node(ev.node, ev.at),
            EventKind::Relive => {
                let slot = &mut self.nodes[ev.node];
                slot.relive_at = None;
                slot.router_live = true;
                self.drain_parked(ev.at, out);
            }
        }
    }

    /// The node process dies at `at`: its in-flight batch and queue are
    /// lost (the queue is physically cleared at restart), its cache shard
    /// will come back cold. The router does not know yet.
    fn crash_node(&mut self, node: usize, at: u64) {
        let interval = self.config.heartbeat_interval_ms;
        let slot = &mut self.nodes[node];
        slot.alive = false;
        slot.crash_at = None;
        slot.crashes += 1;
        self.failover.crashes += 1;
        // The in-flight batch dies with the process; the requests stay in
        // `outstanding` and fail over at detection.
        slot.inflight.clear();
        // Detection: the first heartbeat strictly after the crash is
        // missed; `miss_threshold` consecutive misses trip the detector.
        let first_missed = (at / interval + 1) * interval;
        let detect = first_missed + u64::from(self.config.miss_threshold - 1) * interval;
        // Downtime is clamped above the detection window at construction,
        // so Crash < Detect < Recover ≤ Relive always holds.
        let recover = at + self.downtime_ms;
        let relive = recover.div_ceil(interval) * interval;
        slot.detect_at = Some(detect);
        slot.recover_at = Some(recover);
        slot.relive_at = Some(relive.max(recover));
    }

    /// Missed heartbeats trip at `at`: the router stops routing to the
    /// node and fails its outstanding requests over, in id order, with a
    /// bounded retry budget.
    fn detect_node(&mut self, node: usize, at: u64, out: &mut Vec<ClusterResponse>) {
        let slot = &mut self.nodes[node];
        slot.detect_at = None;
        slot.router_live = false;
        self.failover.detections += 1;
        let orphans: Vec<(u64, Pending)> =
            std::mem::take(&mut slot.outstanding).into_iter().collect();
        for (id, mut pending) in orphans {
            pending.retries += 1;
            self.failover.redispatched += 1;
            if pending.retries > self.config.retry_budget {
                self.failover.retries_exhausted += 1;
                self.shed_by.retries_exhausted += 1;
                out.push(router_outcome(
                    id,
                    pending.url,
                    ServeOutcome::Shed {
                        reason: SHED_RETRIES_EXHAUSTED.to_owned(),
                    },
                    at,
                    pending.retries,
                ));
            } else {
                self.dispatch(id, pending, at, out);
            }
        }
    }

    /// The process restarts cold at `at`: empty queue, cold cache shard,
    /// cold fetch memo, lifetime counters intact. The router still
    /// believes it dead until the next heartbeat ([`EventKind::Relive`]).
    fn recover_node(&mut self, node: usize, at: u64) {
        let slot = &mut self.nodes[node];
        slot.recover_at = None;
        slot.alive = true;
        slot.incarnation += 1;
        slot.up_since_ms = at;
        slot.service.restart();
        self.failover.recoveries += 1;
        if let Some(plan) = &self.config.crash {
            slot.crash_at = plan
                .crash_after(node, slot.incarnation)
                .map(|up| at.saturating_add(up));
        }
    }

    /// Finalizes one node response: matches it to its outstanding entry,
    /// rewrites latency to span from the *original* arrival, and accounts
    /// it.
    fn finalize(&mut self, node: usize, r: ServeResponse, out: &mut Vec<ClusterResponse>) {
        let slot = &mut self.nodes[node];
        let Some(pending) = slot.outstanding.remove(&r.id) else {
            // A completion for a request the router no longer tracks
            // (cannot happen by construction; dropped defensively rather
            // than double-answered).
            return;
        };
        slot.delivered += 1;
        self.note_time(r.completed_ms);
        let latency_ms = r.completed_ms.saturating_sub(pending.arrival_ms);
        match &r.outcome {
            ServeOutcome::Verdict { .. } => {
                self.answered += 1;
                if r.degraded {
                    self.degraded += 1;
                }
            }
            ServeOutcome::Unfetchable { .. } => self.unfetchable += 1,
            ServeOutcome::Shed { .. } => {}
        }
        self.latency.record(latency_ms);
        out.push(ClusterResponse {
            node: Some(node),
            retries: pending.retries,
            response: ServeResponse { latency_ms, ..r },
        });
    }
}

/// A router-level response (shed or unfetchable): no node, instant
/// completion.
fn router_outcome(
    id: u64,
    url: String,
    outcome: ServeOutcome,
    completed_ms: u64,
    retries: u32,
) -> ClusterResponse {
    ClusterResponse {
        node: None,
        retries,
        response: ServeResponse {
            id,
            url,
            outcome,
            cache: CacheState::Skipped,
            degraded: false,
            latency_ms: 0,
            completed_ms,
            stage: VerdictStage::Full,
        },
    }
}
