#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! `kyp-cluster` — deterministic multi-node serving simulation.
//!
//! One [`kyp_serve::ScoringService`] answers "what does it take to run
//! the classifier as a service?"; this crate answers "what does it take
//! to run a *fleet* of them?". A [`ClusterService`] drives N scoring
//! nodes behind a consistent-hash router on a single virtual clock:
//!
//! ```text
//!                 ┌───────────────────────────────────────────────┐
//!  requests ────▶ │ router: token-bucket admission (sheds here,   │
//!                 │ and only here) → fetch once into SharedStore  │
//!                 └──────┬────────────────────────────────────────┘
//!                        │ HashRing(canonical landing URL)
//!                        │   · hot URLs fan out over R replicas
//!                        │   · node refusal ⇒ route around / park
//!                        ▼
//!      ┌──────────┐ ┌──────────┐ ┌──────────┐      CrashPlan kills
//!      │ node 0   │ │ node 1   │ │ node …   │ ◀──  nodes; the router
//!      │ (its own │ │          │ │          │      detects via missed
//!      │  queue,  │ │          │ │          │      heartbeats, fails
//!      │  cache   │ │          │ │          │      outstanding work
//!      │  shard)  │ │          │ │          │      over with bounded
//!      └──────────┘ └──────────┘ └──────────┘      retries
//! ```
//!
//! # Determinism contract
//!
//! The id-sorted verdict stream ([`verdict_stream`]) is **byte-identical**
//! across shard counts, ring placements, thread counts and crash
//! schedules: fetches happen once, at the router, in trace order; sheds
//! are decided at the router from arrival times alone; verdicts are pure
//! functions of the fetched pages. Per-node backpressure and crashes move
//! *when* and *where* a request is answered, never *what* the answer is.
//! See [`router`] for the full argument and `tests/cluster_determinism.rs`
//! at the workspace root for the matrix that enforces it.
//!
//! Everything observable — [`ClusterReport`], the `cluster.*` metrics via
//! [`ClusterService::export_metrics`] — derives from virtual time and
//! input-order counters, so reports are as reproducible as the verdicts.

pub mod crash;
mod node;
pub mod report;
pub mod ring;
pub mod router;
pub mod store;

pub use crash::CrashPlan;
pub use report::{ClusterReport, FailoverCounters, NodeReport, RoutingCounters, ShedCounters};
pub use ring::HashRing;
pub use router::{
    verdict_stream, AdmissionPolicy, ClusterConfig, ClusterResponse, ClusterService,
    SHED_CLUSTER_OVERLOAD, SHED_RETRIES_EXHAUSTED,
};
pub use store::SharedStore;
