//! The crash schedule: when nodes die and how long they stay down.
//!
//! Node mortality reuses the web layer's [`FaultPlan`]: whether incarnation
//! *k* of node *i* crashes at all is `plan.decide("node{i}", k)` — exactly
//! the `(seed, key, attempt)` hash that schedules fetch faults — and the
//! uptime before the crash is a seeded draw over
//! `[min_uptime_ms, max_uptime_ms)`. Both are pure functions of the plan,
//! so a crash schedule is reproduced bit-for-bit by its seed, and the
//! decision for one node never depends on what any other node did.

use kyp_web::{mix, stable_hash, FaultPlan};

/// Seeded description of node crash/recovery behaviour.
///
/// # Examples
///
/// ```
/// use kyp_cluster::CrashPlan;
///
/// let plan = CrashPlan::new(7, 0.5);
/// // The schedule is a pure function of (seed, node, incarnation):
/// assert_eq!(plan.crash_after(0, 0), plan.crash_after(0, 0));
/// ```
#[derive(Debug, Clone)]
pub struct CrashPlan {
    /// Seed and crash probability, reusing the fault-plan machinery —
    /// `fault_rate` is the per-incarnation probability that a node
    /// crashes (once its uptime elapses) rather than running forever.
    pub fault: FaultPlan,
    /// Shortest uptime before a scheduled crash, virtual ms.
    pub min_uptime_ms: u64,
    /// Exclusive upper bound on uptime before a scheduled crash.
    pub max_uptime_ms: u64,
    /// How long a crashed node stays down before it restarts. The router
    /// clamps this above its detection window, so a crash is always
    /// detected before the node returns — no undetected-crash limbo.
    pub downtime_ms: u64,
}

impl CrashPlan {
    /// A plan crashing each node incarnation with probability
    /// `crash_rate`, seeded by `seed`.
    pub fn new(seed: u64, crash_rate: f64) -> Self {
        CrashPlan {
            fault: FaultPlan::new(seed, crash_rate),
            min_uptime_ms: 400,
            max_uptime_ms: 4_000,
            downtime_ms: 1_200,
        }
    }

    /// The uptime span after which incarnation `incarnation` of node
    /// `node` crashes, or `None` if that incarnation runs forever.
    ///
    /// Pure in `(seed, node, incarnation)`: no clock, no per-call state.
    pub fn crash_after(&self, node: usize, incarnation: u32) -> Option<u64> {
        let key = format!("node{node}");
        self.fault.decide(&key, incarnation)?;
        let span = self.max_uptime_ms.saturating_sub(self.min_uptime_ms).max(1);
        let draw = mix(
            self.fault.seed ^ stable_hash(key.as_bytes()),
            u64::from(incarnation) | 1 << 33,
        );
        Some(self.min_uptime_ms + draw % span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let a = CrashPlan::new(42, 0.7);
        let b = CrashPlan::new(42, 0.7);
        for node in 0..4 {
            for inc in 0..10 {
                assert_eq!(a.crash_after(node, inc), b.crash_after(node, inc));
            }
        }
    }

    #[test]
    fn zero_rate_never_crashes() {
        let plan = CrashPlan::new(1, 0.0);
        for node in 0..4 {
            for inc in 0..20 {
                assert_eq!(plan.crash_after(node, inc), None);
            }
        }
    }

    #[test]
    fn full_rate_always_crashes_within_bounds() {
        let plan = CrashPlan::new(2, 1.0);
        for node in 0..4 {
            for inc in 0..20 {
                let up = plan.crash_after(node, inc).expect("rate 1.0 crashes");
                assert!(up >= plan.min_uptime_ms && up < plan.max_uptime_ms);
            }
        }
    }

    #[test]
    fn nodes_draw_independent_schedules() {
        let plan = CrashPlan::new(3, 1.0);
        let uptimes: Vec<u64> = (0..8).filter_map(|n| plan.crash_after(n, 0)).collect();
        let mut distinct = uptimes.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() > 1,
            "eight nodes should not crash in lockstep"
        );
    }
}
