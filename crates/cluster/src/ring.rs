//! Consistent-hash placement: which node owns a landing URL's cache shard.
//!
//! The ring is the classic construction: every node contributes `vnodes`
//! virtual tokens, each a stable hash of `(placement seed, node, vnode)`,
//! and a key is owned by the first token clockwise of the key's own hash.
//! Virtual tokens smooth the per-node share; the placement seed lets tests
//! reshuffle placements without touching anything else — the determinism
//! suite proves verdict bytes are placement-invariant by sweeping it.
//!
//! Everything is derived from [`kyp_web::stable_hash`] and
//! [`kyp_web::mix`]: no `DefaultHasher` (randomized per process), no wall
//! clock, so a given `(nodes, vnodes, seed)` triple yields one ring,
//! forever, on every platform.

use kyp_web::{mix, stable_hash};

/// A consistent-hash ring over `nodes` scoring nodes.
///
/// # Examples
///
/// ```
/// use kyp_cluster::HashRing;
///
/// let ring = HashRing::new(4, 16, 7);
/// let owner = ring.node_for("paypal.com/login");
/// assert!(owner < 4);
/// // The full preference order visits every node exactly once.
/// let order = ring.successors("paypal.com/login");
/// assert_eq!(order.len(), 4);
/// assert_eq!(order[0], owner);
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(token, node)` sorted by token; ties broken by node id.
    tokens: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// A ring of `nodes` nodes with `vnodes` virtual tokens each (both
    /// clamped ≥ 1), placed by `placement_seed`.
    pub fn new(nodes: usize, vnodes: usize, placement_seed: u64) -> Self {
        let nodes = nodes.max(1);
        let vnodes = vnodes.max(1);
        let mut tokens = Vec::with_capacity(nodes * vnodes);
        for node in 0..nodes {
            for v in 0..vnodes {
                let label = format!("node{node}#vn{v}");
                let token = mix(placement_seed, stable_hash(label.as_bytes()));
                tokens.push((token, node));
            }
        }
        tokens.sort_unstable();
        HashRing { tokens, nodes }
    }

    /// Number of nodes on the ring.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node owning `key`: the first token at or clockwise of the
    /// key's hash.
    pub fn node_for(&self, key: &str) -> usize {
        let h = stable_hash(key.as_bytes());
        let idx = self.tokens.partition_point(|&(t, _)| t < h);
        let idx = if idx == self.tokens.len() { 0 } else { idx };
        // tokens is non-empty by construction (nodes, vnodes ≥ 1).
        self.tokens.get(idx).map_or(0, |&(_, node)| node)
    }

    /// Every node in `key`'s preference order: the owner first, then each
    /// further distinct node in clockwise token order. This is the
    /// failover order — when the owner sheds or is down, the request
    /// walks this list.
    pub fn successors(&self, key: &str) -> Vec<usize> {
        let h = stable_hash(key.as_bytes());
        let start = self.tokens.partition_point(|&(t, _)| t < h);
        let mut seen = vec![false; self.nodes];
        let mut order = Vec::with_capacity(self.nodes);
        for i in 0..self.tokens.len() {
            let idx = (start + i) % self.tokens.len();
            let Some(&(_, node)) = self.tokens.get(idx) else {
                break;
            };
            if !seen[node] {
                seen[node] = true;
                order.push(node);
                if order.len() == self.nodes {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_ring() {
        let a = HashRing::new(4, 16, 42);
        let b = HashRing::new(4, 16, 42);
        for key in ["a.com/", "b.org/x", "c.net/y/z"] {
            assert_eq!(a.node_for(key), b.node_for(key));
            assert_eq!(a.successors(key), b.successors(key));
        }
    }

    #[test]
    fn different_seeds_move_keys() {
        let a = HashRing::new(8, 16, 1);
        let b = HashRing::new(8, 16, 2);
        let moved = (0..200)
            .filter(|i| {
                let key = format!("host{i}.example.com/");
                a.node_for(&key) != b.node_for(&key)
            })
            .count();
        assert!(
            moved > 50,
            "placement seed must actually reshuffle: {moved}"
        );
    }

    #[test]
    fn successors_cover_every_node_once() {
        let ring = HashRing::new(5, 8, 9);
        for i in 0..50 {
            let key = format!("k{i}");
            let order = ring.successors(&key);
            assert_eq!(order.len(), 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
            assert_eq!(order[0], ring.node_for(&key));
        }
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let ring = HashRing::new(1, 16, 3);
        for i in 0..20 {
            assert_eq!(ring.node_for(&format!("k{i}")), 0);
        }
        assert_eq!(ring.successors("k"), vec![0]);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = HashRing::new(4, 32, 11);
        let mut counts = [0u32; 4];
        for i in 0..2000 {
            counts[ring.node_for(&format!("host{i}.example.com/"))] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!(
                (200..=900).contains(&c),
                "node {node} owns {c} of 2000 keys — ring badly skewed"
            );
        }
    }

    #[test]
    fn zero_sizes_clamp() {
        let ring = HashRing::new(0, 0, 0);
        assert_eq!(ring.nodes(), 1);
        assert_eq!(ring.node_for("anything"), 0);
    }
}
