//! End-of-run cluster accounting and its `kyp-obs` export.
//!
//! Everything here is derived from virtual time and input-order counters,
//! so a report — like the per-node [`ServeReport`]s it embeds — is
//! byte-identical across thread counts for a given configuration.

use kyp_serve::{CascadeCounters, LatencySummary, ServeReport};
use serde::{Deserialize, Serialize};

/// Crash/failover accounting over one cluster run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailoverCounters {
    /// Node crashes suffered (all nodes, all incarnations).
    pub crashes: u64,
    /// Crashes detected via missed heartbeats.
    pub detections: u64,
    /// Cold restarts completed.
    pub recoveries: u64,
    /// Requests re-dispatched off a dead node at detection.
    pub redispatched: u64,
    /// Requests shed after exhausting the failover retry budget.
    pub retries_exhausted: u64,
}

/// Routing accounting over one cluster run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingCounters {
    /// Requests handed to a node (re-dispatches included).
    pub dispatched: u64,
    /// Dispatch attempts deflected by a node's admission queue (per-node
    /// backpressure) and retried on the next ring candidate.
    pub route_around: u64,
    /// Requests parked at the router because every live candidate
    /// refused; parked requests re-dispatch as capacity frees.
    pub parked: u64,
    /// Dispatches of hot landing URLs spread over the replica set.
    pub hot_fanout: u64,
}

/// Cluster-level shed accounting (placement-independent by construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedCounters {
    /// Requests refused by cluster admission (token bucket) on arrival.
    pub admission: u64,
    /// Requests dropped after the failover retry budget ran out.
    pub retries_exhausted: u64,
}

impl ShedCounters {
    /// Every shed request, whatever the reason.
    pub fn total(&self) -> u64 {
        self.admission + self.retries_exhausted
    }
}

/// One node's slice of the cluster report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Node index on the ring.
    pub node: usize,
    /// Crashes this node suffered.
    pub crashes: u64,
    /// Responses the router finalized from this node.
    pub delivered: u64,
    /// The wrapped scoring service's own lifetime report (its queue
    /// counters are the node's backpressure record).
    pub serve: ServeReport,
}

/// Serializable end-of-run report of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Requests pushed at the cluster.
    pub requests: u64,
    /// Requests answered with a verdict.
    pub answered: u64,
    /// Requests shed (admission + retry exhaustion).
    pub shed: u64,
    /// `shed / requests` in `[0, 1]` (0.0 when no requests arrived).
    pub shed_ratio: f64,
    /// Requests whose page could not be fetched.
    pub unfetchable: u64,
    /// Answered requests served from a degraded capture.
    pub degraded: u64,
    /// Shed accounting by reason.
    pub shed_by: ShedCounters,
    /// Whether the URL-only cascade pre-filter screened at the router.
    pub cascade_enabled: bool,
    /// Router-level cascade pre-filter accounting.
    pub cascade: CascadeCounters,
    /// Crash/failover accounting.
    pub failover: FailoverCounters,
    /// Routing accounting.
    pub routing: RoutingCounters,
    /// End-to-end latency over answered + unfetchable requests, measured
    /// from original arrival to final completion across every failover
    /// attempt.
    pub latency: LatencySummary,
    /// Virtual span of the run: last event minus first arrival.
    pub virtual_elapsed_ms: u64,
    /// Answered requests per virtual second.
    pub throughput_per_vsec: f64,
    /// Per-node reports, in node order.
    pub nodes: Vec<NodeReport>,
}

impl ClusterReport {
    /// Exports the report into `registry`: `cluster.report.*` totals,
    /// `cluster.shed.*`, `cluster.failover.*` and `cluster.routing.*`
    /// counters, and `cluster.node.<i>.*` per-node gauges, plus the
    /// end-to-end latency histogram under `cluster.latency_ms` (set by
    /// the service, which owns the histogram).
    pub fn export_metrics(&self, registry: &mut kyp_obs::MetricsRegistry) {
        let gauge = |r: &mut kyp_obs::MetricsRegistry, name: &str, v: u64| {
            r.set_gauge(name, v.cast_signed());
        };
        gauge(registry, "cluster.report.requests", self.requests);
        gauge(registry, "cluster.report.answered", self.answered);
        gauge(registry, "cluster.report.shed", self.shed);
        gauge(registry, "cluster.report.unfetchable", self.unfetchable);
        gauge(registry, "cluster.report.degraded", self.degraded);
        gauge(
            registry,
            "cluster.report.virtual_elapsed_ms",
            self.virtual_elapsed_ms,
        );
        registry.set_gauge("cluster.cascade_enabled", i64::from(self.cascade_enabled));
        gauge(registry, "cluster.cascade.screened", self.cascade.screened);
        gauge(registry, "cluster.cascade.url_only", self.cascade.url_only);
        gauge(
            registry,
            "cluster.cascade.fallthrough",
            self.cascade.fallthrough,
        );
        gauge(
            registry,
            "cluster.cascade.unscorable",
            self.cascade.unscorable,
        );
        gauge(registry, "cluster.shed.admission", self.shed_by.admission);
        gauge(
            registry,
            "cluster.shed.retries_exhausted",
            self.shed_by.retries_exhausted,
        );
        gauge(registry, "cluster.failover.crashes", self.failover.crashes);
        gauge(
            registry,
            "cluster.failover.detections",
            self.failover.detections,
        );
        gauge(
            registry,
            "cluster.failover.recoveries",
            self.failover.recoveries,
        );
        gauge(
            registry,
            "cluster.failover.redispatched",
            self.failover.redispatched,
        );
        gauge(
            registry,
            "cluster.failover.retries_exhausted",
            self.failover.retries_exhausted,
        );
        gauge(
            registry,
            "cluster.routing.dispatched",
            self.routing.dispatched,
        );
        gauge(
            registry,
            "cluster.routing.route_around",
            self.routing.route_around,
        );
        gauge(registry, "cluster.routing.parked", self.routing.parked);
        gauge(
            registry,
            "cluster.routing.hot_fanout",
            self.routing.hot_fanout,
        );
        for n in &self.nodes {
            let prefix = format!("cluster.node.{}", n.node);
            gauge(registry, &format!("{prefix}.crashes"), n.crashes);
            gauge(registry, &format!("{prefix}.delivered"), n.delivered);
            gauge(registry, &format!("{prefix}.answered"), n.serve.answered);
            gauge(
                registry,
                &format!("{prefix}.queue_shed"),
                n.serve.queue.shed,
            );
            registry.set_gauge(
                &format!("{prefix}.queue_high_water"),
                n.serve.queue.high_water.cast_signed(),
            );
            gauge(
                registry,
                &format!("{prefix}.cache_hits"),
                n.serve.cache.hits,
            );
            gauge(
                registry,
                &format!("{prefix}.batches"),
                n.serve.batches.batches,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_counters_total() {
        let s = ShedCounters {
            admission: 3,
            retries_exhausted: 2,
        };
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn counters_roundtrip_through_json() {
        let f = FailoverCounters {
            crashes: 1,
            detections: 1,
            recoveries: 1,
            redispatched: 4,
            retries_exhausted: 0,
        };
        let json = serde_json::to_string(&f).unwrap();
        let back: FailoverCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
