//! The shared fetch memo: one scrape per unique URL for the whole cluster.
//!
//! Determinism across shard counts hinges on the page source seeing the
//! same fetch sequence whatever the cluster shape. A stateful source (a
//! fault plan, a circuit breaker, a retry clock) answers differently
//! depending on *when* it is asked, and per-node fetching would make that
//! order a function of placement. The router therefore performs every
//! fetch itself, in trace (first-occurrence) order, and deposits the
//! result here; nodes read through [`SharedStore`] — a [`PageSource`]
//! that only ever does keyed lookups of already-fetched pages.

use kyp_serve::{canonical_url, PageSource};
use kyp_web::{FailureCause, ScrapedPage};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A cheaply clonable handle onto the cluster's fetch memo. Every node's
/// scoring service holds one; the router holds the writing side.
///
/// Lookups are keyed (canonical request URL), never iterated, so the map
/// underneath cannot leak iteration order into anything (kyp-lint D01).
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    pages: Rc<RefCell<HashMap<String, Result<ScrapedPage, FailureCause>>>>,
}

impl SharedStore {
    /// An empty store.
    pub fn new() -> Self {
        SharedStore::default()
    }

    /// The store key of a request URL: its canonical form, or the raw
    /// string when it does not parse (mirroring the scoring service's own
    /// memo keying, so router and nodes always agree).
    pub fn key_of(url: &str) -> String {
        canonical_url(url).unwrap_or_else(|| url.to_owned())
    }

    /// Whether `key` has been fetched already.
    pub fn contains(&self, key: &str) -> bool {
        self.pages.borrow().contains_key(key)
    }

    /// The stored fetch result for `key`, if any.
    pub fn get(&self, key: &str) -> Option<Result<ScrapedPage, FailureCause>> {
        self.pages.borrow().get(key).cloned()
    }

    /// Records the fetch result for `key`. First write wins: the memo is
    /// append-only, so a page can never change under a node.
    pub fn put(&self, key: String, result: Result<ScrapedPage, FailureCause>) {
        self.pages.borrow_mut().entry(key).or_insert(result);
    }

    /// Unique URLs fetched so far.
    pub fn len(&self) -> usize {
        self.pages.borrow().len()
    }

    /// `true` when nothing has been fetched yet.
    pub fn is_empty(&self) -> bool {
        self.pages.borrow().is_empty()
    }
}

impl PageSource for SharedStore {
    /// Keyed read of the memo. The router only dispatches requests whose
    /// fetch already succeeded, so a miss here means a caller bypassed
    /// the router; it surfaces as [`FailureCause::NotFound`] rather than
    /// panicking.
    fn fetch(&mut self, url: &str) -> Result<ScrapedPage, FailureCause> {
        let key = SharedStore::key_of(url);
        self.get(&key).unwrap_or(Err(FailureCause::NotFound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kyp_url::Url;
    use kyp_web::{SourceAvailability, VisitedPage};

    fn page(url: &str) -> ScrapedPage {
        let u = Url::parse(url).unwrap();
        ScrapedPage {
            visit: VisitedPage {
                starting_url: u.clone(),
                landing_url: u.clone(),
                redirection_chain: vec![u],
                logged_links: Vec::new(),
                href_links: Vec::new(),
                text: "hello".into(),
                title: "T".into(),
                copyright: None,
                screenshot_text: String::new(),
                input_count: 0,
                image_count: 0,
                iframe_count: 0,
            },
            availability: SourceAvailability::FULL,
            attempts: 1,
            elapsed_ms: 0,
        }
    }

    #[test]
    fn clones_share_one_memo() {
        let a = SharedStore::new();
        let mut b = a.clone();
        let key = SharedStore::key_of("http://x.example.com/p");
        a.put(key, Ok(page("http://x.example.com/p")));
        let fetched = b.fetch("https://x.example.com/p?q=1").unwrap();
        assert_eq!(fetched.visit.title, "T");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn first_write_wins() {
        let store = SharedStore::new();
        let key = SharedStore::key_of("http://x.example.com/");
        store.put(key.clone(), Err(FailureCause::Timeout));
        store.put(key.clone(), Ok(page("http://x.example.com/")));
        assert_eq!(store.get(&key), Some(Err(FailureCause::Timeout)));
    }

    #[test]
    fn missing_key_reads_not_found() {
        let mut store = SharedStore::new();
        assert_eq!(
            store.fetch("http://never.example.com/"),
            Err(FailureCause::NotFound)
        );
    }
}
