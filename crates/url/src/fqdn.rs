use crate::psl;
use crate::ParseUrlError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fully qualified domain name, split into labels with the public suffix
/// boundary resolved against the embedded suffix rules.
///
/// # Examples
///
/// ```
/// use kyp_url::Fqdn;
/// let fqdn: Fqdn = "www.amazon.co.uk".parse()?;
/// assert_eq!(fqdn.mld(), Some("amazon"));
/// assert_eq!(fqdn.rdn(), "amazon.co.uk");
/// assert_eq!(fqdn.subdomains(), ["www"]);
/// # Ok::<(), kyp_url::ParseUrlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fqdn {
    labels: Vec<String>,
    suffix_labels: usize,
}

impl Fqdn {
    /// Parses a dotted host name (lowercasing it) and resolves the public
    /// suffix boundary.
    ///
    /// # Errors
    ///
    /// Returns an error for empty labels, invalid characters (anything
    /// outside `[a-z0-9-]` after lowercasing) or over-long labels.
    pub fn parse(host: &str) -> Result<Self, ParseUrlError> {
        if host.is_empty() {
            return Err(ParseUrlError::MissingHost);
        }
        if host.len() > 253 {
            return Err(ParseUrlError::LabelTooLong);
        }
        let mut labels = Vec::new();
        for raw in host.split('.') {
            if raw.is_empty() {
                return Err(ParseUrlError::EmptyLabel);
            }
            if raw.len() > 63 {
                return Err(ParseUrlError::LabelTooLong);
            }
            let label = raw.to_ascii_lowercase();
            if let Some(c) = label
                .chars()
                .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-' || *c == '_'))
            {
                return Err(ParseUrlError::InvalidHostChar(c));
            }
            labels.push(label);
        }
        let suffix_labels = psl::suffix_label_count(&labels);
        Ok(Fqdn {
            labels,
            suffix_labels,
        })
    }

    /// All labels in natural order, e.g. `["www", "amazon", "co", "uk"]`.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels ("count of level domains", paper URL feature #3).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Length of the dotted FQDN string.
    pub fn len(&self) -> usize {
        self.labels.iter().map(String::len).sum::<usize>() + self.labels.len().saturating_sub(1)
    }

    /// Returns `true` when there are no labels (cannot happen after `parse`).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The public suffix as a dotted string, e.g. `co.uk`.
    pub fn public_suffix(&self) -> String {
        self.labels[self.labels.len() - self.suffix_labels..].join(".")
    }

    /// The main level domain: the label right before the public suffix.
    ///
    /// `None` when the whole FQDN is itself a public suffix.
    pub fn mld(&self) -> Option<&str> {
        let n = self.labels.len();
        if self.suffix_labels >= n {
            None
        } else {
            Some(&self.labels[n - self.suffix_labels - 1])
        }
    }

    /// The registered domain name: `mld.ps`, or the suffix itself when no
    /// mld exists.
    pub fn rdn(&self) -> String {
        self.rdn_labels().join(".")
    }

    /// The labels of the RDN in natural order — [`Fqdn::rdn`] without the
    /// joining allocation, e.g. `["amazon", "co", "uk"]`.
    pub fn rdn_labels(&self) -> &[String] {
        let n = self.labels.len();
        let start = n.saturating_sub(self.suffix_labels + 1);
        &self.labels[start..]
    }

    /// `true` when `rdn` equals [`Fqdn::rdn`], compared without building
    /// the dotted string.
    pub fn rdn_matches(&self, rdn: &str) -> bool {
        let mut segments = rdn.split('.');
        let mut labels = self.rdn_labels().iter();
        loop {
            match (segments.next(), labels.next()) {
                (Some(s), Some(l)) => {
                    if s != l {
                        return false;
                    }
                }
                (None, None) => return true,
                _ => return false,
            }
        }
    }

    /// Subdomain labels — everything the owner controls freely, i.e. all
    /// labels before the RDN.
    pub fn subdomains(&self) -> &[String] {
        let n = self.labels.len();
        let rdn_labels = (self.suffix_labels + 1).min(n);
        &self.labels[..n - rdn_labels]
    }
}

impl fmt::Display for Fqdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.labels.join("."))
    }
}

impl std::str::FromStr for Fqdn {
    type Err = ParseUrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fqdn::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_decomposition() {
        let f = Fqdn::parse("www.amazon.co.uk").unwrap();
        assert_eq!(f.label_count(), 4);
        assert_eq!(f.public_suffix(), "co.uk");
        assert_eq!(f.mld(), Some("amazon"));
        assert_eq!(f.rdn(), "amazon.co.uk");
        assert_eq!(f.subdomains(), ["www"]);
        assert_eq!(f.len(), "www.amazon.co.uk".len());
    }

    #[test]
    fn no_subdomains() {
        let f = Fqdn::parse("example.com").unwrap();
        assert!(f.subdomains().is_empty());
        assert_eq!(f.rdn(), "example.com");
        assert_eq!(f.mld(), Some("example"));
    }

    #[test]
    fn deep_subdomains() {
        let f = Fqdn::parse("a.b.c.example.com").unwrap();
        assert_eq!(f.subdomains(), ["a", "b", "c"]);
        assert_eq!(f.rdn(), "example.com");
    }

    #[test]
    fn bare_suffix_has_no_mld() {
        let f = Fqdn::parse("com").unwrap();
        assert_eq!(f.mld(), None);
        assert_eq!(f.rdn(), "com");
        assert!(f.subdomains().is_empty());
    }

    #[test]
    fn lowercases() {
        let f = Fqdn::parse("WWW.EXAMPLE.COM").unwrap();
        assert_eq!(f.to_string(), "www.example.com");
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!(Fqdn::parse(""), Err(ParseUrlError::MissingHost));
        assert_eq!(Fqdn::parse("a..b"), Err(ParseUrlError::EmptyLabel));
        assert_eq!(Fqdn::parse(".com"), Err(ParseUrlError::EmptyLabel));
        assert_eq!(Fqdn::parse("com."), Err(ParseUrlError::EmptyLabel));
        assert!(matches!(
            Fqdn::parse("exa mple.com"),
            Err(ParseUrlError::InvalidHostChar(' '))
        ));
        let long = "a".repeat(64);
        assert_eq!(
            Fqdn::parse(&format!("{long}.com")),
            Err(ParseUrlError::LabelTooLong)
        );
    }

    #[test]
    fn hyphenated_and_digit_labels() {
        let f = Fqdn::parse("secure-login2.pay-pal.com").unwrap();
        assert_eq!(f.mld(), Some("pay-pal"));
        assert_eq!(f.subdomains(), ["secure-login2"]);
    }

    #[test]
    fn display_fromstr_roundtrip() {
        let f: Fqdn = "www.example.co.uk".parse().unwrap();
        assert_eq!(f.to_string(), "www.example.co.uk");
    }
}
