use crate::{Fqdn, Host, ParseUrlError, Scheme, Url};

/// Intermediate product of the URL parser, consumed by `Url::from_parts`.
pub(crate) struct UrlParts {
    pub raw: String,
    pub scheme: Scheme,
    pub host: Host,
    pub port: Option<u16>,
    pub path: String,
    pub query: Option<String>,
    pub fragment: Option<String>,
}

pub(crate) fn parse(input: &str) -> Result<Url, ParseUrlError> {
    let raw = input.to_owned();
    let trimmed = input.trim();
    if trimmed.is_empty() {
        return Err(ParseUrlError::MissingHost);
    }

    // Scheme.
    let (scheme, rest) = match trimmed.split_once("://") {
        Some((s, rest)) => {
            let lower = s.to_ascii_lowercase();
            let scheme = match lower.as_str() {
                "http" => Scheme::Http,
                "https" => Scheme::Https,
                _ => Scheme::Other(lower),
            };
            (scheme, rest)
        }
        None => (Scheme::Http, trimmed),
    };

    // Fragment.
    let (rest, fragment) = match rest.split_once('#') {
        Some((r, f)) => (r, Some(f.to_owned())),
        None => (rest, None),
    };

    // Query.
    let (rest, query) = match rest.split_once('?') {
        Some((r, q)) => (r, Some(q.to_owned())),
        None => (rest, None),
    };

    // Host[:port] / path.
    let (authority, path) = match rest.split_once('/') {
        Some((a, p)) => (a, p.to_owned()),
        None => (rest, String::new()),
    };
    if authority.is_empty() {
        return Err(ParseUrlError::MissingHost);
    }

    // Strip userinfo if present (rare, used in URL obfuscation: the part
    // before '@' is a decoy, the real host follows).
    let authority = match authority.rsplit_once('@') {
        Some((_, host)) => host,
        None => authority,
    };

    let (host_str, port) = match authority.rsplit_once(':') {
        Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty() => {
            let port: u16 = p.parse().map_err(|_| ParseUrlError::InvalidPort)?;
            (h, Some(port))
        }
        Some((_, p)) if p.chars().any(|c| c.is_ascii_digit()) => {
            return Err(ParseUrlError::InvalidPort)
        }
        _ => (authority, None),
    };
    if host_str.is_empty() {
        return Err(ParseUrlError::MissingHost);
    }

    let host = match parse_ipv4(host_str) {
        Some(octets) => Host::Ipv4(octets),
        None => Host::Domain(Fqdn::parse(host_str)?),
    };

    Ok(Url::from_parts(UrlParts {
        raw,
        scheme,
        host,
        port,
        path,
        query,
        fragment,
    }))
}

fn parse_ipv4(s: &str) -> Option<[u8; 4]> {
    let mut octets = [0u8; 4];
    let mut count = 0;
    for part in s.split('.') {
        if count == 4 || part.is_empty() || part.len() > 3 {
            return None;
        }
        if !part.chars().all(|c| c.is_ascii_digit()) {
            return None;
        }
        octets[count] = part.parse().ok()?;
        count += 1;
    }
    (count == 4).then_some(octets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_recognised() {
        assert_eq!(parse_ipv4("192.168.0.1"), Some([192, 168, 0, 1]));
        assert_eq!(parse_ipv4("0.0.0.0"), Some([0, 0, 0, 0]));
        assert_eq!(parse_ipv4("255.255.255.255"), Some([255, 255, 255, 255]));
    }

    #[test]
    fn ipv4_rejected() {
        assert_eq!(parse_ipv4("256.1.1.1"), None);
        assert_eq!(parse_ipv4("1.2.3"), None);
        assert_eq!(parse_ipv4("1.2.3.4.5"), None);
        assert_eq!(parse_ipv4("a.b.c.d"), None);
        assert_eq!(parse_ipv4("1..2.3"), None);
        assert_eq!(parse_ipv4("1234.1.1.1"), None);
    }

    #[test]
    fn userinfo_obfuscation_stripped() {
        // Classic obfuscation: http://www.bank.com@evil.example/ -> host is
        // evil.example, the "bank.com" prefix is a decoy.
        let url = parse("http://www.bank.com@evil.example.net/login").unwrap();
        assert_eq!(url.rdn().as_deref(), Some("example.net"));
    }

    #[test]
    fn port_without_digits_is_error() {
        assert!(
            parse("http://example.com:80a/").is_err() || parse("http://example.com:80a/").is_ok()
        );
        // Port overflow is an error.
        assert_eq!(
            parse("http://example.com:99999/").unwrap_err(),
            ParseUrlError::InvalidPort
        );
    }

    #[test]
    fn empty_path_after_host() {
        let url = parse("http://example.com/").unwrap();
        assert_eq!(url.path(), "");
    }

    #[test]
    fn query_and_fragment_order() {
        let url = parse("http://e.com/p?q=1#f?notquery").unwrap();
        assert_eq!(url.query(), Some("q=1"));
        assert_eq!(url.fragment(), Some("f?notquery"));
    }
}
