#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! URL decomposition for the *Know Your Phish* reproduction.
//!
//! The paper (Section II-B, Fig. 1) decomposes a URL as
//!
//! ```text
//! protocol://[subdomains.]mld.ps[/path][?query]
//!            \________FQDN________/
//!             \______RDN_____/  (mld + public suffix)
//! FreeURL = subdomains + path + query   (fully attacker-controlled)
//! ```
//!
//! The *registered domain name* (RDN) is the only part of a URL a phisher
//! cannot choose freely: it has to be registered with a registrar. The
//! *main level domain* (mld) is the label immediately before the public
//! suffix. Everything else — subdomains, path, query — is **FreeURL**.
//!
//! # Examples
//!
//! ```
//! use kyp_url::Url;
//!
//! # fn main() -> Result<(), kyp_url::ParseUrlError> {
//! let url = Url::parse("https://www.amazon.co.uk/ap/signin?_encoding=UTF8")?;
//! assert!(url.is_https());
//! assert_eq!(url.fqdn_str().as_deref(), Some("www.amazon.co.uk"));
//! assert_eq!(url.rdn().as_deref(), Some("amazon.co.uk"));
//! assert_eq!(url.mld(), Some("amazon"));
//! assert_eq!(url.free_url().subdomains, "www");
//! # Ok(())
//! # }
//! ```

mod error;
mod fqdn;
mod parse;
pub mod psl;

pub use error::ParseUrlError;
pub use fqdn::Fqdn;

use serde::{Deserialize, Serialize};
use std::fmt;

/// The protocol of a URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain-text HTTP.
    Http,
    /// TLS-protected HTTP.
    Https,
    /// Any other scheme (`ftp`, `data`, ...), stored lowercased.
    Other(String),
}

impl Scheme {
    /// Returns the scheme as the string that appeared before `://`.
    pub fn as_str(&self) -> &str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
            Scheme::Other(s) => s,
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The host component of a URL: either a domain name or an IPv4 literal.
///
/// The paper notes (Section VII-B) that IP-based URLs have empty
/// FQDN-derived term distributions, which makes them a (costly) evasion
/// vector; we therefore model them explicitly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Host {
    /// A fully qualified domain name.
    Domain(Fqdn),
    /// An IPv4 literal such as `192.0.2.7`.
    Ipv4([u8; 4]),
}

impl Host {
    /// Returns the FQDN if the host is a domain name.
    pub fn fqdn(&self) -> Option<&Fqdn> {
        match self {
            Host::Domain(f) => Some(f),
            Host::Ipv4(_) => None,
        }
    }

    /// Returns `true` when the host is an IPv4 literal.
    pub fn is_ip(&self) -> bool {
        matches!(self, Host::Ipv4(_))
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Host::Domain(d) => write!(f, "{d}"),
            Host::Ipv4([a, b, c, d]) => write!(f, "{a}.{b}.{c}.{d}"),
        }
    }
}

/// The parts of a URL the phisher controls without constraint
/// (Section II-B: subdomains, path and query).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreeUrl {
    /// Subdomain labels joined with `.` (empty when the FQDN equals the RDN).
    pub subdomains: String,
    /// The path with the leading `/` trimmed (may be empty).
    pub path: String,
    /// The query string without the leading `?` (may be empty).
    pub query: String,
}

impl FreeUrl {
    /// Concatenates the FreeURL parts into one string for lexical analysis.
    ///
    /// Parts are joined with `/` and `?` so that label boundaries survive;
    /// the term extractor of `kyp-text` splits on any non-letter anyway.
    pub fn joined(&self) -> String {
        let mut out =
            String::with_capacity(self.subdomains.len() + self.path.len() + self.query.len() + 2);
        out.push_str(&self.subdomains);
        if !self.path.is_empty() {
            out.push('/');
            out.push_str(&self.path);
        }
        if !self.query.is_empty() {
            out.push('?');
            out.push_str(&self.query);
        }
        out
    }

    /// Counts ASCII dots across all FreeURL parts (paper feature #2:
    /// "count of dots in FreeURL", which spots domain-name-looking strings
    /// smuggled into attacker-controlled URL parts).
    pub fn dot_count(&self) -> usize {
        self.subdomains.matches('.').count()
            + self.path.matches('.').count()
            + self.query.matches('.').count()
    }
}

/// A parsed URL with the decomposition of the paper's Fig. 1.
///
/// See the [crate docs](crate) for the structure. `Url` is cheap to clone
/// and carries the original string for length-based features.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    raw: String,
    scheme: Scheme,
    host: Host,
    port: Option<u16>,
    path: String,
    query: Option<String>,
    fragment: Option<String>,
}

impl Url {
    /// Parses a URL string.
    ///
    /// The parser is deliberately lenient in the way a browser address bar
    /// is: a missing scheme defaults to `http`, uppercase hosts are folded
    /// to lowercase.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUrlError`] when the input has no host, a label is
    /// empty (`a..b`), or the host contains characters outside
    /// `[a-z0-9-]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use kyp_url::Url;
    /// let url = Url::parse("https://example.com/a")?;
    /// assert_eq!(url.mld(), Some("example"));
    /// # Ok::<(), kyp_url::ParseUrlError>(())
    /// ```
    pub fn parse(input: &str) -> Result<Self, ParseUrlError> {
        parse::parse(input)
    }

    pub(crate) fn from_parts(parts: parse::UrlParts) -> Self {
        Url {
            raw: parts.raw,
            scheme: parts.scheme,
            host: parts.host,
            port: parts.port,
            path: parts.path,
            query: parts.query,
            fragment: parts.fragment,
        }
    }

    /// The original string this URL was parsed from.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Total length of the URL string (paper URL feature #4).
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Returns `true` if the raw URL string is empty (never after `parse`).
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The URL scheme.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// `true` when the scheme is HTTPS (paper URL feature #1).
    pub fn is_https(&self) -> bool {
        self.scheme == Scheme::Https
    }

    /// The host component.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The FQDN, unless the host is an IP literal.
    pub fn fqdn(&self) -> Option<&Fqdn> {
        self.host.fqdn()
    }

    /// The FQDN as a dotted string, e.g. `www.amazon.co.uk`.
    pub fn fqdn_str(&self) -> Option<String> {
        self.fqdn().map(std::string::ToString::to_string)
    }

    /// The explicit port, if one was present.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The path without its leading slash (empty string for `/` or none).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The query string without the leading `?`.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// The fragment without the leading `#`.
    pub fn fragment(&self) -> Option<&str> {
        self.fragment.as_deref()
    }

    /// The registered domain name (`mld.ps`), e.g. `amazon.co.uk`.
    ///
    /// `None` for IP-literal hosts.
    pub fn rdn(&self) -> Option<String> {
        self.fqdn().map(fqdn::Fqdn::rdn)
    }

    /// The main level domain — the label before the public suffix.
    pub fn mld(&self) -> Option<&str> {
        self.fqdn().and_then(|f| f.mld())
    }

    /// The public suffix, e.g. `co.uk`.
    pub fn public_suffix(&self) -> Option<String> {
        self.fqdn().map(fqdn::Fqdn::public_suffix)
    }

    /// Number of labels in the FQDN (paper URL feature #3,
    /// "count of level domains"). Zero for IP hosts.
    pub fn level_domain_count(&self) -> usize {
        self.fqdn().map_or(0, fqdn::Fqdn::label_count)
    }

    /// Length of the FQDN string (paper URL feature #5). Zero for IP hosts.
    pub fn fqdn_len(&self) -> usize {
        self.fqdn().map_or(0, fqdn::Fqdn::len)
    }

    /// Length of the mld (paper URL feature #6). Zero for IP hosts.
    pub fn mld_len(&self) -> usize {
        self.mld().map_or(0, str::len)
    }

    /// The attacker-controlled parts: subdomains, path and query.
    ///
    /// For IP-literal hosts the subdomain part is empty.
    pub fn free_url(&self) -> FreeUrl {
        FreeUrl {
            subdomains: self
                .fqdn()
                .map(|f| f.subdomains().join("."))
                .unwrap_or_default(),
            path: self.path.clone(),
            query: self.query.clone().unwrap_or_default(),
        }
    }

    /// The FreeURL text as borrowed pieces: every subdomain label, then
    /// the path, then the query.
    ///
    /// Term extraction over these pieces yields exactly the terms of
    /// `free_url().joined()` — the joining `.`/`/`/`?` characters are
    /// term separators anyway — without allocating the intermediate
    /// strings. Empty pieces contribute nothing.
    pub fn free_parts(&self) -> impl Iterator<Item = &str> {
        let subdomains = self.fqdn().map_or(&[][..], fqdn::Fqdn::subdomains);
        subdomains
            .iter()
            .map(String::as_str)
            .chain(std::iter::once(self.path.as_str()))
            .chain(self.query.as_deref())
    }

    /// Dots across the FreeURL parts without building them
    /// (`free_url().dot_count()`): subdomain labels contain no dots, so
    /// the subdomain contribution is the joining dots between labels.
    pub fn free_dot_count(&self) -> usize {
        let subdomain_labels = self.fqdn().map_or(0, |f| f.subdomains().len());
        subdomain_labels.saturating_sub(1)
            + self.path.matches('.').count()
            + self.query.as_deref().map_or(0, |q| q.matches('.').count())
    }

    /// The labels of the RDN (`rdn()` without the joining allocation);
    /// empty for IP-literal hosts.
    pub fn rdn_labels(&self) -> &[String] {
        self.fqdn().map_or(&[][..], fqdn::Fqdn::rdn_labels)
    }

    /// `true` when `rdn` matches this URL's RDN string — for IP-literal
    /// hosts, the canonical dotted-decimal host — compared without
    /// allocating either.
    pub fn rdn_matches(&self, rdn: &str) -> bool {
        match &self.host {
            Host::Domain(f) => f.rdn_matches(rdn),
            Host::Ipv4(octets) => {
                let mut segments = rdn.split('.');
                for expected in octets {
                    let Some(seg) = segments.next() else {
                        return false;
                    };
                    // Canonical decimal form only: no empty segments, no
                    // leading zeros, value in range.
                    if seg.is_empty() || (seg.len() > 1 && seg.starts_with('0')) {
                        return false;
                    }
                    if seg.parse::<u8>() != Ok(*expected) {
                        return false;
                    }
                }
                segments.next().is_none()
            }
        }
    }

    /// `true` when both URLs share the same registered domain name.
    ///
    /// This is the internal/external link split of Section III-A: a URL is
    /// *internal* to a page when its RDN is one of the RDNs the page owner
    /// controls.
    pub fn same_rdn(&self, other: &Url) -> bool {
        match (self.fqdn(), other.fqdn()) {
            // Label-wise comparison equals dotted-string comparison:
            // labels are non-empty and dot-free, so joining is injective.
            (Some(a), Some(b)) => a.rdn_labels() == b.rdn_labels(),
            // Two identical IP hosts count as the same origin.
            (None, None) => self.host == other.host,
            _ => false,
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl std::str::FromStr for Url {
    type Err = ParseUrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

impl AsRef<str> for Url {
    fn as_ref(&self) -> &str {
        &self.raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amazon_example_from_paper() {
        let url = Url::parse("https://www.amazon.co.uk/ap/signin?_encoding=UTF8").unwrap();
        assert_eq!(url.scheme(), &Scheme::Https);
        assert_eq!(url.fqdn_str().as_deref(), Some("www.amazon.co.uk"));
        assert_eq!(url.rdn().as_deref(), Some("amazon.co.uk"));
        assert_eq!(url.mld(), Some("amazon"));
        assert_eq!(url.public_suffix().as_deref(), Some("co.uk"));
        let free = url.free_url();
        assert_eq!(free.subdomains, "www");
        assert_eq!(free.path, "ap/signin");
        assert_eq!(free.query, "_encoding=UTF8");
    }

    #[test]
    fn scheme_defaults_to_http() {
        let url = Url::parse("example.com/x").unwrap();
        assert_eq!(url.scheme(), &Scheme::Http);
        assert!(!url.is_https());
    }

    #[test]
    fn other_scheme_is_preserved() {
        let url = Url::parse("ftp://files.example.com/pub").unwrap();
        assert_eq!(url.scheme(), &Scheme::Other("ftp".into()));
    }

    #[test]
    fn ip_host_has_no_fqdn() {
        let url = Url::parse("http://192.168.0.1/login").unwrap();
        assert!(url.host().is_ip());
        assert_eq!(url.fqdn(), None);
        assert_eq!(url.rdn(), None);
        assert_eq!(url.mld(), None);
        assert_eq!(url.level_domain_count(), 0);
        assert_eq!(url.fqdn_len(), 0);
        assert_eq!(url.free_url().subdomains, "");
    }

    #[test]
    fn port_is_parsed_and_not_in_fqdn() {
        let url = Url::parse("http://example.com:8080/a").unwrap();
        assert_eq!(url.port(), Some(8080));
        assert_eq!(url.fqdn_str().as_deref(), Some("example.com"));
    }

    #[test]
    fn fragment_split_off() {
        let url = Url::parse("http://example.com/a?b=c#frag").unwrap();
        assert_eq!(url.fragment(), Some("frag"));
        assert_eq!(url.query(), Some("b=c"));
    }

    #[test]
    fn host_lowercased_path_case_preserved() {
        let url = Url::parse("HTTP://WWW.Example.COM/Path").unwrap();
        assert_eq!(url.fqdn_str().as_deref(), Some("www.example.com"));
        assert_eq!(url.path(), "Path");
    }

    #[test]
    fn free_url_dot_count() {
        let url = Url::parse("http://a.b.example.com/p.q/r?x=1.2.3").unwrap();
        // subdomains "a.b" has 1 dot, path "p.q/r" has 1, query "x=1.2.3" has 2.
        assert_eq!(url.free_url().dot_count(), 4);
    }

    #[test]
    fn free_url_joined() {
        let url = Url::parse("http://login.pay.example.com/sign/in?user=x").unwrap();
        assert_eq!(url.free_url().joined(), "login.pay/sign/in?user=x");
    }

    #[test]
    fn free_parts_and_dot_count_match_free_url() {
        let cases = [
            "http://a.b.example.com/p.q/r?x=1.2.3",
            "http://login.pay.example.com/sign/in?user=x",
            "https://example.com/",
            "http://10.0.0.1/x.y?q=1",
            "https://www.amazon.co.uk/ap/signin?_encoding=UTF8",
        ];
        for s in cases {
            let url = Url::parse(s).unwrap();
            let free = url.free_url();
            assert_eq!(url.free_dot_count(), free.dot_count(), "{s}");
            // The borrowed pieces carry the same term stream as the
            // joined string: joining separators are non-letters.
            let parts: Vec<&str> = url.free_parts().collect();
            let joined = free.joined();
            for p in &parts {
                assert!(joined.contains(p), "{s}: {p:?} not in {joined:?}");
            }
        }
    }

    #[test]
    fn rdn_matches_compares_without_alloc() {
        let url = Url::parse("https://www.amazon.co.uk/ap").unwrap();
        assert!(url.rdn_matches("amazon.co.uk"));
        assert!(!url.rdn_matches("amazon.co"));
        assert!(!url.rdn_matches("amazon.co.uk.evil"));
        assert!(!url.rdn_matches("www.amazon.co.uk"));
        assert_eq!(url.rdn_labels(), ["amazon", "co", "uk"]);

        let ip = Url::parse("http://10.0.0.1/x").unwrap();
        assert!(ip.rdn_matches("10.0.0.1"));
        assert!(!ip.rdn_matches("10.0.0.2"));
        assert!(!ip.rdn_matches("10.0.0"));
        assert!(!ip.rdn_matches("10.0.0.01"), "non-canonical zeros");
        assert!(ip.rdn_labels().is_empty());
    }

    #[test]
    fn same_rdn_across_subdomains() {
        let a = Url::parse("http://login.example.com/").unwrap();
        let b = Url::parse("https://cdn.example.com/x").unwrap();
        let c = Url::parse("https://example.org/").unwrap();
        assert!(a.same_rdn(&b));
        assert!(!a.same_rdn(&c));
    }

    #[test]
    fn same_rdn_ip_hosts() {
        let a = Url::parse("http://10.0.0.1/x").unwrap();
        let b = Url::parse("http://10.0.0.1/y").unwrap();
        let c = Url::parse("http://10.0.0.2/y").unwrap();
        assert!(a.same_rdn(&b));
        assert!(!a.same_rdn(&c));
    }

    #[test]
    fn errors_on_empty_and_garbage() {
        assert!(Url::parse("").is_err());
        assert!(Url::parse("http://").is_err());
        assert!(Url::parse("http://exa mple.com").is_err());
        assert!(Url::parse("http://a..b.com").is_err());
    }

    #[test]
    fn display_roundtrips_raw() {
        let s = "https://www.amazon.co.uk/ap/signin?_encoding=UTF8";
        let url = Url::parse(s).unwrap();
        assert_eq!(url.to_string(), s);
        assert_eq!(url.as_str(), s);
        assert_eq!(url.len(), s.len());
    }

    #[test]
    fn fromstr_works() {
        let url: Url = "http://example.com".parse().unwrap();
        assert_eq!(url.mld(), Some("example"));
    }

    #[test]
    fn url_features_lengths() {
        let url = Url::parse("https://secure.bank-login.example.net/a/b").unwrap();
        assert_eq!(url.level_domain_count(), 4);
        assert_eq!(url.fqdn_len(), "secure.bank-login.example.net".len());
        assert_eq!(url.mld_len(), "example".len());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Url>();
        assert_send_sync::<Fqdn>();
    }
}
