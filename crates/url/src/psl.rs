//! An embedded snapshot of public suffix rules.
//!
//! The paper relies on the [Public Suffix List](https://publicsuffix.org/)
//! to split a fully qualified domain name into a registered domain name
//! (`mld.ps`) and subdomains. Shipping the full, constantly-changing list
//! is unnecessary for the reproduction; we embed a representative rule set
//! covering every suffix produced by the synthetic web plus the common
//! multi-label and wildcard cases so the matching algorithm is exercised
//! in full (exact rules, wildcard rules and exception rules).
//!
//! Matching follows the PSL algorithm: among all rules matching a domain,
//! the one with the most labels wins; exception rules (prefixed `!`) beat
//! wildcard rules; if nothing matches, the implicit rule `*` applies (the
//! last label is the suffix).

/// Exact public suffix rules (most common global and country suffixes).
const EXACT: &[&str] = &[
    // Generic TLDs.
    "com", "net", "org", "edu", "gov", "mil", "int", "info", "biz", "name", "pro", "xyz", "top",
    "online", "site", "club", "shop", "app", "dev", "page", "blog", "cloud", "store", "tech",
    "space", "website", "live", "world", "today", "news", "agency", "email", "group", "life",
    "plus", "zone", "art", "io", "co", "me", "tv", "cc", "ws", "tk", "ml", "ga", "cf", "gq", "pw",
    "link", "click", "work", // Country TLDs.
    "fi", "fr", "de", "it", "pt", "es", "us", "ca", "au", "nz", "jp", "cn", "ru", "br", "in", "nl",
    "se", "no", "dk", "pl", "ch", "at", "be", "ie", "gr", "cz", "hu", "ro", "sk", "bg", "hr", "si",
    "lt", "lv", "ee", "lu", "is", "mt", "cy", "tr", "ua", "mx", "ar", "cl", "pe", "uy", "py", "bo",
    "ec", "za", "ng", "ke", "eg", "ma", "il", "sa", "ae", "qa", "kw", "th", "vn", "id", "my", "sg",
    "ph", "kr", "tw", "hk", "mo", "uk", // Multi-label suffixes.
    "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk", "ltd.uk", "plc.uk", "com.au",
    "net.au", "org.au", "edu.au", "gov.au", "id.au", "co.nz", "net.nz", "org.nz", "ac.nz",
    "govt.nz", "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp", "com.br", "net.br", "org.br", "gov.br",
    "edu.br", "com.cn", "net.cn", "org.cn", "gov.cn", "edu.cn", "co.in", "net.in", "org.in",
    "firm.in", "gen.in", "ind.in", "com.mx", "org.mx", "net.mx", "gob.mx", "edu.mx", "co.za",
    "org.za", "net.za", "web.za", "gov.za", "ac.za", "com.ar", "com.tr", "com.tw", "com.hk",
    "com.sg", "com.my", "com.ph", "com.vn", "com.eg", "com.sa", "com.ua", "com.pl", "co.kr",
    "or.kr", "go.kr", "ac.kr", "co.id", "or.id", "web.id", "ac.id", "net.pl", "org.pl", "edu.pl",
    "co.il", "org.il", "net.il", "ac.il", "gov.il", "co.th", "in.th", "ac.th", "go.th",
];

/// Wildcard rules: `*.ck` means every label under `ck` is a public suffix.
const WILDCARD: &[&str] = &["ck", "er", "fk"];

/// Exception rules: these domains are registrable despite a wildcard match.
const EXCEPTIONS: &[&str] = &["www.ck"];

/// How many trailing labels of `labels` form the public suffix.
///
/// `labels` must be lowercased domain labels in their natural order
/// (e.g. `["www", "amazon", "co", "uk"]` → `2`).
///
/// Returns at least 1 for a non-empty input (implicit `*` rule) and at
/// most `labels.len()` (a bare public suffix like `com` is its own
/// suffix, leaving no registrable part).
///
/// # Examples
///
/// ```
/// let labels = ["www", "amazon", "co", "uk"].map(String::from);
/// assert_eq!(kyp_url::psl::suffix_label_count(&labels), 2);
/// ```
pub fn suffix_label_count(labels: &[String]) -> usize {
    if labels.is_empty() {
        return 0;
    }
    // Exception rules win outright: the matched portion *minus its first
    // label* is the suffix.
    for rule in EXCEPTIONS {
        let rule_labels: Vec<&str> = rule.split('.').collect();
        if tail_matches(labels, &rule_labels) {
            return rule_labels.len() - 1;
        }
    }
    let mut best = 1; // implicit `*` rule
    for rule in EXACT {
        let rule_labels: Vec<&str> = rule.split('.').collect();
        if rule_labels.len() <= labels.len() && tail_matches(labels, &rule_labels) {
            best = best.max(rule_labels.len());
        }
    }
    for rule in WILDCARD {
        let rule_labels: Vec<&str> = rule.split('.').collect();
        // `*.ck` matches any domain with at least rule_labels.len()+1 labels.
        if labels.len() > rule_labels.len() && tail_matches(labels, &rule_labels) {
            best = best.max(rule_labels.len() + 1);
        }
    }
    best.min(labels.len())
}

/// Returns `true` when a string is a known public suffix on its own
/// (useful for generators that must pick valid suffixes).
pub fn is_public_suffix(suffix: &str) -> bool {
    let labels: Vec<String> = suffix.split('.').map(str::to_owned).collect();
    if labels.iter().any(String::is_empty) {
        return false;
    }
    suffix_label_count(&labels) == labels.len()
}

fn tail_matches(labels: &[String], rule: &[&str]) -> bool {
    if rule.len() > labels.len() {
        return false;
    }
    labels[labels.len() - rule.len()..]
        .iter()
        .zip(rule.iter())
        .all(|(a, b)| a == b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(s: &str) -> Vec<String> {
        s.split('.').map(str::to_owned).collect()
    }

    #[test]
    fn single_label_tld() {
        assert_eq!(suffix_label_count(&labels("example.com")), 1);
        assert_eq!(suffix_label_count(&labels("a.b.example.org")), 1);
    }

    #[test]
    fn multi_label_suffix() {
        assert_eq!(suffix_label_count(&labels("amazon.co.uk")), 2);
        assert_eq!(suffix_label_count(&labels("www.amazon.co.uk")), 2);
        assert_eq!(suffix_label_count(&labels("shop.example.com.au")), 2);
    }

    #[test]
    fn unknown_tld_falls_back_to_one() {
        assert_eq!(suffix_label_count(&labels("example.zzztld")), 1);
    }

    #[test]
    fn wildcard_rule() {
        // *.ck: anything.ck is a suffix, so foo.bar.ck has RDN foo.bar.ck? No:
        // bar.ck is the suffix (2 labels), foo.bar.ck is registrable.
        assert_eq!(suffix_label_count(&labels("foo.bar.ck")), 2);
        assert_eq!(suffix_label_count(&labels("bar.ck")), 2);
    }

    #[test]
    fn exception_rule() {
        // !www.ck: www.ck is registrable, suffix is just "ck".
        assert_eq!(suffix_label_count(&labels("www.ck")), 1);
        assert_eq!(suffix_label_count(&labels("a.www.ck")), 1);
    }

    #[test]
    fn bare_suffix_is_whole_input() {
        assert_eq!(suffix_label_count(&labels("com")), 1);
        assert_eq!(suffix_label_count(&labels("co.uk")), 2);
    }

    #[test]
    fn empty_input() {
        assert_eq!(suffix_label_count(&[]), 0);
    }

    #[test]
    fn is_public_suffix_checks() {
        assert!(is_public_suffix("com"));
        assert!(is_public_suffix("co.uk"));
        assert!(!is_public_suffix("amazon.co.uk"));
        assert!(!is_public_suffix(""));
        assert!(!is_public_suffix("a..b"));
        assert!(is_public_suffix("zzztld")); // implicit * rule
    }

    #[test]
    fn longest_rule_wins() {
        // "uk" and "co.uk" both match; co.uk must win.
        assert_eq!(suffix_label_count(&labels("x.co.uk")), 2);
        // "uk" alone for a non-listed second level.
        assert_eq!(suffix_label_count(&labels("x.zzz.uk")), 1);
    }
}
