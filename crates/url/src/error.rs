use std::error::Error;
use std::fmt;

/// Error returned by [`Url::parse`](crate::Url::parse).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseUrlError {
    /// The input was empty or contained only a scheme.
    MissingHost,
    /// A domain label was empty (consecutive dots, leading/trailing dot).
    EmptyLabel,
    /// The host contained a character outside `[a-z0-9-]`.
    InvalidHostChar(char),
    /// The port after `:` was not a valid `u16`.
    InvalidPort,
    /// A label exceeded 63 characters or the host exceeded 253.
    LabelTooLong,
}

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUrlError::MissingHost => write!(f, "url has no host component"),
            ParseUrlError::EmptyLabel => write!(f, "host contains an empty label"),
            ParseUrlError::InvalidHostChar(c) => {
                write!(f, "invalid character {c:?} in host")
            }
            ParseUrlError::InvalidPort => write!(f, "invalid port number"),
            ParseUrlError::LabelTooLong => write!(f, "host label exceeds length limit"),
        }
    }
}

impl Error for ParseUrlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_period() {
        for e in [
            ParseUrlError::MissingHost,
            ParseUrlError::EmptyLabel,
            ParseUrlError::InvalidHostChar('!'),
            ParseUrlError::InvalidPort,
            ParseUrlError::LabelTooLong,
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn implements_error_send_sync() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ParseUrlError>();
    }
}
