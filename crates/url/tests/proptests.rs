//! Property-based tests for URL parsing: the parser must never panic on
//! arbitrary input and must uphold the Fig. 1 decomposition invariants on
//! everything it accepts.

use kyp_url::{psl, Fqdn, Url};
use proptest::prelude::*;

proptest! {
    /// Arbitrary byte soup never panics the parser.
    #[test]
    fn parse_never_panics(input in ".{0,120}") {
        let _ = Url::parse(&input);
    }

    /// Anything the parser accepts decomposes consistently.
    #[test]
    fn accepted_urls_decompose(input in ".{0,120}") {
        if let Ok(url) = Url::parse(&input) {
            // FQDN xor IP.
            if let Some(fqdn) = url.fqdn() {
                let rdn = url.rdn().unwrap();
                prop_assert!(fqdn.to_string().ends_with(&rdn));
                prop_assert!(fqdn.label_count() >= 1);
                // Subdomain labels + RDN labels == all labels.
                let rdn_labels = rdn.split('.').count();
                prop_assert_eq!(
                    fqdn.subdomains().len() + rdn_labels,
                    fqdn.label_count()
                );
            } else {
                prop_assert!(url.host().is_ip());
                prop_assert_eq!(url.mld(), None);
            }
            // FreeURL is derived without panic.
            let _ = url.free_url().joined();
        }
    }

    /// Valid host names round-trip through Fqdn.
    #[test]
    fn fqdn_roundtrip(labels in proptest::collection::vec("[a-z][a-z0-9]{0,8}", 1..5)) {
        let host = labels.join(".");
        let fqdn = Fqdn::parse(&host).unwrap();
        prop_assert_eq!(fqdn.to_string(), host);
        prop_assert_eq!(fqdn.label_count(), labels.len());
    }

    /// The public-suffix split always leaves a non-empty suffix of at
    /// most all labels.
    #[test]
    fn psl_split_bounds(labels in proptest::collection::vec("[a-z]{1,8}", 1..6)) {
        let n = psl::suffix_label_count(&labels);
        prop_assert!(n >= 1);
        prop_assert!(n <= labels.len());
    }

    /// same_rdn is reflexive and symmetric.
    #[test]
    fn same_rdn_relation(a in "[a-z]{1,8}", b in "[a-z]{1,8}") {
        let u = Url::parse(&format!("http://{a}.example.com/")).unwrap();
        let v = Url::parse(&format!("http://{b}.example.com/")).unwrap();
        let w = Url::parse(&format!("http://{a}.other.org/")).unwrap();
        prop_assert!(u.same_rdn(&u));
        prop_assert_eq!(u.same_rdn(&v), v.same_rdn(&u));
        prop_assert!(u.same_rdn(&v));
        prop_assert!(!u.same_rdn(&w));
    }
}
