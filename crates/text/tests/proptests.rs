//! Property-based tests for term extraction and term distributions.

use kyp_text::tfidf::Corpus;
use kyp_text::{extract_term_set, extract_terms, TermDistribution, MIN_TERM_LEN};
use proptest::prelude::*;

proptest! {
    /// Extraction never panics and every term is canonical.
    #[test]
    fn terms_are_canonical(input in ".{0,300}") {
        for t in extract_terms(&input) {
            prop_assert!(t.len() >= MIN_TERM_LEN);
            prop_assert!(t.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    /// Case and accent variations canonicalise to the same terms.
    #[test]
    fn extraction_case_insensitive(input in "[a-zA-Z ]{0,120}") {
        prop_assert_eq!(
            extract_terms(&input),
            extract_terms(&input.to_uppercase())
        );
    }

    /// The term set is the deduplicated term list.
    #[test]
    fn term_set_matches_terms(input in ".{0,200}") {
        let set = extract_term_set(&input);
        let mut dedup = Vec::new();
        for t in extract_terms(&input) {
            if !dedup.contains(&t) {
                dedup.push(t);
            }
        }
        prop_assert_eq!(set, dedup);
    }

    /// Distribution totals equal the number of extracted terms, and
    /// merging adds totals.
    #[test]
    fn distribution_accounting(a in "[a-z ]{0,150}", b in "[a-z ]{0,150}") {
        let da = TermDistribution::from_text(&a);
        let db = TermDistribution::from_text(&b);
        prop_assert_eq!(da.total_count() as usize, extract_terms(&a).len());
        let mut merged = da.clone();
        merged.merge(&db);
        prop_assert_eq!(merged.total_count(), da.total_count() + db.total_count());
        // Probabilities of a non-empty distribution sum to 1.
        if !merged.is_empty() {
            let sum: f64 = merged.iter().map(|(_, p)| p).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// Hellinger and Jaccard agree on the extremes.
    #[test]
    fn metrics_agree_on_extremes(terms in proptest::collection::vec("[a-z]{3,7}", 1..15)) {
        let d = TermDistribution::from_terms(terms.clone());
        prop_assert_eq!(d.hellinger_squared(&d), Some(0.0));
        prop_assert_eq!(d.jaccard_distance(&d), Some(0.0));
        // A disjoint distribution is maximally distant under both.
        let other = TermDistribution::from_terms(
            terms.iter().map(|t| format!("zzz{t}")).collect::<Vec<_>>(),
        );
        if terms.iter().all(|t| !t.starts_with("zzz")) {
            prop_assert_eq!(d.jaccard_distance(&other), Some(1.0));
            let h = d.hellinger_squared(&other).unwrap();
            prop_assert!((h - 1.0).abs() < 1e-9);
        }
    }

    /// TF-IDF scores are non-negative and only cover the document's terms.
    #[test]
    fn tfidf_support(docs in proptest::collection::vec("[a-z ]{0,60}", 0..8), query in "[a-z ]{0,60}") {
        let mut corpus = Corpus::new();
        for d in &docs {
            corpus.add_document(d);
        }
        let scores = corpus.tfidf(&query);
        let terms = extract_term_set(&query);
        prop_assert_eq!(scores.len(), terms.len());
        for (t, v) in scores {
            prop_assert!(v >= 0.0);
            prop_assert!(terms.contains(&t));
        }
    }
}
