#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Term extraction and term-distribution machinery for the *Know Your
//! Phish* reproduction.
//!
//! Section III-B of the paper defines terms over the alphabet
//! `A = {a..z}`:
//!
//! 1. canonicalise letters — uppercase, accented and special characters are
//!    mapped to a matching letter in `A` (e.g. `B`, `β`, `b̀`, `b̂` → `b`);
//! 2. split the input whenever a character outside `A` is encountered;
//! 3. discard substrings shorter than 3 characters.
//!
//! A *term distribution* is the set of extracted terms with their relative
//! frequencies; distributions from different data sources of a webpage are
//! compared with the (squared) Hellinger distance, which yields the paper's
//! 66 term-usage-consistency features.
//!
//! # Examples
//!
//! ```
//! use kyp_text::{extract_terms, TermDistribution};
//!
//! let terms = extract_terms("Café Zürich: sign-in 24/7!");
//! assert_eq!(terms, ["cafe", "zurich", "sign"]);
//!
//! let a = TermDistribution::from_text("pay pal login");
//! let b = TermDistribution::from_text("pay pal login");
//! assert_eq!(a.hellinger_squared(&b), Some(0.0));
//! ```

mod canonical;
mod distribution;
pub mod tfidf;

pub use canonical::canonicalize_char;
pub use distribution::{KeyedDistribution, TermDistribution, TermScratch};

/// Minimum length of a term (paper: "throw away any substring whose length
/// is less than 3").
pub const MIN_TERM_LEN: usize = 3;

/// Extracts the terms of a string per Section III-B of the paper.
///
/// Characters are canonicalised to `[a-z]` (case folding plus accent
/// stripping); any non-letter splits the string; substrings shorter than
/// [`MIN_TERM_LEN`] are dropped. Duplicates are preserved in order of
/// appearance so callers can build frequency distributions.
///
/// # Examples
///
/// ```
/// assert_eq!(kyp_text::extract_terms("secure-login2.example"),
///            ["secure", "login", "example"]);
/// ```
pub fn extract_terms(input: &str) -> Vec<String> {
    let mut terms = Vec::new();
    let mut current = String::new();
    for c in input.chars() {
        match canonicalize_char(c) {
            Some(letter) => current.push(letter),
            None => {
                if current.len() >= MIN_TERM_LEN {
                    terms.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
            }
        }
    }
    if current.len() >= MIN_TERM_LEN {
        terms.push(current);
    }
    terms
}

/// Counts the terms of a string per Section III-B without allocating:
/// equivalent to `extract_terms(input).len()` but with no `String` or
/// `Vec` construction. Used by hot-path features that only need the
/// count (e.g. the f1 URL statistics).
///
/// # Examples
///
/// ```
/// assert_eq!(kyp_text::term_count("secure-login2.example"), 3);
/// assert_eq!(kyp_text::term_count("a-b-c"), 0);
/// ```
pub fn term_count(input: &str) -> usize {
    let bytes = input.as_bytes();
    let mut count = 0;
    let mut len = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        // ASCII bytes — the whole alphabet of URLs — are classified
        // directly; multi-byte characters take canonicalize_char's table.
        let is_letter = if b.is_ascii() {
            i += 1;
            b.is_ascii_alphabetic()
        } else {
            let Some(c) = input[i..].chars().next() else {
                break;
            };
            i += c.len_utf8();
            canonicalize_char(c).is_some()
        };
        if is_letter {
            len += 1;
        } else {
            if len >= MIN_TERM_LEN {
                count += 1;
            }
            len = 0;
        }
    }
    if len >= MIN_TERM_LEN {
        count += 1;
    }
    count
}

/// Extracts the *distinct* terms of a string, preserving first-appearance
/// order. Convenience for keyterm-set logic (Section V-A).
pub fn extract_term_set(input: &str) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    extract_terms(input)
        .into_iter()
        .filter(|t| seen.insert(t.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_letters() {
        assert_eq!(
            extract_terms("www.amazon.co.uk/ap/signin?_encoding=UTF8"),
            ["www", "amazon", "signin", "encoding", "utf"]
        );
    }

    #[test]
    fn drops_short_terms() {
        assert_eq!(extract_terms("a ab abc abcd"), ["abc", "abcd"]);
        assert!(extract_terms("x y z").is_empty());
    }

    #[test]
    fn folds_case_and_accents() {
        assert_eq!(extract_terms("CAFÉ müller"), ["cafe", "muller"]);
        assert_eq!(extract_terms("España ação"), ["espana", "acao"]);
    }

    #[test]
    fn digits_and_hyphens_split() {
        // Paper limitation example: "dl4a" splits into "dl" and "a", both
        // discarded as too short.
        assert!(extract_terms("dl4a").is_empty());
        assert_eq!(extract_terms("e-go s2mr"), Vec::<String>::new());
        assert_eq!(extract_terms("theinstantexchange"), ["theinstantexchange"]);
    }

    #[test]
    fn empty_input() {
        assert!(extract_terms("").is_empty());
        assert!(extract_terms("123 456 !!").is_empty());
    }

    #[test]
    fn duplicates_preserved() {
        assert_eq!(extract_terms("pay pay pal"), ["pay", "pay", "pal"]);
    }

    #[test]
    fn term_count_matches_extract_terms_len() {
        let cases = [
            "www.amazon.co.uk/ap/signin?_encoding=UTF8",
            "a ab abc abcd",
            "CAFÉ müller",
            "dl4a",
            "",
            "123 456 !!",
            "pay pay pal",
            "theinstantexchange",
            "straße βeta",
        ];
        for c in cases {
            assert_eq!(term_count(c), extract_terms(c).len(), "{c:?}");
        }
    }

    #[test]
    fn term_set_dedups_in_order() {
        assert_eq!(
            extract_term_set("pay pal pay login"),
            ["pay", "pal", "login"]
        );
    }

    #[test]
    fn greek_beta_maps_to_b() {
        // Paper example: { B, β, b̀, b̂ } → b.
        assert_eq!(extract_terms("βeta"), ["beta"]);
    }

    #[test]
    fn german_sharp_s() {
        assert_eq!(extract_terms("straße"), ["strase"]);
    }
}
