use crate::{canonicalize_char, MIN_TERM_LEN};
use serde::{Deserialize, Serialize};

/// A term distribution `D_S`: the terms of a data source with their
/// relative frequencies (Section III-B).
///
/// The distribution is stored as raw counts so distributions can be merged
/// cheaply; probabilities are derived on demand. Internally the distinct
/// terms live concatenated in one `String` with a `(start, end, count)`
/// span table sorted by term — building a distribution costs two
/// allocations however many terms it holds, lookups are a binary search
/// over contiguous memory, and the pairwise distances walk two sorted
/// tables in lockstep — the layout behind the hot-path consistency
/// features. The JSON form is unchanged from the original tree-backed
/// representation (`counts` as a sorted object).
///
/// # Examples
///
/// ```
/// use kyp_text::TermDistribution;
///
/// let d = TermDistribution::from_text("pay pal pay");
/// assert_eq!(d.probability("pay"), 2.0 / 3.0);
/// assert_eq!(d.probability("pal"), 1.0 / 3.0);
/// assert_eq!(d.probability("bank"), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TermDistribution {
    /// Distinct terms in lexicographic order, concatenated back to back.
    terms: String,
    /// `(start, end, count)` per distinct term, in term order. The
    /// representation is canonical (offsets follow from the sorted terms),
    /// so derived equality matches logical equality.
    spans: Vec<(u32, u32, u32)>,
    total: u32,
}

/// Appends one distinct term to a `(terms, spans)` table under
/// construction.
#[inline]
fn push_entry(terms: &mut String, spans: &mut Vec<(u32, u32, u32)>, term: &str, count: u32) {
    let start = terms.len() as u32;
    terms.push_str(term);
    spans.push((start, terms.len() as u32, count));
}

/// Reusable buffers for allocation-light distribution building.
///
/// [`TermDistribution::from_text_in`] canonicalises the input into one
/// growable byte buffer, records term *spans* instead of owned strings,
/// sorts the spans, and emits the distribution in two allocations. The
/// buffers are retained (not freed) across calls, so a batch loop that
/// processes thousands of pages reuses the same backing storage
/// throughout.
///
/// # Examples
///
/// ```
/// use kyp_text::{TermDistribution, TermScratch};
///
/// let mut scratch = TermScratch::new();
/// let a = TermDistribution::from_text_in("pay pal pay", &mut scratch);
/// let b = TermDistribution::from_text("pay pal pay");
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Default)]
pub struct TermScratch {
    /// Canonicalised letters of all kept terms, concatenated.
    buf: String,
    /// `(start, end)` byte spans of terms inside `buf`.
    spans: Vec<(u32, u32)>,
    /// Sort workspace: `(prefix key, start, end)` per span.
    keyed: Vec<(u64, u32, u32)>,
}

/// The first eight bytes of a term packed big-endian into a `u64`,
/// zero-padded on the right. Terms are canonical (`[a-z]+`, no zero
/// bytes), so comparing keys equals comparing the first eight bytes
/// lexicographically, with a shorter term sorting before its extensions —
/// exactly the prefix of full lexicographic order. Two distinct terms
/// share a key only when both are at least eight bytes long and agree on
/// the first eight, so a tie-break on the bytes past the prefix restores
/// the total order.
#[inline]
fn prefix_key(bytes: &[u8]) -> u64 {
    let mut packed = [0u8; 8];
    let n = bytes.len().min(8);
    packed[..n].copy_from_slice(&bytes[..n]);
    u64::from_be_bytes(packed)
}

impl TermScratch {
    /// Creates an empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the recorded terms, keeping the allocations.
    fn reset(&mut self) {
        self.buf.clear();
        self.spans.clear();
    }

    /// Ends the term starting at `start`: records its span when long
    /// enough, discards it otherwise. Returns the next term's start.
    #[inline]
    fn flush_span(&mut self, start: usize) -> usize {
        if self.buf.len() - start >= MIN_TERM_LEN {
            self.spans.push((start as u32, self.buf.len() as u32));
        } else {
            self.buf.truncate(start);
        }
        self.buf.len()
    }

    /// Canonicalises `text` and records its term spans.
    ///
    /// ASCII bytes — the overwhelming majority in page text and URLs —
    /// are classified directly; only multi-byte characters go through
    /// [`canonicalize_char`]'s full table, matching its ASCII fast path
    /// exactly.
    fn push_text(&mut self, text: &str) {
        let mut start = self.buf.len();
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            let letter = if b.is_ascii() {
                i += 1;
                if b.is_ascii_lowercase() {
                    Some(b as char)
                } else if b.is_ascii_uppercase() {
                    Some(b.to_ascii_lowercase() as char)
                } else {
                    None
                }
            } else {
                let Some(c) = text[i..].chars().next() else {
                    break;
                };
                i += c.len_utf8();
                canonicalize_char(c)
            };
            if let Some(l) = letter {
                self.buf.push(l);
            } else {
                start = self.flush_span(start);
            }
        }
        self.flush_span(start);
    }

    /// Sorts the recorded spans and run-length-encodes them into a
    /// distribution — two allocations however many terms were pushed.
    ///
    /// Spans are sorted by their [`prefix_key`] with a byte tie-break
    /// past the prefix — the same total order as comparing whole terms,
    /// with almost every comparison a single integer compare.
    fn build(&mut self) -> TermDistribution {
        let bytes = self.buf.as_bytes();
        self.keyed.clear();
        self.keyed.extend(
            self.spans
                .iter()
                .map(|&(s, e)| (prefix_key(&bytes[s as usize..e as usize]), s, e)),
        );
        self.keyed.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0).then_with(|| {
                let ta = &bytes[(a.1 + 8).min(a.2) as usize..a.2 as usize];
                let tb = &bytes[(b.1 + 8).min(b.2) as usize..b.2 as usize];
                ta.cmp(tb)
            })
        });
        let buf = self.buf.as_str();
        let mut terms = String::with_capacity(self.buf.len());
        let mut spans: Vec<(u32, u32, u32)> = Vec::with_capacity(self.keyed.len());
        for &(_, s, e) in &self.keyed {
            let term = &buf[s as usize..e as usize];
            match spans.last_mut() {
                Some(last) if terms[last.0 as usize..last.1 as usize] == *term => last.2 += 1,
                _ => push_entry(&mut terms, &mut spans, term, 1),
            }
        }
        TermDistribution {
            terms,
            spans,
            total: self.spans.len() as u32,
        }
    }
}

impl TermDistribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a distribution from raw text using the paper's term
    /// extraction rules.
    pub fn from_text(text: &str) -> Self {
        let mut scratch = TermScratch::new();
        Self::from_text_in(text, &mut scratch)
    }

    /// Builds a distribution from raw text, reusing `scratch`'s buffers.
    /// Identical output to [`Self::from_text`]; meant for batch loops.
    pub fn from_text_in(text: &str, scratch: &mut TermScratch) -> Self {
        scratch.reset();
        scratch.push_text(text);
        scratch.build()
    }

    /// Builds a distribution from several texts (e.g. the FreeURL parts of
    /// a whole set of links).
    pub fn from_texts<I, S>(texts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut scratch = TermScratch::new();
        Self::from_texts_in(texts, &mut scratch)
    }

    /// Builds a distribution from several texts, reusing `scratch`'s
    /// buffers. Identical output to [`Self::from_texts`].
    pub fn from_texts_in<I, S>(texts: I, scratch: &mut TermScratch) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        scratch.reset();
        for t in texts {
            scratch.push_text(t.as_ref());
        }
        scratch.build()
    }

    /// Builds a distribution from already-extracted terms.
    pub fn from_terms<I, S>(terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut all: Vec<String> = terms.into_iter().map(Into::into).collect();
        debug_assert!(
            all.iter()
                .all(|term| term.len() >= MIN_TERM_LEN
                    && term.chars().all(|c| c.is_ascii_lowercase())),
            "terms are not canonical"
        );
        let total = all.len() as u32;
        all.sort_unstable();
        let mut terms = String::new();
        let mut spans: Vec<(u32, u32, u32)> = Vec::new();
        for term in &all {
            match spans.last_mut() {
                Some(last) if terms[last.0 as usize..last.1 as usize] == **term => last.2 += 1,
                _ => push_entry(&mut terms, &mut spans, term, 1),
            }
        }
        TermDistribution {
            terms,
            spans,
            total,
        }
    }

    /// The `i`-th distinct term (term order).
    #[inline]
    fn term_at(&self, i: usize) -> &str {
        let (s, e, _) = self.spans[i];
        &self.terms[s as usize..e as usize]
    }

    /// Raw count of the `i`-th distinct term.
    #[inline]
    fn count_at(&self, i: usize) -> u32 {
        self.spans[i].2
    }

    /// Adds the terms of `text` to the distribution.
    pub fn add_text(&mut self, text: &str) {
        self.merge(&Self::from_text(text));
    }

    /// Adds one occurrence of an (already canonical) term.
    pub fn add_term(&mut self, term: String) {
        debug_assert!(
            term.len() >= crate::MIN_TERM_LEN && term.chars().all(|c| c.is_ascii_lowercase()),
            "term {term:?} is not canonical"
        );
        match self
            .spans
            .binary_search_by(|&(s, e, _)| self.terms[s as usize..e as usize].cmp(&term))
        {
            Ok(i) => self.spans[i].2 += 1,
            Err(i) => {
                // Insert the term's bytes where the displaced span started
                // (or at the end), shifting the following offsets.
                let at = self
                    .spans
                    .get(i)
                    .map_or(self.terms.len(), |&(s, _, _)| s as usize);
                self.terms.insert_str(at, &term);
                let len = term.len() as u32;
                for span in &mut self.spans[i..] {
                    span.0 += len;
                    span.1 += len;
                }
                self.spans
                    .insert(i, (at as u32, (at + term.len()) as u32, 1));
            }
        }
        self.total += 1;
    }

    /// Merges another distribution into this one (one pass over both
    /// sorted count tables).
    pub fn merge(&mut self, other: &TermDistribution) {
        if other.spans.is_empty() {
            self.total += other.total;
            return;
        }
        let mut terms = String::with_capacity(self.terms.len() + other.terms.len());
        let mut spans = Vec::with_capacity(self.spans.len() + other.spans.len());
        let (mut i, mut j) = (0, 0);
        while i < self.spans.len() && j < other.spans.len() {
            let (a, b) = (self.term_at(i), other.term_at(j));
            match a.cmp(b) {
                std::cmp::Ordering::Less => {
                    push_entry(&mut terms, &mut spans, a, self.count_at(i));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    push_entry(&mut terms, &mut spans, b, other.count_at(j));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    push_entry(
                        &mut terms,
                        &mut spans,
                        a,
                        self.count_at(i) + other.count_at(j),
                    );
                    i += 1;
                    j += 1;
                }
            }
        }
        for k in i..self.spans.len() {
            push_entry(&mut terms, &mut spans, self.term_at(k), self.count_at(k));
        }
        for k in j..other.spans.len() {
            push_entry(&mut terms, &mut spans, other.term_at(k), other.count_at(k));
        }
        self.terms = terms;
        self.spans = spans;
        self.total += other.total;
    }

    /// Index of `term` in the sorted span table, if present.
    #[inline]
    fn find(&self, term: &str) -> Option<usize> {
        self.spans
            .binary_search_by(|&(s, e, _)| self.terms[s as usize..e as usize].cmp(term))
            .ok()
    }

    /// Number of *distinct* terms.
    pub fn distinct_len(&self) -> usize {
        self.spans.len()
    }

    /// Total number of term occurrences.
    pub fn total_count(&self) -> u32 {
        self.total
    }

    /// `true` when no terms were extracted. Empty distributions yield the
    /// paper's "null features" (Section VII-B, IP-based URLs).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The probability `p_i` of a term (0.0 for absent terms).
    pub fn probability(&self, term: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        f64::from(self.find(term).map_or(0, |i| self.count_at(i))) / f64::from(self.total)
    }

    /// Raw occurrence count of a term.
    pub fn count(&self, term: &str) -> u32 {
        self.find(term).map_or(0, |i| self.count_at(i))
    }

    /// `true` when the term occurs at least once.
    pub fn contains(&self, term: &str) -> bool {
        self.find(term).is_some()
    }

    /// Iterates over `(term, probability)` pairs in lexicographic term
    /// order (deterministic, so float accumulations are reproducible).
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        let total = f64::from(self.total.max(1));
        self.spans
            .iter()
            .map(move |&(s, e, c)| (&self.terms[s as usize..e as usize], f64::from(c) / total))
    }

    /// Iterates over the distinct terms.
    pub fn terms(&self) -> impl Iterator<Item = &str> + '_ {
        self.spans
            .iter()
            .map(|&(s, e, _)| &self.terms[s as usize..e as usize])
    }

    /// The squared Hellinger distance between two distributions
    /// (paper Equation 1):
    ///
    /// `H²(P,Q) = ½ Σ_{x ∈ P∪Q} (√P(x) − √Q(x))²`
    ///
    /// Bounded in `[0, 1]`: `0` means identical distributions, `1` means
    /// disjoint supports.
    ///
    /// Returns `None` when either distribution is empty — the paper treats
    /// comparisons with empty sources as *null features* rather than
    /// extreme distances.
    ///
    /// Both sorted count tables are walked in lockstep, but the float
    /// accumulation order is exactly the original two-pass order (all of
    /// `self`'s terms, then the terms only in `other`), so the result is
    /// bit-identical to the tree-backed implementation.
    pub fn hellinger_squared(&self, other: &TermDistribution) -> Option<f64> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        let p_total = f64::from(self.total.max(1));
        let q_total = f64::from(other.total);
        let mut sum = 0.0;
        // Pass 1: every term of `self` in sorted order; `other`'s matching
        // count is found by advancing a merge cursor instead of a lookup.
        let mut j = 0;
        for i in 0..self.spans.len() {
            let t = self.term_at(i);
            let p = f64::from(self.count_at(i)) / p_total;
            while j < other.spans.len() && other.term_at(j) < t {
                j += 1;
            }
            let q = if j < other.spans.len() && other.term_at(j) == t {
                f64::from(other.count_at(j)) / q_total
            } else {
                0.0
            };
            let d = p.sqrt() - q.sqrt();
            sum += d * d;
        }
        // Pass 2: terms only in `other` — P(x) = 0 so the contribution is
        // Q(x) — again found by a merge cursor over `self`.
        let q_total = f64::from(other.total.max(1));
        let mut i = 0;
        for j in 0..other.spans.len() {
            let t = other.term_at(j);
            while i < self.spans.len() && self.term_at(i) < t {
                i += 1;
            }
            if i < self.spans.len() && self.term_at(i) == t {
                continue;
            }
            sum += f64::from(other.count_at(j)) / q_total;
        }
        Some((sum / 2.0).clamp(0.0, 1.0))
    }

    /// Jaccard distance between the *term sets* (ignoring frequencies):
    /// `1 − |A∩B| / |A∪B|`, in `[0, 1]`.
    ///
    /// A naive alternative to [`hellinger_squared`] used by the design
    /// ablations: it discards how often terms are used, which is exactly
    /// the information the paper's consistency conjecture relies on.
    /// Returns `None` when either distribution is empty, mirroring the
    /// null-feature convention.
    ///
    /// [`hellinger_squared`]: TermDistribution::hellinger_squared
    pub fn jaccard_distance(&self, other: &TermDistribution) -> Option<f64> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        // Intersection size via a merge walk over both sorted tables.
        let mut intersection = 0usize;
        let (mut i, mut j) = (0, 0);
        while i < self.spans.len() && j < other.spans.len() {
            match self.term_at(i).cmp(other.term_at(j)) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    intersection += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = self.distinct_len() + other.distinct_len() - intersection;
        Some(1.0 - intersection as f64 / union as f64)
    }

    /// Sum of probability mass of terms that are substrings of `needle`
    /// (used by the f3 features: how much of a source's mass "spells out"
    /// the starting/landing mld).
    pub fn substring_mass_of(&self, needle: &str) -> f64 {
        self.iter()
            .filter(|(t, _)| needle.contains(t))
            .map(|(_, p)| p)
            .sum()
    }

    /// A prefix-keyed view for repeated pairwise distances: see
    /// [`KeyedDistribution`]. Build it once per distribution when taking
    /// many distances (the f2 features take 11 per distribution).
    pub fn keyed(&self) -> KeyedDistribution<'_> {
        let total = f64::from(self.total.max(1));
        let all = self.terms.as_bytes();
        let entries = self
            .spans
            .iter()
            .map(|&(s, e, c)| {
                let bytes = &all[s as usize..e as usize];
                let p = f64::from(c) / total;
                KeyedEntry {
                    key: prefix_key(bytes),
                    tail: &bytes[bytes.len().min(8)..],
                    prob: p,
                    sqrt_prob: p.sqrt(),
                }
            })
            .collect();
        KeyedDistribution {
            entries,
            empty: self.is_empty(),
        }
    }
}

/// One distinct term of a [`KeyedDistribution`].
#[derive(Debug, Clone, Copy)]
struct KeyedEntry<'a> {
    /// [`prefix_key`] of the term.
    key: u64,
    /// Term bytes past the eight-byte prefix (usually empty).
    tail: &'a [u8],
    /// `count / total`, exactly as the unkeyed methods compute it.
    prob: f64,
    /// `prob.sqrt()`, cached so each pairwise distance doesn't recompute
    /// it.
    sqrt_prob: f64,
}

impl KeyedEntry<'_> {
    /// Lexicographic term order via `(key, tail)` — see [`prefix_key`].
    #[inline]
    fn cmp_term(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| self.tail.cmp(other.tail))
    }
}

/// A prefix-keyed borrow of a [`TermDistribution`] that makes repeated
/// pairwise distances cheap.
///
/// Term order is encoded as `(u64 prefix key, tail bytes)` so the
/// lockstep walks compare integers instead of strings, and each term's
/// probability and its square root are computed once instead of once per
/// pair. The distances are **bit-identical** to
/// [`TermDistribution::hellinger_squared`] and
/// [`TermDistribution::jaccard_distance`]: the accumulation order and
/// every floating-point operand are unchanged.
///
/// # Examples
///
/// ```
/// use kyp_text::TermDistribution;
///
/// let a = TermDistribution::from_text("pay pal pay");
/// let b = TermDistribution::from_text("pay bank");
/// let (ka, kb) = (a.keyed(), b.keyed());
/// assert_eq!(ka.hellinger_squared(&kb), a.hellinger_squared(&b));
/// ```
#[derive(Debug)]
pub struct KeyedDistribution<'a> {
    /// Distinct terms in lexicographic order.
    entries: Vec<KeyedEntry<'a>>,
    /// Whether the source distribution was empty (null-feature marker).
    empty: bool,
}

impl KeyedDistribution<'_> {
    /// The squared Hellinger distance; bit-identical to
    /// [`TermDistribution::hellinger_squared`] on the source
    /// distributions.
    pub fn hellinger_squared(&self, other: &KeyedDistribution<'_>) -> Option<f64> {
        if self.empty || other.empty {
            return None;
        }
        let mut sum = 0.0;
        // Pass 1: every term of `self` in sorted order, with `other`'s
        // matching mass found by a merge cursor (one comparison per
        // cursor position).
        let mut j = 0;
        for e in &self.entries {
            let mut sq = 0.0;
            while j < other.entries.len() {
                match other.entries[j].cmp_term(e) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        sq = other.entries[j].sqrt_prob;
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
            let d = e.sqrt_prob - sq;
            sum += d * d;
        }
        // Pass 2: terms only in `other` contribute their probability.
        let mut i = 0;
        for e in &other.entries {
            let mut shared = false;
            while i < self.entries.len() {
                match self.entries[i].cmp_term(e) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Equal => {
                        shared = true;
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
            if !shared {
                sum += e.prob;
            }
        }
        Some((sum / 2.0).clamp(0.0, 1.0))
    }

    /// Jaccard distance over term sets; bit-identical to
    /// [`TermDistribution::jaccard_distance`] on the source
    /// distributions.
    pub fn jaccard_distance(&self, other: &KeyedDistribution<'_>) -> Option<f64> {
        if self.empty || other.empty {
            return None;
        }
        let mut intersection = 0usize;
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].cmp_term(&other.entries[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    intersection += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = self.entries.len() + other.entries.len() - intersection;
        Some(1.0 - intersection as f64 / union as f64)
    }
}

// Hand-written (de)serialization: `counts` must keep its original JSON
// shape — an object with sorted member names — even though the backing
// store is now a sorted vector rather than a tree. The vector is already
// in member order, so serialization is a direct copy.
impl Serialize for TermDistribution {
    fn to_json_value(&self) -> serde::Value {
        let members: serde::Object = self
            .spans
            .iter()
            .map(|&(s, e, c)| {
                (
                    self.terms[s as usize..e as usize].to_string(),
                    c.to_json_value(),
                )
            })
            .collect();
        serde::Value::Object(vec![
            ("counts".to_string(), serde::Value::Object(members)),
            ("total".to_string(), self.total.to_json_value()),
        ])
    }
}

impl Deserialize for TermDistribution {
    fn from_json_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for TermDistribution"))?;
        let members = serde::obj_get(fields, "counts")
            .as_object()
            .ok_or_else(|| serde::Error::custom("TermDistribution.counts: expected object"))?;
        let mut counts = Vec::with_capacity(members.len());
        for (t, v) in members {
            counts.push((
                t.clone(),
                u32::from_json_value(v).map_err(|e| {
                    serde::Error::custom(format!("TermDistribution.counts[{t:?}]: {e}"))
                })?,
            ));
        }
        // Tolerate out-of-order members from hand-edited fixtures; the
        // invariant is a sorted table.
        counts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let total = u32::from_json_value(serde::obj_get(fields, "total"))
            .map_err(|e| serde::Error::custom(format!("TermDistribution.total: {e}")))?;
        let mut terms = String::new();
        let mut spans = Vec::with_capacity(counts.len());
        for (t, c) in &counts {
            push_entry(&mut terms, &mut spans, t, *c);
        }
        Ok(TermDistribution {
            terms,
            spans,
            total,
        })
    }
}

impl FromIterator<String> for TermDistribution {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        Self::from_terms(iter)
    }
}

impl Extend<String> for TermDistribution {
    fn extend<I: IntoIterator<Item = String>>(&mut self, iter: I) {
        self.merge(&Self::from_terms(iter));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(text: &str) -> TermDistribution {
        TermDistribution::from_text(text)
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = dist("alpha beta beta gamma gamma gamma");
        let sum: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(d.total_count(), 6);
        assert_eq!(d.distinct_len(), 3);
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let a = dist("secure bank login bank");
        let b = dist("bank secure bank login");
        assert_eq!(a.hellinger_squared(&b), Some(0.0));
    }

    #[test]
    fn disjoint_distributions_have_distance_one() {
        let a = dist("alpha beta");
        let b = dist("gamma delta");
        let h = a.hellinger_squared(&b).unwrap();
        assert!((h - 1.0).abs() < 1e-12, "h = {h}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = dist("one two three three");
        let b = dist("two three four");
        let ab = a.hellinger_squared(&b).unwrap();
        let ba = b.hellinger_squared(&a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0 && ab < 1.0);
    }

    #[test]
    fn hellinger_matches_naive_lookup_implementation() {
        // The merge-walk must reproduce the original two-pass
        // "iterate + probability() lookup" accumulation bit for bit.
        let pairs = [
            ("one two three three", "two three four"),
            ("alpha beta", "gamma delta"),
            ("pay pal paypal bank pay", "pay bank banking online pal"),
            ("aaa bbb ccc", "aaa bbb ccc"),
            ("zzz yyy xxx www", "aaa zzz mmm"),
        ];
        for (x, y) in pairs {
            let a = dist(x);
            let b = dist(y);
            let mut sum = 0.0;
            for (t, p) in a.iter() {
                let q = b.probability(t);
                let d = p.sqrt() - q.sqrt();
                sum += d * d;
            }
            for (t, q) in b.iter() {
                if !a.contains(t) {
                    sum += q;
                }
            }
            let naive = (sum / 2.0).clamp(0.0, 1.0);
            assert_eq!(
                a.hellinger_squared(&b).unwrap().to_bits(),
                naive.to_bits(),
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn empty_distribution_yields_null_feature() {
        let a = dist("alpha beta");
        let empty = TermDistribution::new();
        assert_eq!(a.hellinger_squared(&empty), None);
        assert_eq!(empty.hellinger_squared(&a), None);
        assert_eq!(empty.hellinger_squared(&empty), None);
        assert!(empty.is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = dist("alpha beta");
        let b = dist("beta gamma");
        a.merge(&b);
        assert_eq!(a.count("beta"), 2);
        assert_eq!(a.total_count(), 4);
        assert_eq!(a.distinct_len(), 3);
        let terms: Vec<&str> = a.terms().collect();
        assert_eq!(terms, ["alpha", "beta", "gamma"], "stays sorted");
    }

    #[test]
    fn jaccard_bounds_and_symmetry() {
        let a = dist("alpha beta gamma");
        let b = dist("beta gamma delta");
        let ab = a.jaccard_distance(&b).unwrap();
        assert_eq!(ab, b.jaccard_distance(&a).unwrap());
        assert!((ab - 0.5).abs() < 1e-12, "2 shared of 4 distinct: {ab}");
        assert_eq!(a.jaccard_distance(&a), Some(0.0));
        let c = dist("zeta");
        assert_eq!(a.jaccard_distance(&c), Some(1.0));
        assert_eq!(a.jaccard_distance(&TermDistribution::new()), None);
    }

    #[test]
    fn jaccard_ignores_frequencies_hellinger_does_not() {
        let balanced = dist("alpha beta");
        let skewed = dist("alpha alpha alpha alpha alpha alpha alpha beta");
        assert_eq!(balanced.jaccard_distance(&skewed), Some(0.0));
        assert!(balanced.hellinger_squared(&skewed).unwrap() > 0.05);
    }

    #[test]
    fn substring_mass() {
        let d = dist("pay pal paypal bank");
        // needle "paypal" contains "pay", "pal" and "paypal" but not "bank".
        let mass = d.substring_mass_of("paypal");
        assert!((mass - 0.75).abs() < 1e-12);
        assert_eq!(d.substring_mass_of("zzz"), 0.0);
    }

    #[test]
    fn from_texts_and_extend() {
        let d = TermDistribution::from_texts(["alpha beta", "beta gamma"]);
        assert_eq!(d.count("beta"), 2);
        let mut d2 = TermDistribution::new();
        d2.extend(vec!["alpha".to_string(), "alpha".to_string()]);
        assert_eq!(d2.count("alpha"), 2);
    }

    #[test]
    fn collect_from_iterator() {
        let d: TermDistribution = vec!["foo".to_string(), "bar".to_string()]
            .into_iter()
            .collect();
        assert_eq!(d.distinct_len(), 2);
    }

    #[test]
    fn probability_of_absent_term_is_zero() {
        let d = dist("alpha");
        assert_eq!(d.probability("beta"), 0.0);
        assert!(!d.contains("beta"));
        assert!(d.contains("alpha"));
    }

    #[test]
    fn scratch_reuse_matches_fresh_construction() {
        let mut scratch = TermScratch::new();
        let texts = [
            "Café Zürich: sign-in 24/7!",
            "pay pal paypal",
            "",
            "abc abc abc xyz",
        ];
        for t in texts {
            assert_eq!(
                TermDistribution::from_text_in(t, &mut scratch),
                TermDistribution::from_text(t),
                "{t:?}"
            );
        }
        let multi = TermDistribution::from_texts_in(texts, &mut scratch);
        assert_eq!(multi, TermDistribution::from_texts(texts));
    }

    #[test]
    fn from_terms_equals_incremental_add_term() {
        let terms = ["pay", "pal", "pay", "bank", "abc"];
        let bulk = TermDistribution::from_terms(terms.iter().copied().map(String::from));
        let mut inc = TermDistribution::new();
        for t in terms {
            inc.add_term(t.to_string());
        }
        assert_eq!(bulk, inc);
    }

    #[test]
    fn prefix_key_order_matches_lexicographic() {
        // Shorter terms sort before their extensions; ties past eight
        // bytes fall to the tail compare.
        let terms = [
            "abc",
            "abcd",
            "abcdefgh",
            "abcdefghi",
            "abcdefghz",
            "zzz",
            "paypal",
        ];
        let mut by_key: Vec<&str> = terms.to_vec();
        by_key.sort_unstable_by(|a, b| {
            let (ab, bb) = (a.as_bytes(), b.as_bytes());
            prefix_key(ab)
                .cmp(&prefix_key(bb))
                .then_with(|| ab[ab.len().min(8)..].cmp(&bb[bb.len().min(8)..]))
        });
        let mut lex: Vec<&str> = terms.to_vec();
        lex.sort_unstable();
        assert_eq!(by_key, lex);
    }

    #[test]
    fn keyed_distances_match_unkeyed_bitwise() {
        let pairs = [
            ("one two three three", "two three four"),
            ("alpha beta", "gamma delta"),
            ("pay pal paypal bank pay", "pay bank banking online pal"),
            // Long terms sharing an eight-byte prefix exercise the tail
            // tie-break.
            (
                "longprefixalpha longprefixbeta longprefix",
                "longprefixalpha longprefixgamma",
            ),
            ("aaa bbb ccc", "aaa bbb ccc"),
            ("zzz yyy xxx www", "aaa zzz mmm"),
            ("Café Zürich sign-in", "cafe zurich login"),
        ];
        for (x, y) in pairs {
            let (a, b) = (dist(x), dist(y));
            let (ka, kb) = (a.keyed(), b.keyed());
            assert_eq!(
                ka.hellinger_squared(&kb).map(f64::to_bits),
                a.hellinger_squared(&b).map(f64::to_bits),
                "hellinger {x:?} vs {y:?}"
            );
            assert_eq!(
                kb.hellinger_squared(&ka).map(f64::to_bits),
                b.hellinger_squared(&a).map(f64::to_bits),
                "hellinger (swapped) {x:?} vs {y:?}"
            );
            assert_eq!(
                ka.jaccard_distance(&kb).map(f64::to_bits),
                a.jaccard_distance(&b).map(f64::to_bits),
                "jaccard {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn keyed_empty_distribution_is_null() {
        let full = dist("alpha beta");
        let a = full.keyed();
        let nothing = TermDistribution::new();
        let empty = nothing.keyed();
        assert_eq!(a.hellinger_squared(&empty), None);
        assert_eq!(empty.hellinger_squared(&a), None);
        assert_eq!(empty.jaccard_distance(&a), None);
    }

    #[test]
    fn serde_preserves_map_shape_and_roundtrips() {
        let d = dist("pay pal pay bank");
        let json = serde_json::to_string(&d).unwrap();
        // The original tree-backed form: an object keyed by sorted terms.
        assert_eq!(json, r#"{"counts":{"bank":1,"pal":1,"pay":2},"total":4}"#);
        let back: TermDistribution = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        // Out-of-order members still deserialize to the sorted invariant.
        let reordered: TermDistribution =
            serde_json::from_str(r#"{"counts":{"pay":2,"bank":1,"pal":1},"total":4}"#).unwrap();
        assert_eq!(reordered, d);
    }
}
