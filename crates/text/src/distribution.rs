use crate::extract_terms;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A term distribution `D_S`: the terms of a data source with their
/// relative frequencies (Section III-B).
///
/// The distribution is stored as raw counts so distributions can be merged
/// cheaply; probabilities are derived on demand.
///
/// # Examples
///
/// ```
/// use kyp_text::TermDistribution;
///
/// let d = TermDistribution::from_text("pay pal pay");
/// assert_eq!(d.probability("pay"), 2.0 / 3.0);
/// assert_eq!(d.probability("pal"), 1.0 / 3.0);
/// assert_eq!(d.probability("bank"), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermDistribution {
    counts: BTreeMap<String, u32>,
    total: u32,
}

impl TermDistribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a distribution from raw text using the paper's term
    /// extraction rules.
    pub fn from_text(text: &str) -> Self {
        Self::from_terms(extract_terms(text))
    }

    /// Builds a distribution from several texts (e.g. the FreeURL parts of
    /// a whole set of links).
    pub fn from_texts<I, S>(texts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut dist = Self::new();
        for t in texts {
            dist.add_text(t.as_ref());
        }
        dist
    }

    /// Builds a distribution from already-extracted terms.
    pub fn from_terms<I, S>(terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut dist = Self::new();
        for t in terms {
            dist.add_term(t.into());
        }
        dist
    }

    /// Adds the terms of `text` to the distribution.
    pub fn add_text(&mut self, text: &str) {
        for t in extract_terms(text) {
            self.add_term(t);
        }
    }

    /// Adds one occurrence of an (already canonical) term.
    pub fn add_term(&mut self, term: String) {
        debug_assert!(
            term.len() >= crate::MIN_TERM_LEN && term.chars().all(|c| c.is_ascii_lowercase()),
            "term {term:?} is not canonical"
        );
        *self.counts.entry(term).or_insert(0) += 1;
        self.total += 1;
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &TermDistribution) {
        for (t, c) in &other.counts {
            *self.counts.entry(t.clone()).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Number of *distinct* terms.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Total number of term occurrences.
    pub fn total_count(&self) -> u32 {
        self.total
    }

    /// `true` when no terms were extracted. Empty distributions yield the
    /// paper's "null features" (Section VII-B, IP-based URLs).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The probability `p_i` of a term (0.0 for absent terms).
    pub fn probability(&self, term: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        f64::from(self.counts.get(term).copied().unwrap_or(0)) / f64::from(self.total)
    }

    /// Raw occurrence count of a term.
    pub fn count(&self, term: &str) -> u32 {
        self.counts.get(term).copied().unwrap_or(0)
    }

    /// `true` when the term occurs at least once.
    pub fn contains(&self, term: &str) -> bool {
        self.counts.contains_key(term)
    }

    /// Iterates over `(term, probability)` pairs in lexicographic term
    /// order (deterministic, so float accumulations are reproducible).
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        let total = f64::from(self.total.max(1));
        self.counts
            .iter()
            .map(move |(t, c)| (t.as_str(), f64::from(*c) / total))
    }

    /// Iterates over the distinct terms.
    pub fn terms(&self) -> impl Iterator<Item = &str> + '_ {
        self.counts.keys().map(String::as_str)
    }

    /// The squared Hellinger distance between two distributions
    /// (paper Equation 1):
    ///
    /// `H²(P,Q) = ½ Σ_{x ∈ P∪Q} (√P(x) − √Q(x))²`
    ///
    /// Bounded in `[0, 1]`: `0` means identical distributions, `1` means
    /// disjoint supports.
    ///
    /// Returns `None` when either distribution is empty — the paper treats
    /// comparisons with empty sources as *null features* rather than
    /// extreme distances.
    pub fn hellinger_squared(&self, other: &TermDistribution) -> Option<f64> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        let mut sum = 0.0;
        for (t, p) in self.iter() {
            let q = other.probability(t);
            let d = p.sqrt() - q.sqrt();
            sum += d * d;
        }
        // Terms only in `other`: P(x) = 0 so the contribution is Q(x).
        for (t, q) in other.iter() {
            if !self.contains(t) {
                sum += q;
            }
        }
        Some((sum / 2.0).clamp(0.0, 1.0))
    }

    /// Jaccard distance between the *term sets* (ignoring frequencies):
    /// `1 − |A∩B| / |A∪B|`, in `[0, 1]`.
    ///
    /// A naive alternative to [`hellinger_squared`] used by the design
    /// ablations: it discards how often terms are used, which is exactly
    /// the information the paper's consistency conjecture relies on.
    /// Returns `None` when either distribution is empty, mirroring the
    /// null-feature convention.
    ///
    /// [`hellinger_squared`]: TermDistribution::hellinger_squared
    pub fn jaccard_distance(&self, other: &TermDistribution) -> Option<f64> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        let mut intersection = 0usize;
        for t in self.terms() {
            if other.contains(t) {
                intersection += 1;
            }
        }
        let union = self.distinct_len() + other.distinct_len() - intersection;
        Some(1.0 - intersection as f64 / union as f64)
    }

    /// Sum of probability mass of terms that are substrings of `needle`
    /// (used by the f3 features: how much of a source's mass "spells out"
    /// the starting/landing mld).
    pub fn substring_mass_of(&self, needle: &str) -> f64 {
        self.iter()
            .filter(|(t, _)| needle.contains(t))
            .map(|(_, p)| p)
            .sum()
    }
}

impl FromIterator<String> for TermDistribution {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        Self::from_terms(iter)
    }
}

impl Extend<String> for TermDistribution {
    fn extend<I: IntoIterator<Item = String>>(&mut self, iter: I) {
        for t in iter {
            self.add_term(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(text: &str) -> TermDistribution {
        TermDistribution::from_text(text)
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = dist("alpha beta beta gamma gamma gamma");
        let sum: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(d.total_count(), 6);
        assert_eq!(d.distinct_len(), 3);
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let a = dist("secure bank login bank");
        let b = dist("bank secure bank login");
        assert_eq!(a.hellinger_squared(&b), Some(0.0));
    }

    #[test]
    fn disjoint_distributions_have_distance_one() {
        let a = dist("alpha beta");
        let b = dist("gamma delta");
        let h = a.hellinger_squared(&b).unwrap();
        assert!((h - 1.0).abs() < 1e-12, "h = {h}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = dist("one two three three");
        let b = dist("two three four");
        let ab = a.hellinger_squared(&b).unwrap();
        let ba = b.hellinger_squared(&a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0 && ab < 1.0);
    }

    #[test]
    fn empty_distribution_yields_null_feature() {
        let a = dist("alpha beta");
        let empty = TermDistribution::new();
        assert_eq!(a.hellinger_squared(&empty), None);
        assert_eq!(empty.hellinger_squared(&a), None);
        assert_eq!(empty.hellinger_squared(&empty), None);
        assert!(empty.is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = dist("alpha beta");
        let b = dist("beta gamma");
        a.merge(&b);
        assert_eq!(a.count("beta"), 2);
        assert_eq!(a.total_count(), 4);
    }

    #[test]
    fn jaccard_bounds_and_symmetry() {
        let a = dist("alpha beta gamma");
        let b = dist("beta gamma delta");
        let ab = a.jaccard_distance(&b).unwrap();
        assert_eq!(ab, b.jaccard_distance(&a).unwrap());
        assert!((ab - 0.5).abs() < 1e-12, "2 shared of 4 distinct: {ab}");
        assert_eq!(a.jaccard_distance(&a), Some(0.0));
        let c = dist("zeta");
        assert_eq!(a.jaccard_distance(&c), Some(1.0));
        assert_eq!(a.jaccard_distance(&TermDistribution::new()), None);
    }

    #[test]
    fn jaccard_ignores_frequencies_hellinger_does_not() {
        let balanced = dist("alpha beta");
        let skewed = dist("alpha alpha alpha alpha alpha alpha alpha beta");
        assert_eq!(balanced.jaccard_distance(&skewed), Some(0.0));
        assert!(balanced.hellinger_squared(&skewed).unwrap() > 0.05);
    }

    #[test]
    fn substring_mass() {
        let d = dist("pay pal paypal bank");
        // needle "paypal" contains "pay", "pal" and "paypal" but not "bank".
        let mass = d.substring_mass_of("paypal");
        assert!((mass - 0.75).abs() < 1e-12);
        assert_eq!(d.substring_mass_of("zzz"), 0.0);
    }

    #[test]
    fn from_texts_and_extend() {
        let d = TermDistribution::from_texts(["alpha beta", "beta gamma"]);
        assert_eq!(d.count("beta"), 2);
        let mut d2 = TermDistribution::new();
        d2.extend(vec!["alpha".to_string(), "alpha".to_string()]);
        assert_eq!(d2.count("alpha"), 2);
    }

    #[test]
    fn collect_from_iterator() {
        let d: TermDistribution = vec!["foo".to_string(), "bar".to_string()]
            .into_iter()
            .collect();
        assert_eq!(d.distinct_len(), 2);
    }

    #[test]
    fn probability_of_absent_term_is_zero() {
        let d = dist("alpha");
        assert_eq!(d.probability("beta"), 0.0);
        assert!(!d.contains("beta"));
        assert!(d.contains("alpha"));
    }
}
