//! Character canonicalisation: map upper case, accented and "special"
//! letters to a matching letter in `{a..z}` (paper Section III-B).

/// Canonicalises a single character.
///
/// Returns `Some(letter)` with `letter ∈ [a-z]` when the character is a
/// letter that has a natural ASCII counterpart — plain ASCII letters,
/// Latin-1 and Latin-Extended-A accented letters, and a handful of Greek
/// look-alikes the paper's example mentions (`β → b`). Returns `None` for
/// everything else (digits, punctuation, whitespace, CJK, ...), which acts
/// as a term separator.
///
/// # Examples
///
/// ```
/// use kyp_text::canonicalize_char;
/// assert_eq!(canonicalize_char('B'), Some('b'));
/// assert_eq!(canonicalize_char('é'), Some('e'));
/// assert_eq!(canonicalize_char('ß'), Some('s'));
/// assert_eq!(canonicalize_char('4'), None);
/// ```
pub fn canonicalize_char(c: char) -> Option<char> {
    if c.is_ascii_lowercase() {
        return Some(c);
    }
    if c.is_ascii_uppercase() {
        return Some(c.to_ascii_lowercase());
    }
    // Fold case first so we only have to table lowercase code points.
    let c = c.to_lowercase().next().unwrap_or(c);
    let mapped = match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' | 'ā' | 'ă' | 'ą' | 'æ' | 'α' => 'a',
        'β' => 'b',
        'ç' | 'ć' | 'ĉ' | 'ċ' | 'č' => 'c',
        'ď' | 'đ' | 'ð' | 'δ' => 'd',
        'è' | 'é' | 'ê' | 'ë' | 'ē' | 'ĕ' | 'ė' | 'ę' | 'ě' | 'ε' | 'η' => 'e',
        'ĝ' | 'ğ' | 'ġ' | 'ģ' | 'γ' => 'g',
        'ĥ' | 'ħ' => 'h',
        'ì' | 'í' | 'î' | 'ï' | 'ĩ' | 'ī' | 'ĭ' | 'į' | 'ı' | 'ι' => 'i',
        'ĵ' => 'j',
        'ķ' | 'κ' => 'k',
        'ĺ' | 'ļ' | 'ľ' | 'ŀ' | 'ł' | 'λ' => 'l',
        'μ' => 'm',
        'ñ' | 'ń' | 'ņ' | 'ň' | 'ŋ' | 'ν' => 'n',
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ø' | 'ō' | 'ŏ' | 'ő' | 'œ' | 'ο' | 'ω' => 'o',
        'π' | 'ρ' => 'p',
        'ŕ' | 'ŗ' | 'ř' => 'r',
        'ś' | 'ŝ' | 'ş' | 'š' | 'ß' | 'σ' | 'ς' => 's',
        'ţ' | 'ť' | 'ŧ' | 'þ' | 'τ' => 't',
        'ù' | 'ú' | 'û' | 'ü' | 'ũ' | 'ū' | 'ŭ' | 'ů' | 'ű' | 'ų' | 'υ' => 'u',
        'ŵ' => 'w',
        'χ' | 'ξ' => 'x',
        'ý' | 'ÿ' | 'ŷ' => 'y',
        'ź' | 'ż' | 'ž' | 'ζ' => 'z',
        _ => return None,
    };
    Some(mapped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_letters_pass_through() {
        for c in 'a'..='z' {
            assert_eq!(canonicalize_char(c), Some(c));
        }
        for c in 'A'..='Z' {
            assert_eq!(canonicalize_char(c), Some(c.to_ascii_lowercase()));
        }
    }

    #[test]
    fn separators_return_none() {
        for c in ['0', '9', ' ', '-', '_', '.', '/', '?', '=', '!', '漢', '🦀'] {
            assert_eq!(canonicalize_char(c), None, "char {c:?}");
        }
    }

    #[test]
    fn paper_example_b_variants() {
        for c in ['B', 'β'] {
            assert_eq!(canonicalize_char(c), Some('b'));
        }
    }

    #[test]
    fn language_specific_letters() {
        // French
        assert_eq!(canonicalize_char('é'), Some('e'));
        assert_eq!(canonicalize_char('ç'), Some('c'));
        // German
        assert_eq!(canonicalize_char('ü'), Some('u'));
        assert_eq!(canonicalize_char('ß'), Some('s'));
        assert_eq!(canonicalize_char('Ä'), Some('a'));
        // Spanish
        assert_eq!(canonicalize_char('ñ'), Some('n'));
        // Portuguese
        assert_eq!(canonicalize_char('ã'), Some('a'));
        assert_eq!(canonicalize_char('õ'), Some('o'));
        // Italian
        assert_eq!(canonicalize_char('ò'), Some('o'));
        // Nordic
        assert_eq!(canonicalize_char('å'), Some('a'));
        assert_eq!(canonicalize_char('ø'), Some('o'));
    }

    #[test]
    fn uppercase_accents_fold() {
        assert_eq!(canonicalize_char('É'), Some('e'));
        assert_eq!(canonicalize_char('Ü'), Some('u'));
        assert_eq!(canonicalize_char('Ñ'), Some('n'));
    }

    #[test]
    fn output_always_ascii_lowercase() {
        // Sweep the BMP up to Latin Extended + Greek and verify the invariant.
        for code in 0u32..0x500 {
            if let Some(c) = char::from_u32(code) {
                if let Some(m) = canonicalize_char(c) {
                    assert!(m.is_ascii_lowercase(), "{c:?} mapped to {m:?}");
                }
            }
        }
    }
}
