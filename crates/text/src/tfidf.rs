//! TF-IDF weighting over a document corpus.
//!
//! The paper's own technique deliberately avoids TF-IDF (it is language-
//! and corpus-dependent), but two consumers in this reproduction need it:
//! the Cantina baseline (Zhang et al., WWW'07) selects a page's signature
//! terms by TF-IDF, and the `kyp-search` substrate ranks documents with a
//! TF-IDF cosine score.

use crate::extract_terms;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Document-frequency statistics over a corpus, used to compute IDF.
///
/// # Examples
///
/// ```
/// use kyp_text::tfidf::Corpus;
///
/// let mut corpus = Corpus::new();
/// corpus.add_document("the bank of america bank");
/// corpus.add_document("the grocery store");
/// let top = corpus.top_terms("bank of america online banking", 2);
/// assert_eq!(top[0].0, "banking"); // only in this doc: highest idf
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    // Ordered map (kyp-lint D01): document frequencies are iterated by
    // serialization, and feature pipelines must never observe hash order.
    doc_freq: BTreeMap<String, u32>,
    doc_count: u32,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one document's text to the corpus statistics.
    pub fn add_document(&mut self, text: &str) {
        let mut seen = std::collections::HashSet::new();
        for term in extract_terms(text) {
            if seen.insert(term.clone()) {
                *self.doc_freq.entry(term).or_insert(0) += 1;
            }
        }
        self.doc_count += 1;
    }

    /// Number of documents added.
    pub fn doc_count(&self) -> u32 {
        self.doc_count
    }

    /// Smoothed inverse document frequency of a term:
    /// `ln((1 + N) / (1 + df)) + 1`.
    pub fn idf(&self, term: &str) -> f64 {
        let df = f64::from(self.doc_freq.get(term).copied().unwrap_or(0));
        let n = f64::from(self.doc_count);
        ((1.0 + n) / (1.0 + df)).ln() + 1.0
    }

    /// TF-IDF scores of a document's terms against this corpus, in
    /// deterministic (term-sorted) order.
    pub fn tfidf(&self, text: &str) -> BTreeMap<String, f64> {
        let terms = extract_terms(text);
        let total = terms.len() as f64;
        if total == 0.0 {
            return BTreeMap::new();
        }
        let mut tf: BTreeMap<String, f64> = BTreeMap::new();
        for t in terms {
            *tf.entry(t).or_insert(0.0) += 1.0;
        }
        tf.into_iter()
            .map(|(t, c)| {
                let idf = self.idf(&t);
                (t, c / total * idf)
            })
            .collect()
    }

    /// The `k` highest-TF-IDF terms of a document, best first; ties broken
    /// alphabetically for determinism.
    pub fn top_terms(&self, text: &str, k: usize) -> Vec<(String, f64)> {
        let mut scored: Vec<(String, f64)> = self.tfidf(text).into_iter().collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// Precomputes every term's IDF into a flat sorted table for batch
    /// scoring. The prepared view returns bit-identical scores to the
    /// corpus it came from: each IDF is evaluated once by the same
    /// formula instead of re-deriving the logarithm per document.
    pub fn prepare(&self) -> PreparedCorpus {
        PreparedCorpus {
            idf: self
                .doc_freq
                .keys()
                .map(|t| (t.clone(), self.idf(t)))
                .collect(),
            default_idf: self.idf(""),
        }
    }
}

/// An immutable IDF table compiled from a [`Corpus`] by
/// [`Corpus::prepare`]: the batch-scoring view used when many documents
/// are weighted against the same frozen corpus (e.g. the Cantina
/// baseline classifying a crawl).
///
/// Every score is **bit-identical** to the corresponding [`Corpus`]
/// method — the logarithms are just computed once per distinct term at
/// preparation time instead of once per document term.
///
/// # Examples
///
/// ```
/// use kyp_text::tfidf::Corpus;
///
/// let mut corpus = Corpus::new();
/// corpus.add_document("the bank of america bank");
/// corpus.add_document("the grocery store");
/// let prepared = corpus.prepare();
/// let doc = "bank of america online banking";
/// assert_eq!(prepared.top_terms(doc, 2), corpus.top_terms(doc, 2));
/// ```
#[derive(Debug, Clone)]
pub struct PreparedCorpus {
    /// `(term, idf)` sorted by term (inherited from the corpus tree).
    idf: Vec<(String, f64)>,
    /// The IDF shared by all unseen terms (`df = 0`).
    default_idf: f64,
}

impl PreparedCorpus {
    /// Smoothed inverse document frequency of a term; same value as
    /// [`Corpus::idf`] on the source corpus.
    pub fn idf(&self, term: &str) -> f64 {
        self.idf
            .binary_search_by(|(t, _)| t.as_str().cmp(term))
            .map_or(self.default_idf, |i| self.idf[i].1)
    }

    /// TF-IDF scores of a document's terms, in deterministic
    /// (term-sorted) order; same values as [`Corpus::tfidf`].
    pub fn tfidf(&self, text: &str) -> BTreeMap<String, f64> {
        let terms = extract_terms(text);
        let total = terms.len() as f64;
        if total == 0.0 {
            return BTreeMap::new();
        }
        let mut tf: BTreeMap<String, f64> = BTreeMap::new();
        for t in terms {
            *tf.entry(t).or_insert(0.0) += 1.0;
        }
        tf.into_iter()
            .map(|(t, c)| {
                let idf = self.idf(&t);
                (t, c / total * idf)
            })
            .collect()
    }

    /// The `k` highest-TF-IDF terms of a document, best first; ties
    /// broken alphabetically. Same ranking as [`Corpus::top_terms`].
    pub fn top_terms(&self, text: &str, k: usize) -> Vec<(String, f64)> {
        let mut scored: Vec<(String, f64)> = self.tfidf(text).into_iter().collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idf_decreases_with_document_frequency() {
        let mut c = Corpus::new();
        c.add_document("common rare");
        c.add_document("common");
        c.add_document("common");
        assert!(c.idf("rare") > c.idf("common"));
        assert!(c.idf("unseen") > c.idf("rare"));
    }

    #[test]
    fn tfidf_empty_document() {
        let mut c = Corpus::new();
        c.add_document("something");
        assert!(c.tfidf("").is_empty());
        assert!(c.top_terms("12 34", 5).is_empty());
    }

    #[test]
    fn top_terms_ranks_distinctive_terms_first() {
        let mut c = Corpus::new();
        for _ in 0..50 {
            c.add_document("the and for with login page");
        }
        c.add_document("paypal account verification");
        let top = c.top_terms("paypal login page paypal verification", 2);
        assert_eq!(top[0].0, "paypal");
        assert!(top.len() == 2);
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let mut c = Corpus::new();
        c.add_document("term term term");
        c.add_document("other");
        // df(term) == 1, so idf(term) == idf of a once-seen term.
        let mut c2 = Corpus::new();
        c2.add_document("term");
        c2.add_document("other");
        assert!((c.idf("term") - c2.idf("term")).abs() < 1e-12);
    }

    #[test]
    fn prepared_corpus_is_bit_identical_to_source() {
        let mut c = Corpus::new();
        for _ in 0..30 {
            c.add_document("the and for with login page");
        }
        c.add_document("paypal account verification");
        c.add_document("bank of america online banking");
        let p = c.prepare();
        let docs = [
            "paypal login page paypal verification",
            "bank of america online banking",
            "unseen terms entirely",
            "",
        ];
        for d in docs {
            for term in ["paypal", "login", "the", "unseen", ""] {
                assert_eq!(p.idf(term).to_bits(), c.idf(term).to_bits(), "{term:?}");
            }
            let a = c.tfidf(d);
            let b = p.tfidf(d);
            assert_eq!(a.len(), b.len(), "{d:?}");
            for ((ta, va), (tb, vb)) in a.iter().zip(&b) {
                assert_eq!(ta, tb);
                assert_eq!(va.to_bits(), vb.to_bits(), "{d:?} term {ta}");
            }
            assert_eq!(c.top_terms(d, 3), p.top_terms(d, 3), "{d:?}");
        }
    }

    #[test]
    fn top_terms_deterministic_on_ties() {
        let c = Corpus::new();
        let a = c.top_terms("zebra apple zebra apple", 2);
        let b = c.top_terms("apple zebra apple zebra", 2);
        assert_eq!(a, b);
    }
}
