//! Cross-process determinism regression test for the feature pipeline.
//!
//! `HashMap` iteration order is seeded per process (`RandomState`), so a
//! nondeterminism bug of the kind kyp-lint's D01 rule guards against —
//! summing floats or emitting terms in hash order — produces output that
//! is stable *within* one process run yet differs *between* runs. An
//! in-process `assert_eq!(run(), run())` can never catch that class of
//! bug. This test therefore re-executes its own test binary as a child
//! process (twice) and asserts that the digest of the full feature-vector
//! and TF-IDF output is byte-identical across all three processes.

use kyp_core::FeatureExtractor;
use kyp_datagen::{CampaignConfig, Corpus};
use kyp_text::tfidf;
use kyp_web::Browser;
use std::env;
use std::process::Command;

/// Env var marking a child invocation: print the digest and exit.
const CHILD_MARK: &str = "KYP_PROCESS_STABILITY_CHILD";
/// Prefix of the digest line the child prints on stdout.
const DIGEST_PREFIX: &str = "kyp-process-stability-digest=";

/// FNV-1a over a byte stream; digests must not depend on `DefaultHasher`'s
/// unspecified (and per-release unstable) algorithm.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }
}

/// Extracts feature vectors and TF-IDF maps for a small deterministic
/// corpus and folds every bit of the output into one digest.
fn pipeline_digest() -> String {
    let corpus = Corpus::generate(&CampaignConfig::tiny());
    let extractor = FeatureExtractor::new(corpus.ranker.clone());
    let browser = Browser::new(&corpus.world);

    let urls: Vec<&str> = corpus
        .leg_train
        .iter()
        .map(String::as_str)
        .take(8)
        .chain(corpus.phish_test.iter().map(|r| r.url.as_str()).take(8))
        .collect();
    assert!(!urls.is_empty(), "tiny corpus yielded no urls");

    let mut fnv = Fnv::new();
    let mut tfidf_corpus = tfidf::Corpus::new();
    for url in &urls {
        let Ok(page) = browser.visit(url) else {
            continue;
        };
        for value in extractor.extract(&page) {
            fnv.write_f64(value);
        }
        tfidf_corpus.add_document(&page.text);
        for (term, weight) in tfidf_corpus.tfidf(&page.text) {
            fnv.write(term.as_bytes());
            fnv.write_f64(weight);
        }
    }
    format!("{:016x}", fnv.0)
}

/// Runs this test binary again, filtered down to this one test, and
/// returns the digest line its child-mode branch printed.
fn digest_from_child_process() -> String {
    let exe = env::current_exe().expect("test binary path");
    let output = Command::new(exe)
        .args([
            "--exact",
            "feature_vectors_stable_across_process_runs",
            "--nocapture",
            "--test-threads",
            "1",
        ])
        .env(CHILD_MARK, "1")
        .output()
        .expect("spawn child test process");
    assert!(
        output.status.success(),
        "child test process failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    // Under `--nocapture` libtest interleaves its own progress line with
    // the test's stdout, so the digest is not guaranteed to start a line.
    let stdout = String::from_utf8_lossy(&output.stdout);
    let start = stdout
        .find(DIGEST_PREFIX)
        .unwrap_or_else(|| panic!("no digest line in child stdout:\n{stdout}"))
        + DIGEST_PREFIX.len();
    stdout[start..]
        .chars()
        .take_while(char::is_ascii_hexdigit)
        .collect()
}

#[test]
fn feature_vectors_stable_across_process_runs() {
    let local = pipeline_digest();
    if env::var_os(CHILD_MARK).is_some() {
        // Child mode: report the digest for the parent and stop before
        // recursing into grandchildren.
        println!("{DIGEST_PREFIX}{local}");
        return;
    }
    let first = digest_from_child_process();
    let second = digest_from_child_process();
    assert_eq!(
        first, second,
        "feature pipeline output differs between two child processes"
    );
    assert_eq!(
        local, first,
        "feature pipeline output differs between parent and child process"
    );
}

#[test]
fn tfidf_output_is_term_sorted() {
    let mut corpus = tfidf::Corpus::new();
    corpus.add_document("paypal account verification login");
    corpus.add_document("grocery store hours");
    let scored: Vec<String> = corpus
        .tfidf("paypal login secure account")
        .into_keys()
        .collect();
    let mut sorted = scored.clone();
    sorted.sort();
    assert_eq!(scored, sorted, "tfidf must emit terms in sorted order");
}
