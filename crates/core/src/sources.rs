use kyp_text::{TermDistribution, TermScratch};
use kyp_url::Url;
use kyp_web::{SourceAvailability, VisitedPage};

/// The term distributions of the paper's Table I, computed once per page
/// and shared by the f2/f3 features and the keyterm extractor.
///
/// Distributions are grouped by the phisher's *level of control*
/// (internal vs external links, split on the RDNs of the redirection
/// chain) and *constraints* (RDN — registrar-constrained — vs FreeURL —
/// freely choosable), per Section III-A.
#[derive(Debug, Clone)]
pub struct DataSources {
    /// `D_text`: rendered body text.
    pub text: TermDistribution,
    /// `D_title`: page title.
    pub title: TermDistribution,
    /// `D_copyright`: copyright notice (used by keyterms, not by f2).
    pub copyright: TermDistribution,
    /// `D_start`: FreeURL of the starting URL.
    pub start: TermDistribution,
    /// `D_land`: FreeURL of the landing URL.
    pub land: TermDistribution,
    /// `D_intlog`: FreeURL of internal logged links.
    pub intlog: TermDistribution,
    /// `D_intlink`: FreeURL of internal HREF links.
    pub intlink: TermDistribution,
    /// `D_startrdn`: RDN of the starting URL.
    pub startrdn: TermDistribution,
    /// `D_landrdn`: RDN of the landing URL.
    pub landrdn: TermDistribution,
    /// `D_intrdn`: RDNs of internal links (HREF and logged).
    pub intrdn: TermDistribution,
    /// `D_extrdn`: RDNs of external logged links.
    pub extrdn: TermDistribution,
    /// `D_extlog`: FreeURL of external logged links.
    pub extlog: TermDistribution,
    /// `D_extlink`: FreeURL of external HREF links.
    pub extlink: TermDistribution,
}

impl DataSources {
    /// Computes every distribution from a scraped page.
    pub fn from_page(page: &VisitedPage) -> Self {
        Self::from_page_in(page, &mut TermScratch::new())
    }

    /// Computes every distribution from a scraped page, reusing
    /// `scratch`'s buffers for the term extraction. Identical output to
    /// [`Self::from_page`]; meant for batch loops, where one scratch
    /// serves thousands of pages without reallocating.
    pub fn from_page_in(page: &VisitedPage, scratch: &mut TermScratch) -> Self {
        Self::from_page_with_splits(page, &crate::features::LinkSplits::of(page), scratch)
    }

    /// [`Self::from_page_in`] with the control-split link sets already
    /// computed — the extraction hot path computes them once per page and
    /// shares them with the f1/f4 features.
    pub(crate) fn from_page_with_splits(
        page: &VisitedPage,
        splits: &crate::features::LinkSplits<'_>,
        scratch: &mut TermScratch,
    ) -> Self {
        let (intlog_urls, extlog_urls) = (&splits.intlog, &splits.extlog);
        let (intlink_urls, extlink_urls) = (&splits.intlink, &splits.extlink);

        // URL-derived distributions extract terms straight from the URLs'
        // borrowed pieces: the joined FreeURL / dotted RDN strings would
        // only add separators that term extraction splits on anyway.
        let free = |urls: &[&Url], scratch: &mut TermScratch| {
            TermDistribution::from_texts_in(urls.iter().flat_map(|u| u.free_parts()), scratch)
        };
        let rdns = |urls: &[&Url], scratch: &mut TermScratch| {
            TermDistribution::from_texts_in(urls.iter().flat_map(|u| u.rdn_labels()), scratch)
        };

        let mut intrdn = rdns(intlink_urls, scratch);
        intrdn.merge(&rdns(intlog_urls, scratch));

        // Pages that land where they started (no cross-host redirect)
        // share the starting URL's distributions: equal URLs extract
        // equal distributions, so cloning is bit-identical and skips a
        // second extraction + sort.
        let start = TermDistribution::from_texts_in(page.starting_url.free_parts(), scratch);
        let startrdn = TermDistribution::from_texts_in(page.starting_url.rdn_labels(), scratch);
        let same_url = page.starting_url == page.landing_url;
        let land = if same_url {
            start.clone()
        } else {
            TermDistribution::from_texts_in(page.landing_url.free_parts(), scratch)
        };
        let landrdn = if same_url {
            startrdn.clone()
        } else {
            TermDistribution::from_texts_in(page.landing_url.rdn_labels(), scratch)
        };

        DataSources {
            text: TermDistribution::from_text_in(&page.text, scratch),
            title: TermDistribution::from_text_in(&page.title, scratch),
            copyright: TermDistribution::from_text_in(
                page.copyright.as_deref().unwrap_or(""),
                scratch,
            ),
            start,
            land,
            intlog: free(intlog_urls, scratch),
            intlink: free(intlink_urls, scratch),
            startrdn,
            landrdn,
            intrdn,
            extrdn: rdns(extlog_urls, scratch),
            extlog: free(extlog_urls, scratch),
            extlink: free(extlink_urls, scratch),
        }
    }

    /// Computes distributions from a *partially* captured page.
    ///
    /// Sources the scraper could not capture intact are replaced by empty
    /// distributions — the same neutral value a genuinely empty source
    /// produces — rather than trusting half-delivered data:
    ///
    /// - when `links` is unavailable (truncated HTML may have cut
    ///   references off the end of the document), every link-derived
    ///   distribution is emptied;
    /// - URL-derived and text-derived distributions always remain: the
    ///   URLs are known before any content arrives, and partial text is
    ///   still honest evidence (a prefix of the real page).
    ///
    /// Consistency features over empty distributions collapse to their
    /// null value, so degraded pages still yield complete, finite feature
    /// vectors (see `FeatureExtractor::extract_degraded`).
    pub fn from_partial(page: &VisitedPage, availability: &SourceAvailability) -> Self {
        let mut sources = Self::from_page(page);
        if !availability.links {
            let empty = TermDistribution::default;
            sources.intlog = empty();
            sources.intlink = empty();
            sources.intrdn = empty();
            sources.extrdn = empty();
            sources.extlog = empty();
            sources.extlink = empty();
        }
        sources
    }

    /// The 12 distributions used by the f2 consistency features, in the
    /// crate's canonical order (Table I minus copyright and image).
    pub fn f2_distributions(&self) -> [&TermDistribution; 12] {
        [
            &self.text,
            &self.title,
            &self.start,
            &self.land,
            &self.intlog,
            &self.intlink,
            &self.startrdn,
            &self.landrdn,
            &self.intrdn,
            &self.extrdn,
            &self.extlog,
            &self.extlink,
        ]
    }

    /// Names matching [`DataSources::f2_distributions`], for feature naming.
    pub fn f2_names() -> [&'static str; 12] {
        [
            "text", "title", "start", "land", "intlog", "intlink", "startrdn", "landrdn", "intrdn",
            "extrdn", "extlog", "extlink",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn page() -> VisitedPage {
        VisitedPage {
            starting_url: url("http://evil-host.tk/paypal/login?session=abc"),
            landing_url: url("http://evil-host.tk/paypal/login?session=abc"),
            redirection_chain: vec![url("http://evil-host.tk/paypal/login?session=abc")],
            logged_links: vec![
                url("http://evil-host.tk/style.css"),
                url("https://www.paypal.com/logo.png"),
            ],
            href_links: vec![
                url("https://www.paypal.com/help"),
                url("http://evil-host.tk/submit"),
            ],
            text: "log in to your paypal account".into(),
            title: "PayPal Login".into(),
            copyright: Some("© PayPal Inc".into()),
            screenshot_text: "log in to your paypal account".into(),
            input_count: 2,
            image_count: 1,
            iframe_count: 0,
        }
    }

    #[test]
    fn distributions_reflect_sources() {
        let s = DataSources::from_page(&page());
        assert!(s.text.contains("paypal"));
        assert!(s.title.contains("paypal"));
        assert!(s.title.contains("login"));
        assert!(s.copyright.contains("paypal"));
        // FreeURL of the starting URL: path "paypal/login" + query.
        assert!(s.start.contains("paypal"));
        assert!(s.start.contains("session"));
        // startrdn holds the phisher's registered domain terms.
        assert!(s.startrdn.contains("evil"));
        assert!(s.startrdn.contains("host"));
        assert!(!s.startrdn.contains("paypal"));
    }

    #[test]
    fn internal_external_split_follows_chain_control() {
        let s = DataSources::from_page(&page());
        // paypal.com is NOT in the redirection chain → external.
        assert!(s.extrdn.contains("paypal"));
        assert!(!s.intrdn.contains("paypal"));
        assert!(s.intrdn.contains("evil"));
        // External HREF FreeURL contains "help".
        assert!(s.extlink.contains("help"));
        assert!(s.intlink.contains("submit"));
        // External logged FreeURL: "logo.png" → "logo" + "png".
        assert!(s.extlog.contains("logo"));
        assert!(s.intlog.contains("css"));
    }

    #[test]
    fn partial_sources_blank_link_distributions() {
        let p = page();
        let degraded = SourceAvailability {
            html: false,
            links: false,
            screenshot: true,
        };
        let s = DataSources::from_partial(&p, &degraded);
        for d in [
            &s.intlog, &s.intlink, &s.intrdn, &s.extrdn, &s.extlog, &s.extlink,
        ] {
            assert!(d.is_empty(), "link-derived distributions must be neutral");
        }
        // URL- and text-derived distributions survive.
        assert!(s.start.contains("paypal"));
        assert!(s.text.contains("paypal"));

        // A full mask reproduces from_page exactly.
        let full = DataSources::from_partial(&p, &SourceAvailability::FULL);
        assert_eq!(
            format!("{full:?}"),
            format!("{:?}", DataSources::from_page(&p))
        );
    }

    #[test]
    fn f2_distribution_count() {
        let s = DataSources::from_page(&page());
        assert_eq!(s.f2_distributions().len(), 12);
        assert_eq!(DataSources::f2_names().len(), 12);
    }

    #[test]
    fn scratch_reuse_matches_fresh_construction() {
        let mut scratch = kyp_text::TermScratch::new();
        let p = page();
        // Reuse the same scratch repeatedly; every pass must equal the
        // allocate-fresh path.
        for _ in 0..3 {
            let a = DataSources::from_page_in(&p, &mut scratch);
            let b = DataSources::from_page(&p);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn missing_copyright_is_empty() {
        let mut p = page();
        p.copyright = None;
        let s = DataSources::from_page(&p);
        assert!(s.copyright.is_empty());
    }

    #[test]
    fn ip_urls_give_empty_rdn_distributions() {
        let mut p = page();
        p.starting_url = url("http://192.168.1.1/login");
        p.landing_url = url("http://192.168.1.1/login");
        p.redirection_chain = vec![url("http://192.168.1.1/login")];
        let s = DataSources::from_page(&p);
        assert!(
            s.startrdn.is_empty(),
            "paper: IP URLs → empty distributions"
        );
        assert!(s.landrdn.is_empty());
    }
}
