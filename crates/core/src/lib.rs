#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! The *Know Your Phish* contribution: phishing detection from 212
//! browser-observable features, and search-based target identification.
//!
//! This crate implements Sections III–V of Marchal et al. (ICDCS 2016):
//!
//! - [`DataSources`] — the term distributions of Table I, split by the
//!   phisher's *control* (internal/external links) and *constraints*
//!   (RDN vs FreeURL) as described in Section III-A;
//! - [`features`] — the 212-feature vector of Section IV-B, grouped into
//!   the five sets of Table III (f1 URL, f2 term-usage consistency,
//!   f3 mld usage, f4 RDN usage, f5 content);
//! - [`PhishDetector`] — the Gradient Boosting classifier of Section IV-C
//!   with the paper's 0.7 discrimination threshold;
//! - [`keyterms`] — boosted prominent / prominent / OCR prominent terms
//!   (Section V-A);
//! - [`TargetIdentifier`] — the five-step identification process of
//!   Section V-B, returning either a legitimacy confirmation or ranked
//!   candidate targets;
//! - [`Pipeline`] — the combined system of Section III-C: the detector
//!   flags potential phish, the target identifier confirms them or
//!   removes false positives.
//!
//! # Examples
//!
//! ```
//! use kyp_core::FeatureExtractor;
//! use kyp_web::{Browser, DomainRanker, Page, WebWorld};
//!
//! let mut world = WebWorld::new();
//! world.add_page("https://mybank.com/", Page::new(
//!     "<title>My Bank</title><body>Welcome to My Bank <a href=\"/login\">login</a></body>"));
//! let visit = Browser::new(&world).visit("https://mybank.com/")?;
//!
//! let extractor = FeatureExtractor::new(DomainRanker::from_ranked(["mybank.com"]));
//! let features = extractor.extract(&visit);
//! assert_eq!(features.len(), kyp_core::features::FEATURE_COUNT);
//! # Ok::<(), kyp_web::VisitError>(())
//! ```

pub mod cascade;
mod detector;
pub mod features;
pub mod keyterms;
mod pipeline;
pub(crate) mod snapshot;
mod sources;
mod target;

pub use cascade::{
    CascadeBand, CascadeClassifier, CascadeDecision, UrlFeaturizer, Verdict, URL_FEATURE_COUNT,
};
pub use detector::{DetectorConfig, PhishDetector};
pub use features::{ConsistencyMetric, ExtractorConfig, FeatureExtractor, FeatureSet};
/// Re-exported from `kyp-obs`: the stage tag the provenance-carrying
/// [`Verdict`] API attaches to every output.
pub use kyp_obs::VerdictStage;
pub use pipeline::{BatchRun, ClassifiedPage, Pipeline, PipelineVerdict, ScrapeReport};
pub use snapshot::{ModelSnapshot, SnapshotError, MODEL_SNAPSHOT_VERSION, STAGE_FULL, STAGE_URL};
pub use sources::DataSources;
pub use target::{TargetCandidate, TargetIdentifier, TargetIdentifierConfig, TargetVerdict};
