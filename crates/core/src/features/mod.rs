//! The 212-feature set of Section IV-B, grouped per Table III:
//!
//! | set | count | content |
//! |-----|-------|---------|
//! | f1  | 106   | URL lexical statistics (Table IV) |
//! | f2  | 66    | pairwise Hellinger distances between term distributions |
//! | f3  | 22    | usage of the starting/landing mld across sources |
//! | f4  | 13    | RDN usage consistency |
//! | f5  | 5     | webpage content counts |
//!
//! Feature values are plain `f64`; empty data sources produce the paper's
//! "null features" (zeros) rather than errors, so IP-hosted or content-poor
//! pages still yield a full vector.

mod consistency;
mod content;
mod mld_usage;
pub use mld_usage::canonical_mld;
mod rdn_usage;
mod url_stats;
pub(crate) use url_stats::single_url_stats;

use crate::DataSources;
use kyp_url::Url;
use kyp_web::ocr::OcrConfig;
use kyp_web::{DomainRanker, VisitedPage};

/// The four control-split link sets, computed once per page and shared by
/// the f1 and f4 features — the split predicate walks the redirection
/// chain per link, so recomputing it per family is measurable on the hot
/// path.
pub(crate) struct LinkSplits<'a> {
    pub intlog: Vec<&'a Url>,
    pub extlog: Vec<&'a Url>,
    pub intlink: Vec<&'a Url>,
    pub extlink: Vec<&'a Url>,
}

impl<'a> LinkSplits<'a> {
    pub(crate) fn of(page: &'a VisitedPage) -> Self {
        let (intlog, extlog) = page.logged_split();
        let (intlink, extlink) = page.href_split();
        Self {
            intlog,
            extlog,
            intlink,
            extlink,
        }
    }
}

/// Total number of features (the paper's 212).
pub const FEATURE_COUNT: usize = 212;

/// Number of f1 (URL) features.
pub const F1_COUNT: usize = 106;
/// Number of f2 (term-usage consistency) features.
pub const F2_COUNT: usize = 66;
/// Number of f3 (starting/landing mld usage) features.
pub const F3_COUNT: usize = 22;
/// Number of f4 (RDN usage) features.
pub const F4_COUNT: usize = 13;
/// Number of f5 (webpage content) features.
pub const F5_COUNT: usize = 5;

const F1_START: usize = 0;
const F2_START: usize = F1_START + F1_COUNT;
const F3_START: usize = F2_START + F2_COUNT;
const F4_START: usize = F3_START + F3_COUNT;
const F5_START: usize = F4_START + F4_COUNT;

/// The feature groupings evaluated in the paper's Table VII and Figs. 2/5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FeatureSet {
    /// URL features only.
    F1,
    /// Term-usage consistency only.
    F2,
    /// Starting/landing mld usage only.
    F3,
    /// RDN usage only.
    F4,
    /// Webpage content only.
    F5,
    /// f1 ∪ f5.
    F15,
    /// f2 ∪ f3 ∪ f4.
    F234,
    /// The entire 212-feature set.
    All,
}

impl FeatureSet {
    /// Every evaluated feature set, in the paper's presentation order.
    pub const ALL_SETS: [FeatureSet; 8] = [
        FeatureSet::F1,
        FeatureSet::F2,
        FeatureSet::F3,
        FeatureSet::F4,
        FeatureSet::F5,
        FeatureSet::F15,
        FeatureSet::F234,
        FeatureSet::All,
    ];

    /// The column indices of this set within the full feature vector.
    pub fn columns(&self) -> Vec<usize> {
        let range = |start: usize, count: usize| (start..start + count).collect::<Vec<_>>();
        match self {
            FeatureSet::F1 => range(F1_START, F1_COUNT),
            FeatureSet::F2 => range(F2_START, F2_COUNT),
            FeatureSet::F3 => range(F3_START, F3_COUNT),
            FeatureSet::F4 => range(F4_START, F4_COUNT),
            FeatureSet::F5 => range(F5_START, F5_COUNT),
            FeatureSet::F15 => {
                let mut c = range(F1_START, F1_COUNT);
                c.extend(range(F5_START, F5_COUNT));
                c
            }
            FeatureSet::F234 => {
                let mut c = range(F2_START, F2_COUNT);
                c.extend(range(F3_START, F3_COUNT));
                c.extend(range(F4_START, F4_COUNT));
                c
            }
            FeatureSet::All => range(0, FEATURE_COUNT),
        }
    }

    /// The paper's label for this set (`f1`, ..., `fall`).
    pub fn label(&self) -> &'static str {
        match self {
            FeatureSet::F1 => "f1",
            FeatureSet::F2 => "f2",
            FeatureSet::F3 => "f3",
            FeatureSet::F4 => "f4",
            FeatureSet::F5 => "f5",
            FeatureSet::F15 => "f1,5",
            FeatureSet::F234 => "f2,3,4",
            FeatureSet::All => "fall",
        }
    }
}

/// The dissimilarity used by the f2 term-usage-consistency features.
///
/// The paper uses the squared Hellinger distance; the Jaccard set
/// distance is provided for the DESIGN.md ablation (it discards term
/// frequencies, weakening the consistency signal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ConsistencyMetric {
    /// Squared Hellinger distance over term frequencies (the paper).
    #[default]
    Hellinger,
    /// Jaccard distance over term sets (ablation).
    Jaccard,
}

/// Optional extraction settings beyond the paper's defaults.
#[derive(Debug, Clone, Default)]
pub struct ExtractorConfig {
    /// Dissimilarity for the f2 features.
    pub consistency_metric: ConsistencyMetric,
    /// Extend f2 with the copyright and OCR-image distributions the paper
    /// tabled (Table I) but discarded: 14 distributions → 91 pairs,
    /// giving a 237-feature vector. OCR makes this the slow path.
    pub extended_distributions: bool,
    /// OCR noise profile for the image distribution (extended mode only).
    pub ocr: OcrConfig,
}

/// Total feature count in extended-distribution mode: f1 (106) +
/// extended f2 (91) + f3 (22) + f4 (13) + f5 (5).
pub const EXTENDED_FEATURE_COUNT: usize = FEATURE_COUNT - F2_COUNT + 91;

/// Extracts the full 212-feature vector from scraped pages.
///
/// Owns the local domain ranking (the paper's offline Alexa list) so
/// extraction needs no online access — the usability requirement of
/// Section IV-A.
///
/// # Examples
///
/// See the [crate docs](crate).
#[derive(Debug, Clone, Default)]
pub struct FeatureExtractor {
    ranker: DomainRanker,
    config: ExtractorConfig,
}

impl FeatureExtractor {
    /// Creates an extractor with the given domain ranking and the paper's
    /// default settings (Hellinger, 212 features).
    pub fn new(ranker: DomainRanker) -> Self {
        Self::with_config(ranker, ExtractorConfig::default())
    }

    /// Creates an extractor with explicit settings (ablations).
    pub fn with_config(ranker: DomainRanker, config: ExtractorConfig) -> Self {
        FeatureExtractor { ranker, config }
    }

    /// The domain ranking in use.
    pub fn ranker(&self) -> &DomainRanker {
        &self.ranker
    }

    /// The extraction settings in use.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// Number of features this extractor produces (212, or 237 in
    /// extended-distribution mode).
    pub fn feature_count(&self) -> usize {
        if self.config.extended_distributions {
            EXTENDED_FEATURE_COUNT
        } else {
            FEATURE_COUNT
        }
    }

    /// Extracts the feature vector from a page.
    pub fn extract(&self, page: &VisitedPage) -> Vec<f64> {
        self.extract_in(page, &mut kyp_text::TermScratch::new())
    }

    /// Extracts the feature vector from a page, reusing `scratch`'s
    /// buffers for term extraction. Identical output to
    /// [`FeatureExtractor::extract`]; the batch path threads one scratch
    /// through a whole chunk of pages.
    pub fn extract_in(&self, page: &VisitedPage, scratch: &mut kyp_text::TermScratch) -> Vec<f64> {
        let splits = LinkSplits::of(page);
        let sources = DataSources::from_page_with_splits(page, &splits, scratch);
        self.extract_observed_with(page, &sources, &splits, &mut kyp_obs::NoopObserver)
    }

    /// Pages per worker chunk in [`FeatureExtractor::extract_batch`]:
    /// large enough to amortise per-chunk scratch setup, small enough to
    /// balance work across the pool.
    const BATCH_CHUNK: usize = 32;

    /// Extracts feature vectors for a batch of pages, fanning chunks of
    /// pages out over the default [`kyp_exec`] pool. Each worker carries
    /// one [`kyp_text::TermScratch`] across its whole chunk, so the term
    /// extraction buffers are reused instead of reallocated per page.
    ///
    /// Returns one vector per page in input order; element `i` is exactly
    /// `extract(&pages[i])` whatever the thread count.
    pub fn extract_batch(&self, pages: &[VisitedPage]) -> Vec<Vec<f64>> {
        let chunks = kyp_exec::pool().par_chunks(pages, Self::BATCH_CHUNK, |_, chunk| {
            let mut scratch = kyp_text::TermScratch::new();
            chunk
                .iter()
                .map(|page| self.extract_in(page, &mut scratch))
                .collect::<Vec<_>>()
        });
        chunks.into_iter().flatten().collect()
    }

    /// Extracts feature vectors for a batch of pages into one flat
    /// row-major matrix of `pages.len() * feature_count()` values — the
    /// layout the columnar feature store and `Dataset::push_flat_rows`
    /// consume without re-slicing.
    ///
    /// Row `i` holds exactly `extract(&pages[i])`, whatever the thread
    /// count: the same chunked fan-out as
    /// [`FeatureExtractor::extract_batch`], concatenated in input order.
    pub fn extract_batch_flat(&self, pages: &[VisitedPage]) -> Vec<f64> {
        let width = self.feature_count();
        let chunks = kyp_exec::pool().par_chunks(pages, Self::BATCH_CHUNK, |_, chunk| {
            let mut scratch = kyp_text::TermScratch::new();
            let mut flat = Vec::with_capacity(chunk.len() * width);
            for page in chunk {
                flat.extend_from_slice(&self.extract_in(page, &mut scratch));
            }
            flat
        });
        let mut out = Vec::with_capacity(pages.len() * width);
        for chunk in chunks {
            out.extend_from_slice(&chunk);
        }
        out
    }

    /// Extracts a complete, finite feature vector from a *partially*
    /// captured page (graceful degradation).
    ///
    /// Sources the scraper could not capture intact contribute their
    /// neutral (null-feature) values instead of half-delivered data: see
    /// [`DataSources::from_partial`]. The result always has
    /// [`FeatureExtractor::feature_count`] entries and every entry is
    /// finite, whatever the availability mask says.
    pub fn extract_degraded(
        &self,
        page: &VisitedPage,
        availability: &kyp_web::SourceAvailability,
    ) -> Vec<f64> {
        let sources = DataSources::from_partial(page, availability);
        self.extract_with_sources(page, &sources)
    }

    /// Extracts features reusing already-computed term distributions
    /// (the keyterm extractor needs the same [`DataSources`]).
    pub fn extract_with_sources(&self, page: &VisitedPage, sources: &DataSources) -> Vec<f64> {
        self.extract_with_sources_observed(page, sources, &mut kyp_obs::NoopObserver)
    }

    /// Like [`FeatureExtractor::extract_with_sources`], reporting each
    /// feature family to `obs` as it completes. The observer only
    /// watches; the returned vector is identical to the unobserved call.
    pub fn extract_with_sources_observed(
        &self,
        page: &VisitedPage,
        sources: &DataSources,
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> Vec<f64> {
        self.extract_observed_with(page, sources, &LinkSplits::of(page), obs)
    }

    /// Innermost extraction: sources *and* link splits already computed.
    /// The batch hot path computes one [`LinkSplits`] per page and shares
    /// it between [`DataSources`] and the f1/f4 features.
    fn extract_observed_with(
        &self,
        page: &VisitedPage,
        sources: &DataSources,
        splits: &LinkSplits<'_>,
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> Vec<f64> {
        use kyp_obs::FeatureFamily;
        let mut out = Vec::with_capacity(self.feature_count());
        url_stats::push_f1(page, splits, &self.ranker, &mut out);
        obs.feature_family(FeatureFamily::F1Url, out.len());
        let f2_start = out.len();
        if self.config.extended_distributions {
            consistency::push_f2_extended(
                page,
                sources,
                &self.config.ocr,
                self.config.consistency_metric,
                &mut out,
            );
        } else {
            consistency::push_f2(sources, self.config.consistency_metric, &mut out);
        }
        obs.feature_family(FeatureFamily::F2TermConsistency, out.len() - f2_start);
        let f3_start = out.len();
        mld_usage::push_f3(page, sources, &mut out);
        obs.feature_family(FeatureFamily::F3MldUsage, out.len() - f3_start);
        let f4_start = out.len();
        rdn_usage::push_f4(page, splits, &mut out);
        obs.feature_family(FeatureFamily::F4RdnUsage, out.len() - f4_start);
        let f5_start = out.len();
        content::push_f5(page, sources, &mut out);
        obs.feature_family(FeatureFamily::F5Content, out.len() - f5_start);
        debug_assert_eq!(out.len(), self.feature_count());
        out
    }
}

/// Human-readable names for all 212 features, in vector order.
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::with_capacity(FEATURE_COUNT);
    url_stats::push_names(&mut names);
    consistency::push_names(&mut names);
    mld_usage::push_names(&mut names);
    rdn_usage::push_names(&mut names);
    content::push_names(&mut names);
    debug_assert_eq!(names.len(), FEATURE_COUNT);
    names
}

#[cfg(test)]
pub(crate) mod test_pages {
    use kyp_url::Url;
    use kyp_web::VisitedPage;

    pub fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    /// A paypal-targeting phish hosted on a throwaway domain.
    pub fn phish() -> VisitedPage {
        VisitedPage {
            starting_url: url("http://login-verify.badhost.tk/paypal/signin?id=77"),
            landing_url: url("http://login-verify.badhost.tk/paypal/signin?id=77"),
            redirection_chain: vec![url("http://login-verify.badhost.tk/paypal/signin?id=77")],
            logged_links: vec![
                url("https://www.paypal.com/logo.png"),
                url("https://www.paypal.com/style.css"),
                url("http://login-verify.badhost.tk/x.js"),
            ],
            href_links: vec![
                url("https://www.paypal.com/help"),
                url("https://www.paypal.com/terms"),
            ],
            text: "log in to your paypal account enter your password".into(),
            title: "PayPal Secure Login".into(),
            copyright: Some("© PayPal Inc".into()),
            screenshot_text: "log in to your paypal account".into(),
            input_count: 3,
            image_count: 4,
            iframe_count: 1,
        }
    }

    /// A legitimate bank front page on its own domain.
    pub fn legit() -> VisitedPage {
        VisitedPage {
            starting_url: url("https://www.mybank.com/"),
            landing_url: url("https://www.mybank.com/welcome"),
            redirection_chain: vec![
                url("https://www.mybank.com/"),
                url("https://www.mybank.com/welcome"),
            ],
            logged_links: vec![
                url("https://www.mybank.com/app.js"),
                url("https://www.mybank.com/main.css"),
                url("https://cdn.jsdelivr.net/lib.js"),
            ],
            href_links: vec![
                url("https://www.mybank.com/accounts"),
                url("https://www.mybank.com/mybank/mortgages"),
                url("https://partner.org/offer"),
            ],
            text: "welcome to mybank online banking accounts mortgages mybank serves you".into(),
            title: "MyBank — Online Banking".into(),
            copyright: Some("© 2015 MyBank Corp".into()),
            screenshot_text: "welcome to mybank online banking".into(),
            input_count: 1,
            image_count: 2,
            iframe_count: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_pages::{legit, phish};

    #[test]
    fn vector_has_212_features() {
        let ex = FeatureExtractor::default();
        assert_eq!(ex.extract(&phish()).len(), FEATURE_COUNT);
        assert_eq!(ex.extract(&legit()).len(), FEATURE_COUNT);
    }

    #[test]
    fn counts_match_table_iii() {
        assert_eq!(F1_COUNT, 106);
        assert_eq!(F2_COUNT, 66);
        assert_eq!(F3_COUNT, 22);
        assert_eq!(F4_COUNT, 13);
        assert_eq!(F5_COUNT, 5);
        assert_eq!(F1_COUNT + F2_COUNT + F3_COUNT + F4_COUNT + F5_COUNT, 212);
    }

    #[test]
    fn feature_set_columns() {
        assert_eq!(FeatureSet::F1.columns().len(), 106);
        assert_eq!(FeatureSet::F2.columns().len(), 66);
        assert_eq!(FeatureSet::F3.columns().len(), 22);
        assert_eq!(FeatureSet::F4.columns().len(), 13);
        assert_eq!(FeatureSet::F5.columns().len(), 5);
        assert_eq!(FeatureSet::F15.columns().len(), 111);
        assert_eq!(FeatureSet::F234.columns().len(), 101);
        assert_eq!(FeatureSet::All.columns().len(), 212);
        // Disjoint base sets cover everything exactly once.
        let mut all: Vec<usize> = [
            FeatureSet::F1,
            FeatureSet::F2,
            FeatureSet::F3,
            FeatureSet::F4,
            FeatureSet::F5,
        ]
        .iter()
        .flat_map(super::FeatureSet::columns)
        .collect();
        all.sort_unstable();
        assert_eq!(all, (0..212).collect::<Vec<_>>());
    }

    #[test]
    fn names_cover_every_feature() {
        let names = feature_names();
        assert_eq!(names.len(), FEATURE_COUNT);
        let distinct: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(distinct.len(), FEATURE_COUNT, "names must be unique");
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = FeatureSet::ALL_SETS
            .iter()
            .map(super::FeatureSet::label)
            .collect();
        assert_eq!(
            labels,
            ["f1", "f2", "f3", "f4", "f5", "f1,5", "f2,3,4", "fall"]
        );
    }

    #[test]
    fn extended_extractor_produces_237() {
        let ex = FeatureExtractor::with_config(
            kyp_web::DomainRanker::default(),
            ExtractorConfig {
                extended_distributions: true,
                ..ExtractorConfig::default()
            },
        );
        assert_eq!(ex.feature_count(), EXTENDED_FEATURE_COUNT);
        assert_eq!(EXTENDED_FEATURE_COUNT, 237);
        let v = ex.extract(&phish());
        assert_eq!(v.len(), 237);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn jaccard_extractor_differs_from_hellinger() {
        let hell = FeatureExtractor::default();
        let jac = FeatureExtractor::with_config(
            kyp_web::DomainRanker::default(),
            ExtractorConfig {
                consistency_metric: ConsistencyMetric::Jaccard,
                ..ExtractorConfig::default()
            },
        );
        let a = hell.extract(&phish());
        let b = jac.extract(&phish());
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b, "metrics must differ on real pages");
        // Non-f2 blocks identical.
        assert_eq!(a[..F2_START], b[..F2_START]);
        assert_eq!(a[F3_START..], b[F3_START..]);
    }

    #[test]
    fn all_values_finite() {
        let ex = FeatureExtractor::default();
        for page in [phish(), legit()] {
            for (i, v) in ex.extract(&page).iter().enumerate() {
                assert!(v.is_finite(), "feature {i} is {v}");
            }
        }
    }

    #[test]
    fn extract_batch_matches_pointwise_in_order() {
        let ex = FeatureExtractor::default();
        let pages: Vec<_> = (0..12)
            .flat_map(|i| {
                let mut p = phish();
                p.input_count = i;
                let mut l = legit();
                l.image_count = i;
                [p, l]
            })
            .collect();
        let batch = ex.extract_batch(&pages);
        assert_eq!(batch.len(), pages.len());
        for (page, features) in pages.iter().zip(&batch) {
            assert_eq!(features, &ex.extract(page));
        }
    }
}
