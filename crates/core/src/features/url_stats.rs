//! Feature set f1: 106 URL lexical statistics (paper Table IV).
//!
//! Nine statistics describe a single URL; they are computed for the
//! starting and landing URLs directly (18 features), and features 3–9 are
//! aggregated as mean/median/standard deviation over the four link sets
//! split by control (internal/external logged and HREF links; 84
//! features), plus the https ratio (feature 1) per link set (4 features).

use kyp_text::term_count;
use kyp_url::Url;
use kyp_web::{DomainRanker, VisitedPage};

/// The seven per-URL statistics that get aggregated over link sets
/// (Table IV features 3–9).
const AGG_STATS: [&str; 7] = [
    "level_domains",
    "url_len",
    "fqdn_len",
    "mld_len",
    "url_terms",
    "mld_terms",
    "alexa_rank",
];

/// The nine statistics of a single URL (Table IV order). `rdn_buf` is a
/// reusable scratch string for the ranker lookup key. Shared with the
/// cascade's URL-only featurizer (`crate::cascade`), whose first nine
/// features are exactly this row.
pub(crate) fn single_url_stats(url: &Url, ranker: &DomainRanker, rdn_buf: &mut String) -> [f64; 9] {
    [
        f64::from(url.is_https()),
        url.free_dot_count() as f64,
        url.level_domain_count() as f64,
        url.len() as f64,
        url.fqdn_len() as f64,
        url.mld_len() as f64,
        term_count(url.as_str()) as f64,
        url.mld().map_or(0.0, |m| term_count(m) as f64),
        rank_of(url, ranker, rdn_buf),
    ]
}

/// Features 3–9 of one URL (the aggregatable subset).
fn agg_stats(url: &Url, ranker: &DomainRanker, rdn_buf: &mut String) -> [f64; 7] {
    let [_https, _dots, ldc, len, fqdn, mld, terms, mld_terms, rank] =
        single_url_stats(url, ranker, rdn_buf);
    [ldc, len, fqdn, mld, terms, mld_terms, rank]
}

/// Alexa rank of the URL's RDN; the dotted lookup key is rebuilt into
/// `buf` so the hot path performs no per-URL allocation.
fn rank_of(url: &Url, ranker: &DomainRanker, buf: &mut String) -> f64 {
    let labels = url.rdn_labels();
    if labels.is_empty() {
        return f64::from(kyp_web::UNRANKED);
    }
    buf.clear();
    for (i, label) in labels.iter().enumerate() {
        if i > 0 {
            buf.push('.');
        }
        buf.push_str(label);
    }
    f64::from(ranker.rank(buf))
}

/// Pushes all 106 f1 features.
pub(crate) fn push_f1(
    page: &VisitedPage,
    splits: &crate::features::LinkSplits<'_>,
    ranker: &DomainRanker,
    out: &mut Vec<f64>,
) {
    let mut rdn_buf = String::new();
    let start_stats = single_url_stats(&page.starting_url, ranker, &mut rdn_buf);
    out.extend(start_stats);
    // Equal URLs yield equal statistics (pure function of the URL), so a
    // page that lands where it started reuses the starting row.
    if page.starting_url == page.landing_url {
        out.extend(start_stats);
    } else {
        out.extend(single_url_stats(&page.landing_url, ranker, &mut rdn_buf));
    }

    for set in [
        &splits.intlog,
        &splits.extlog,
        &splits.intlink,
        &splits.extlink,
    ] {
        push_link_set(set, ranker, &mut rdn_buf, out);
    }
}

/// 22 features for one link set: https ratio + (mean, median, std) of the
/// seven aggregatable statistics. Empty sets yield zeros (null features).
fn push_link_set(urls: &[&Url], ranker: &DomainRanker, rdn_buf: &mut String, out: &mut Vec<f64>) {
    if urls.is_empty() {
        out.extend(std::iter::repeat_n(0.0, 1 + AGG_STATS.len() * 3));
        return;
    }
    let https = urls.iter().filter(|u| u.is_https()).count() as f64 / urls.len() as f64;
    out.push(https);
    let per_url: Vec<[f64; 7]> = urls.iter().map(|u| agg_stats(u, ranker, rdn_buf)).collect();
    let mut column = Vec::with_capacity(urls.len());
    for stat in 0..AGG_STATS.len() {
        column.clear();
        // kyp-lint: allow(P02) — rows are [f64; 7] and stat ranges over AGG_STATS.len() == 7
        column.extend(per_url.iter().map(|row| row[stat]));
        out.push(mean(&column));
        out.push(median(&mut column));
        out.push(std_dev(&column));
    }
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

/// Median; sorts its input in place. Empty input yields 0 (the null
/// feature), matching the empty-set convention of [`push_link_set`].
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    let mid = values.get(n / 2).copied().unwrap_or_default();
    if n % 2 == 1 {
        mid
    } else {
        values
            .get((n / 2).wrapping_sub(1))
            .map_or(mid, |&lo| f64::midpoint(lo, mid))
    }
}

/// Population standard deviation.
fn std_dev(values: &[f64]) -> f64 {
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Pushes the 106 f1 feature names.
pub(crate) fn push_names(names: &mut Vec<String>) {
    const SINGLE: [&str; 9] = [
        "https",
        "freeurl_dots",
        "level_domains",
        "url_len",
        "fqdn_len",
        "mld_len",
        "url_terms",
        "mld_terms",
        "alexa_rank",
    ];
    for stat in SINGLE {
        names.push(format!("f1.start.{stat}"));
    }
    for stat in SINGLE {
        names.push(format!("f1.land.{stat}"));
    }
    for set in ["intlog", "extlog", "intlink", "extlink"] {
        names.push(format!("f1.{set}.https_ratio"));
        for stat in AGG_STATS {
            for agg in ["mean", "median", "std"] {
                names.push(format!("f1.{set}.{stat}.{agg}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_pages::{legit, phish, url};

    #[test]
    fn single_url_stats_values() {
        let ranker = DomainRanker::from_ranked(["amazon.co.uk"]);
        let u = url("https://www.amazon.co.uk/ap/signin?_encoding=UTF8");
        let s = single_url_stats(&u, &ranker, &mut String::new());
        assert_eq!(s[0], 1.0); // https
        assert_eq!(s[1], 0.0); // no dots in FreeURL parts
        assert_eq!(s[2], 4.0); // www.amazon.co.uk → 4 level domains
        assert_eq!(s[3], u.len() as f64);
        assert_eq!(s[4], "www.amazon.co.uk".len() as f64);
        assert_eq!(s[5], "amazon".len() as f64);
        // terms of the whole URL: https www amazon signin encoding utf
        assert_eq!(s[6], 6.0);
        assert_eq!(s[7], 1.0); // "amazon" is one term
        assert_eq!(s[8], 1.0); // ranked first
    }

    #[test]
    fn dots_counted_in_free_url() {
        let ranker = DomainRanker::new();
        // Subdomain "paypal.com.secure" contributes 2 dots to FreeURL.
        let u = url("http://paypal.com.secure.badhost.tk/a.php");
        let s = single_url_stats(&u, &ranker, &mut String::new());
        assert_eq!(s[1], 3.0);
        assert_eq!(s[2], 5.0); // 5 level domains
    }

    #[test]
    fn unranked_domain_gets_default() {
        let ranker = DomainRanker::new();
        let u = url("http://nowhere.example.xyz/");
        let s = single_url_stats(&u, &ranker, &mut String::new());
        assert_eq!(s[8], f64::from(kyp_web::UNRANKED));
    }

    #[test]
    fn ip_url_stats_are_null() {
        let ranker = DomainRanker::new();
        let u = url("http://10.0.0.1/login");
        let s = single_url_stats(&u, &ranker, &mut String::new());
        assert_eq!(s[2], 0.0); // no level domains
        assert_eq!(s[4], 0.0); // no fqdn length
        assert_eq!(s[5], 0.0); // no mld
        assert_eq!(s[8], f64::from(kyp_web::UNRANKED));
    }

    #[test]
    fn f1_produces_106_features() {
        let mut out = Vec::new();
        push_f1(
            &phish(),
            &crate::features::LinkSplits::of(&phish()),
            &DomainRanker::new(),
            &mut out,
        );
        assert_eq!(out.len(), 106);
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), 106);
    }

    #[test]
    fn empty_link_sets_are_zero() {
        let mut p = legit();
        p.logged_links.clear();
        p.href_links.clear();
        let mut out = Vec::new();
        push_f1(
            &p,
            &crate::features::LinkSplits::of(&p),
            &DomainRanker::new(),
            &mut out,
        );
        // The four link-set blocks (positions 18..106) must all be zero.
        assert!(out[18..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn aggregates_are_consistent() {
        let mut vals = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&vals), 2.5);
        assert_eq!(median(&mut vals), 2.5);
        let mut odd = vec![5.0, 1.0, 3.0];
        assert_eq!(median(&mut odd), 3.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn https_ratio_reflects_links() {
        let p = phish();
        let mut out = Vec::new();
        push_f1(
            &p,
            &crate::features::LinkSplits::of(&p),
            &DomainRanker::new(),
            &mut out,
        );
        // extlog set = the two https paypal.com resources → ratio 1.0.
        let extlog_https = out[18 + 22];
        assert_eq!(extlog_https, 1.0);
        // intlog set = the single http badhost resource → ratio 0.0.
        let intlog_https = out[18];
        assert_eq!(intlog_https, 0.0);
    }
}
