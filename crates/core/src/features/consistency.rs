//! Feature set f2: 66 term-usage-consistency features — the pairwise
//! (squared) Hellinger distances between the 12 term distributions of
//! Table I, excluding copyright and image (Section IV-B).
//!
//! The conjecture these features encode: legitimate pages use the same
//! key terms coherently across *all* their parts (a bank's text, title,
//! domain name and internal links all spell the brand), while a phish can
//! only imitate the parts its author controls — the registrar-constrained
//! RDN and the uncontrolled external links betray the inconsistency.

use crate::features::ConsistencyMetric;
use crate::DataSources;
use kyp_text::TermDistribution;
use kyp_web::ocr::{simulate_ocr, OcrConfig};
use kyp_web::VisitedPage;

fn distance(a: &TermDistribution, b: &TermDistribution, metric: ConsistencyMetric) -> f64 {
    match metric {
        ConsistencyMetric::Hellinger => a.hellinger_squared(b),
        ConsistencyMetric::Jaccard => a.jaccard_distance(b),
    }
    .unwrap_or(0.0)
}

/// Pushes the 66 f2 features: pairwise distances for all pairs `(i, j)`
/// with `i < j` over [`DataSources::f2_distributions`]. Pairs involving an
/// empty distribution yield 0 (the paper's null features).
///
/// Each distribution takes part in 11 pairs, so the hot path first builds
/// a [`kyp_text::KeyedDistribution`] view per source — integer-keyed term
/// order plus cached `sqrt` mass — and walks those. Bit-identical to
/// pairing the distributions directly.
pub(crate) fn push_f2(sources: &DataSources, metric: ConsistencyMetric, out: &mut Vec<f64>) {
    let keyed = sources.f2_distributions().map(TermDistribution::keyed);
    for (i, a) in keyed.iter().enumerate() {
        for b in keyed.iter().skip(i + 1) {
            out.push(
                match metric {
                    ConsistencyMetric::Hellinger => a.hellinger_squared(b),
                    ConsistencyMetric::Jaccard => a.jaccard_distance(b),
                }
                .unwrap_or(0.0),
            );
        }
    }
}

/// Pushes the 91 extended f2 features: the 12 standard distributions plus
/// copyright and the OCR-read image distribution (all of Table I),
/// pairwise. The paper discarded copyright (often empty) and image (OCR
/// is slow); this is the extension path for the DESIGN.md ablation.
pub(crate) fn push_f2_extended(
    page: &VisitedPage,
    sources: &DataSources,
    ocr: &OcrConfig,
    metric: ConsistencyMetric,
    out: &mut Vec<f64>,
) {
    let image = TermDistribution::from_text(&simulate_ocr(&page.screenshot_text, ocr));
    let base = sources.f2_distributions();
    let mut dists: Vec<&TermDistribution> = base.to_vec();
    dists.push(&sources.copyright);
    dists.push(&image);
    debug_assert_eq!(dists.len(), 14);
    for (i, a) in dists.iter().enumerate() {
        for b in dists.iter().skip(i + 1) {
            out.push(distance(a, b, metric));
        }
    }
}

/// Pushes the 66 f2 feature names (`f2.hellinger.text~title`, ...).
pub(crate) fn push_names(names: &mut Vec<String>) {
    let labels = DataSources::f2_names();
    for i in 0..labels.len() {
        for j in i + 1..labels.len() {
            names.push(format!("f2.hellinger.{}~{}", labels[i], labels[j]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_pages::{legit, phish};

    fn f2_of(page: &kyp_web::VisitedPage) -> Vec<f64> {
        let sources = DataSources::from_page(page);
        let mut out = Vec::new();
        push_f2(&sources, ConsistencyMetric::Hellinger, &mut out);
        out
    }

    #[test]
    fn produces_66_features_in_unit_interval() {
        for page in [phish(), legit()] {
            let out = f2_of(&page);
            assert_eq!(out.len(), 66);
            assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn names_align() {
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), 66);
        assert_eq!(names[0], "f2.hellinger.text~title");
        assert_eq!(names[65], "f2.hellinger.extlog~extlink");
    }

    #[test]
    fn phish_rdn_inconsistency_shows() {
        // For the phish, the landing RDN (badhost.tk) shares nothing with
        // the title (PayPal Secure Login): distance should be 1.
        let names = {
            let mut n = Vec::new();
            push_names(&mut n);
            n
        };
        let phish_f2 = f2_of(&phish());
        let idx = names
            .iter()
            .position(|n| n == "f2.hellinger.title~landrdn")
            .unwrap();
        assert!(
            phish_f2[idx] > 0.99,
            "phish title~landrdn = {}",
            phish_f2[idx]
        );

        // For the legitimate page, the brand term appears in both.
        let legit_f2 = f2_of(&legit());
        assert!(
            legit_f2[idx] < phish_f2[idx],
            "legit {} vs phish {}",
            legit_f2[idx],
            phish_f2[idx]
        );
    }

    #[test]
    fn jaccard_metric_also_bounded() {
        let sources = DataSources::from_page(&phish());
        let mut out = Vec::new();
        push_f2(&sources, ConsistencyMetric::Jaccard, &mut out);
        assert_eq!(out.len(), 66);
        assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn extended_produces_91_features() {
        let page = phish();
        let sources = DataSources::from_page(&page);
        let mut out = Vec::new();
        push_f2_extended(
            &page,
            &sources,
            &kyp_web::ocr::OcrConfig::default(),
            ConsistencyMetric::Hellinger,
            &mut out,
        );
        assert_eq!(out.len(), 91);
        assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn empty_sources_are_null_not_extreme() {
        let mut p = phish();
        p.text.clear();
        p.title.clear();
        let out = f2_of(&p);
        // text~title pair (index 0) must be 0, not 1.
        assert_eq!(out[0], 0.0);
    }
}
