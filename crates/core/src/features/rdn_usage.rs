//! Feature set f4: 13 RDN-usage-consistency features (Section IV-B).
//!
//! The paper names the category — "statistics related to the use of
//! similar and different RDNs in starting URL, landing URL, redirection
//! chain, loaded content and HREF links" — without itemising the 13
//! statistics; DESIGN.md documents the motivated itemisation implemented
//! here. Legitimate pages use more internal RDNs and fewer redirections
//! than phishing pages.
//!
//! All statistics compare URLs with [`Url::same_rdn`] rather than
//! materialising an RDN string per URL. The equivalence classes match the
//! string grouping exactly: domain RDNs compare label-wise (joining with
//! dots is injective over dot-free labels), IP hosts compare by address,
//! and a domain RDN can never collide with an IPv4 dotted-decimal string
//! because multi-label public suffixes are alphabetic.

use kyp_url::Url;
use kyp_web::VisitedPage;

/// Count of RDN equivalence classes in `urls`, without allocating.
fn distinct_rdns<'a>(urls: impl Iterator<Item = &'a Url>) -> usize {
    let mut reps: Vec<&Url> = Vec::new();
    for u in urls {
        if !reps.iter().any(|r| r.same_rdn(u)) {
            reps.push(u);
        }
    }
    reps.len()
}

pub(crate) fn push_f4(
    page: &VisitedPage,
    splits: &crate::features::LinkSplits<'_>,
    out: &mut Vec<f64>,
) {
    let (intlog, extlog) = (&splits.intlog, &splits.extlog);
    let (intlink, extlink) = (&splits.intlink, &splits.extlink);
    let landing = &page.landing_url;

    // 1. redirection chain length
    out.push(page.redirection_chain.len() as f64);
    // 2. distinct RDNs in the chain
    out.push(distinct_rdns(page.redirection_chain.iter()) as f64);
    // 3. starting RDN == landing RDN
    out.push(f64::from(page.starting_url.same_rdn(landing)));
    // 4./5. distinct RDNs in logged / HREF links
    out.push(distinct_rdns(page.logged_links.iter()) as f64);
    out.push(distinct_rdns(page.href_links.iter()) as f64);
    // 6./7. internal ratio of logged / HREF links
    let ratio = |int: usize, ext: usize| {
        let total = int + ext;
        if total == 0 {
            0.0
        } else {
            int as f64 / total as f64
        }
    };
    out.push(ratio(intlog.len(), extlog.len()));
    out.push(ratio(intlink.len(), extlink.len()));
    // 8./9. distinct external RDNs in logged / HREF links
    out.push(distinct_rdns(extlog.iter().copied()) as f64);
    out.push(distinct_rdns(extlink.iter().copied()) as f64);
    // 10./11. landing RDN referenced by logged / HREF links
    out.push(f64::from(
        page.logged_links.iter().any(|u| u.same_rdn(landing)),
    ));
    out.push(f64::from(
        page.href_links.iter().any(|u| u.same_rdn(landing)),
    ));
    // 12. distinct RDNs across chain + logged + HREF
    out.push(distinct_rdns(
        page.redirection_chain
            .iter()
            .chain(&page.logged_links)
            .chain(&page.href_links),
    ) as f64);
    // 13. largest share of any single *external* RDN over all links —
    // phish point heavily at one target domain. Grouping by a
    // representative URL per class keeps the count deterministic without
    // building RDN strings.
    let mut counts: Vec<(&Url, usize)> = Vec::new();
    for u in extlog.iter().copied().chain(extlink.iter().copied()) {
        match counts.iter_mut().find(|(r, _)| r.same_rdn(u)) {
            Some((_, c)) => *c += 1,
            None => counts.push((u, 1)),
        }
    }
    let total_links = page.logged_links.len() + page.href_links.len();
    let max_ext = counts.iter().map(|&(_, c)| c).max().unwrap_or(0);
    out.push(if total_links == 0 {
        0.0
    } else {
        max_ext as f64 / total_links as f64
    });
}

pub(crate) fn push_names(names: &mut Vec<String>) {
    for n in [
        "f4.chain_len",
        "f4.chain_distinct_rdns",
        "f4.start_eq_land_rdn",
        "f4.logged_distinct_rdns",
        "f4.href_distinct_rdns",
        "f4.logged_internal_ratio",
        "f4.href_internal_ratio",
        "f4.logged_ext_distinct_rdns",
        "f4.href_ext_distinct_rdns",
        "f4.land_rdn_in_logged",
        "f4.land_rdn_in_href",
        "f4.all_distinct_rdns",
        "f4.max_external_rdn_share",
    ] {
        names.push(n.to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_pages::{legit, phish};

    fn f4_of(page: &VisitedPage) -> Vec<f64> {
        let mut out = Vec::new();
        push_f4(page, &crate::features::LinkSplits::of(page), &mut out);
        out
    }

    #[test]
    fn produces_13_features() {
        assert_eq!(f4_of(&phish()).len(), 13);
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn phish_has_low_internal_ratio_and_high_target_share() {
        let p = f4_of(&phish());
        let l = f4_of(&legit());
        // internal ratio of logged links: phish loads most content from
        // the target, legit from itself.
        assert!(
            p[5] < l[5],
            "logged internal ratio: phish {} legit {}",
            p[5],
            l[5]
        );
        assert!(p[6] < l[6], "href internal ratio");
        // max external RDN share: the phish funnels to paypal.com.
        assert!(
            p[12] > l[12],
            "external share: phish {} legit {}",
            p[12],
            l[12]
        );
    }

    #[test]
    fn chain_statistics() {
        let l = f4_of(&legit());
        assert_eq!(l[0], 2.0); // two URLs in chain
        assert_eq!(l[1], 1.0); // one distinct RDN
        assert_eq!(l[2], 1.0); // start RDN == land RDN
    }

    #[test]
    fn landing_rdn_reference_flags() {
        let l = f4_of(&legit());
        assert_eq!(l[9], 1.0, "legit loads own resources");
        assert_eq!(l[10], 1.0, "legit links to itself");
        let p = f4_of(&phish());
        assert_eq!(p[9], 1.0, "phish also loads own css");
        assert_eq!(p[10], 0.0, "phish href links all point at target");
    }

    #[test]
    fn no_links_yields_zeros() {
        let mut p = phish();
        p.logged_links.clear();
        p.href_links.clear();
        let out = f4_of(&p);
        assert_eq!(out[3], 0.0);
        assert_eq!(out[5], 0.0);
        assert_eq!(out[12], 0.0);
    }

    #[test]
    fn distinct_rdns_groups_subdomains_and_ips() {
        let u = |s: &str| Url::parse(s).unwrap();
        let urls = [
            u("http://a.example.com/x"),
            u("http://b.example.com/y"),
            u("http://other.org/"),
            u("http://10.0.0.1/a"),
            u("http://10.0.0.1/b"),
            u("http://10.0.0.2/c"),
        ];
        // example.com, other.org, 10.0.0.1, 10.0.0.2 → 4 classes.
        assert_eq!(distinct_rdns(urls.iter()), 4);
    }
}
