//! Feature set f3: 22 features on the usage of the starting and landing
//! mld across the page (Section IV-B).
//!
//! Legitimate sites register domains that spell their brand, so the mld
//! reappears in the text, title and link URLs; phishing domains have no
//! relation to the page's purported brand. Twelve binary features test
//! whether the mld occurs as a term in {text, title, intlog, extlog,
//! intlink, extlink} (6 per mld), and ten features sum the probability
//! mass of terms that are substrings of the mld over {title, intlog,
//! extlog, intlink, extlink} (5 per mld; text is excluded — its many short
//! terms would match spuriously).

use crate::DataSources;
use kyp_text::canonicalize_char;
use kyp_web::VisitedPage;

/// Canonical letter-only form of an mld: `secure-login2` → `securelogin`.
///
/// The mld may contain digits and hyphens which term extraction would
/// split on; comparisons use the letters only.
pub fn canonical_mld(mld: &str) -> String {
    mld.chars().filter_map(canonicalize_char).collect()
}

pub(crate) fn push_f3(page: &VisitedPage, sources: &DataSources, out: &mut Vec<f64>) {
    let start_mld = page
        .starting_url
        .mld()
        .map(canonical_mld)
        .unwrap_or_default();
    let land_mld = page
        .landing_url
        .mld()
        .map(canonical_mld)
        .unwrap_or_default();

    // Both rows are pure functions of the mld, so when starting and
    // landing mld coincide (no cross-domain redirect) the landing row is
    // the starting row, not a recomputation.
    let same_mld = start_mld == land_mld;

    let binary_row = |mld: &String| -> [f64; 6] {
        let binary_sources = [
            &sources.text,
            &sources.title,
            &sources.intlog,
            &sources.extlog,
            &sources.intlink,
            &sources.extlink,
        ];
        binary_sources.map(|dist| f64::from(!mld.is_empty() && dist.contains(mld)))
    };
    let start_binary = binary_row(&start_mld);
    out.extend(start_binary);
    if same_mld {
        out.extend(start_binary);
    } else {
        out.extend(binary_row(&land_mld));
    }

    let mass_row = |mld: &String| -> [f64; 5] {
        let mass_sources = [
            &sources.title,
            &sources.intlog,
            &sources.extlog,
            &sources.intlink,
            &sources.extlink,
        ];
        mass_sources.map(|dist| {
            if mld.is_empty() {
                0.0
            } else {
                dist.substring_mass_of(mld)
            }
        })
    };
    let start_mass = mass_row(&start_mld);
    out.extend(start_mass);
    if same_mld {
        out.extend(start_mass);
    } else {
        out.extend(mass_row(&land_mld));
    }
}

pub(crate) fn push_names(names: &mut Vec<String>) {
    for which in ["start", "land"] {
        for src in ["text", "title", "intlog", "extlog", "intlink", "extlink"] {
            names.push(format!("f3.{which}_mld.in.{src}"));
        }
    }
    for which in ["start", "land"] {
        for src in ["title", "intlog", "extlog", "intlink", "extlink"] {
            names.push(format!("f3.{which}_mld.mass.{src}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_pages::{legit, phish};

    fn f3_of(page: &kyp_web::VisitedPage) -> Vec<f64> {
        let sources = DataSources::from_page(page);
        let mut out = Vec::new();
        push_f3(page, &sources, &mut out);
        out
    }

    #[test]
    fn produces_22_features() {
        assert_eq!(f3_of(&phish()).len(), 22);
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), 22);
    }

    #[test]
    fn legit_mld_appears_in_sources() {
        // legit() lands on www.mybank.com and its text contains "mybank".
        let out = f3_of(&legit());
        let names = {
            let mut n = Vec::new();
            push_names(&mut n);
            n
        };
        let idx = names
            .iter()
            .position(|n| n == "f3.land_mld.in.text")
            .unwrap();
        assert_eq!(out[idx], 1.0);
        // intlink FreeURL contains "mybank" in a path segment.
        let idx2 = names
            .iter()
            .position(|n| n == "f3.land_mld.in.intlink")
            .unwrap();
        assert_eq!(out[idx2], 1.0);
    }

    #[test]
    fn phish_mld_absent_from_sources() {
        // phish() is hosted on badhost.tk; "badhost" never appears in
        // text or title.
        let out = f3_of(&phish());
        let names = {
            let mut n = Vec::new();
            push_names(&mut n);
            n
        };
        for probe in ["f3.land_mld.in.text", "f3.land_mld.in.title"] {
            let idx = names.iter().position(|n| n == probe).unwrap();
            assert_eq!(out[idx], 0.0, "{probe}");
        }
    }

    #[test]
    fn canonical_mld_strips_separators() {
        assert_eq!(canonical_mld("pay-pal"), "paypal");
        assert_eq!(canonical_mld("secure2bank"), "securebank");
        assert_eq!(canonical_mld("BANKofAmérica"), "bankofamerica");
        assert_eq!(canonical_mld("123"), "");
    }

    #[test]
    fn ip_url_gives_zero_features() {
        let mut p = phish();
        p.starting_url = crate::features::test_pages::url("http://10.0.0.1/x");
        p.landing_url = p.starting_url.clone();
        p.redirection_chain = vec![p.starting_url.clone()];
        let out = f3_of(&p);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn substring_mass_rewards_brand_spelling_domains() {
        // The legitimate page's internal links live on mybank.com, and
        // title contains "mybank": mass features should be positive.
        let out = f3_of(&legit());
        let names = {
            let mut n = Vec::new();
            push_names(&mut n);
            n
        };
        let idx = names
            .iter()
            .position(|n| n == "f3.land_mld.mass.title")
            .unwrap();
        assert!(out[idx] > 0.0);
    }
}
