//! Feature set f5: 5 webpage-content features (Section IV-B).
//!
//! Phishing pages tend to carry minimal text (to evade text-based
//! detection), more images and iframes (content lifted from the target)
//! and several input fields (they exist to harvest credentials).

use crate::DataSources;
use kyp_web::VisitedPage;

pub(crate) fn push_f5(page: &VisitedPage, sources: &DataSources, out: &mut Vec<f64>) {
    out.push(f64::from(sources.text.total_count()));
    out.push(f64::from(sources.title.total_count()));
    out.push(page.input_count as f64);
    out.push(page.image_count as f64);
    out.push(page.iframe_count as f64);
}

pub(crate) fn push_names(names: &mut Vec<String>) {
    for n in [
        "f5.text_terms",
        "f5.title_terms",
        "f5.input_fields",
        "f5.images",
        "f5.iframes",
    ] {
        names.push(n.to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_pages::phish;

    #[test]
    fn counts_from_page() {
        let p = phish();
        let sources = DataSources::from_page(&p);
        let mut out = Vec::new();
        push_f5(&p, &sources, &mut out);
        assert_eq!(out.len(), 5);
        // "log in to your paypal account enter your password"
        // → terms of len ≥ 3: log, your, paypal, account, enter, your, password = 7
        assert_eq!(out[0], 7.0);
        // "PayPal Secure Login" → 3 terms.
        assert_eq!(out[1], 3.0);
        assert_eq!(out[2], 3.0);
        assert_eq!(out[3], 4.0);
        assert_eq!(out[4], 1.0);
    }

    #[test]
    fn empty_page_is_zero() {
        let mut p = phish();
        p.text.clear();
        p.title.clear();
        p.input_count = 0;
        p.image_count = 0;
        p.iframe_count = 0;
        let sources = DataSources::from_page(&p);
        let mut out = Vec::new();
        push_f5(&p, &sources, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }
}
