//! Keyterm extraction (Section V-A): a small set of terms characterising
//! the brand/service a page talks about.
//!
//! A *keyterm* is a term that appears in several user-visible data sources
//! of the page. Three extraction variants are used in sequence by the
//! target identifier:
//!
//! - **boosted prominent terms** — intersection candidates over all five
//!   visible sources;
//! - **prominent terms** — like boosted, but the text∩links intersection
//!   alone does not qualify a term (news sites repeat link anchors in
//!   text, which would flood the list with irrelevant terms);
//! - **OCR prominent terms** — terms read off the screenshot by OCR that
//!   also occur in at least one other source (handles image-based pages,
//!   at the cost of a slow OCR pass).

use crate::DataSources;
use kyp_text::{extract_term_set, TermDistribution};
use kyp_web::ocr::{simulate_ocr, OcrConfig};
use kyp_web::VisitedPage;
use std::collections::BTreeSet;

/// The paper's keyterm list length (N=5, "proved to be a sufficient
/// number to represent a webpage").
pub const DEFAULT_KEYTERM_COUNT: usize = 5;

/// The five user-visible term sets of Section V-A.
///
/// Ordered sets (kyp-lint D01): keyterm candidates are collected by
/// iterating these, and the ranked keyterm lists feed search queries, so
/// hash order must never leak into them.
#[derive(Debug, Clone)]
pub struct VisibleSets {
    /// `T_start ∪ T_startrdn ∪ T_land ∪ T_landrdn`.
    pub url: BTreeSet<String>,
    /// `T_title`.
    pub title: BTreeSet<String>,
    /// `T_text`.
    pub text: BTreeSet<String>,
    /// `T_copyright`.
    pub copyright: BTreeSet<String>,
    /// `T_intlink ∪ T_extlink` (FreeURL terms of HREF links).
    pub links: BTreeSet<String>,
}

impl VisibleSets {
    /// Builds the five sets from a page's term distributions.
    pub fn from_sources(sources: &DataSources) -> Self {
        let set = |dists: &[&TermDistribution]| -> BTreeSet<String> {
            dists
                .iter()
                .flat_map(|d| d.terms().map(str::to_owned))
                .collect()
        };
        VisibleSets {
            url: set(&[
                &sources.start,
                &sources.startrdn,
                &sources.land,
                &sources.landrdn,
            ]),
            title: set(&[&sources.title]),
            text: set(&[&sources.text]),
            copyright: set(&[&sources.copyright]),
            links: set(&[&sources.intlink, &sources.extlink]),
        }
    }

    /// In how many of the five sets the term occurs, with flags for the
    /// text and links memberships (needed by the *prominent* variant).
    fn membership(&self, term: &str) -> (usize, bool, bool) {
        let in_text = self.text.contains(term);
        let in_links = self.links.contains(term);
        let count = usize::from(self.url.contains(term))
            + usize::from(self.title.contains(term))
            + usize::from(in_text)
            + usize::from(self.copyright.contains(term))
            + usize::from(in_links);
        (count, in_text, in_links)
    }

    /// Union of all five sets.
    pub fn all_terms(&self) -> BTreeSet<String> {
        let mut all = self.url.clone();
        all.extend(self.title.iter().cloned());
        all.extend(self.text.iter().cloned());
        all.extend(self.copyright.iter().cloned());
        all.extend(self.links.iter().cloned());
        all
    }
}

/// Overall frequency of terms across the visible parts of the page, used
/// as the keyterm ranking criterion.
fn visible_frequency(sources: &DataSources) -> TermDistribution {
    let mut freq = sources.text.clone();
    for d in [
        &sources.title,
        &sources.copyright,
        &sources.start,
        &sources.startrdn,
        &sources.land,
        &sources.landrdn,
        &sources.intlink,
        &sources.extlink,
    ] {
        freq.merge(d);
    }
    freq
}

fn rank_terms(candidates: Vec<String>, freq: &TermDistribution, n: usize) -> Vec<String> {
    let mut scored: Vec<(String, u32)> = candidates
        .into_iter()
        .map(|t| {
            let c = freq.count(&t);
            (t, c)
        })
        .collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.into_iter().take(n).map(|(t, _)| t).collect()
}

/// Extracts the top-`n` **boosted prominent terms**: terms occurring in at
/// least two of the five visible sources, ranked by overall frequency.
pub fn boosted_prominent_terms(sources: &DataSources, n: usize) -> Vec<String> {
    let sets = VisibleSets::from_sources(sources);
    let freq = visible_frequency(sources);
    let candidates = sets
        .all_terms()
        .into_iter()
        .filter(|t| sets.membership(t).0 >= 2)
        .collect();
    rank_terms(candidates, &freq, n)
}

/// Extracts the top-`n` **prominent terms**: like boosted, but a term
/// whose only two sources are text and HREF links does not qualify.
pub fn prominent_terms(sources: &DataSources, n: usize) -> Vec<String> {
    let sets = VisibleSets::from_sources(sources);
    let freq = visible_frequency(sources);
    let candidates = sets
        .all_terms()
        .into_iter()
        .filter(|t| {
            let (count, in_text, in_links) = sets.membership(t);
            count >= 2 && !(count == 2 && in_text && in_links)
        })
        .collect();
    rank_terms(candidates, &freq, n)
}

/// Extracts the top-`n` **OCR prominent terms**: terms recognised on the
/// page screenshot that also occur in at least one other visible source.
pub fn ocr_prominent_terms(
    page: &VisitedPage,
    sources: &DataSources,
    ocr: &OcrConfig,
    n: usize,
) -> Vec<String> {
    let read = simulate_ocr(&page.screenshot_text, ocr);
    let image_terms = extract_term_set(&read);
    let sets = VisibleSets::from_sources(sources);
    let freq = visible_frequency(sources);
    let candidates = image_terms
        .into_iter()
        .filter(|t| sets.membership(t).0 >= 1)
        .collect();
    rank_terms(candidates, &freq, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_pages::{legit, phish};

    #[test]
    fn boosted_finds_brand_terms_on_phish() {
        let p = phish();
        let s = DataSources::from_page(&p);
        let terms = boosted_prominent_terms(&s, 5);
        assert!(
            terms.contains(&"paypal".to_string()),
            "expected paypal in {terms:?}"
        );
        assert!(terms.len() <= 5);
    }

    #[test]
    fn boosted_finds_brand_on_legit() {
        let l = legit();
        let s = DataSources::from_page(&l);
        let terms = boosted_prominent_terms(&s, 5);
        assert!(
            terms.contains(&"mybank".to_string()),
            "expected mybank in {terms:?}"
        );
    }

    #[test]
    fn prominent_drops_text_link_only_terms() {
        // Build a news-like page: "mortgages" appears in text and in a link
        // anchor URL, nowhere else.
        let mut l = legit();
        l.title = "Daily News".into();
        l.copyright = None;
        let s = DataSources::from_page(&l);
        let boosted = boosted_prominent_terms(&s, 20);
        let prominent = prominent_terms(&s, 20);
        // "mortgages" is in text and intlink FreeURL only.
        assert!(boosted.contains(&"mortgages".to_string()));
        assert!(!prominent.contains(&"mortgages".to_string()));
    }

    #[test]
    fn ocr_terms_come_from_screenshot() {
        let mut p = phish();
        // Image-based page: no HTML text, brand only in the rendering.
        p.text = String::new();
        p.screenshot_text = "PayPal please sign in with your paypal password".into();
        let s = DataSources::from_page(&p);
        let cfg = OcrConfig {
            substitution_rate: 0.0,
            drop_rate: 0.0,
            word_loss_rate: 0.0,
            seed: 0,
        };
        let terms = ocr_prominent_terms(&p, &s, &cfg, 5);
        assert!(terms.contains(&"paypal".to_string()), "{terms:?}");
    }

    #[test]
    fn empty_page_has_no_keyterms() {
        let mut p = phish();
        p.text = String::new();
        p.title = String::new();
        p.copyright = None;
        p.href_links.clear();
        p.logged_links.clear();
        p.screenshot_text = String::new();
        let s = DataSources::from_page(&p);
        // URL still carries "paypal" and "signin" terms, but they appear in
        // a single source now, so nothing qualifies.
        assert!(boosted_prominent_terms(&s, 5).is_empty());
        assert!(prominent_terms(&s, 5).is_empty());
    }

    #[test]
    fn ranking_is_deterministic() {
        let p = phish();
        let s = DataSources::from_page(&p);
        assert_eq!(
            boosted_prominent_terms(&s, 5),
            boosted_prominent_terms(&s, 5)
        );
    }

    #[test]
    fn frequency_ranks_boosted_terms() {
        // A term used in many sources and often must outrank a term that
        // merely crosses the two-source threshold.
        let mut p = phish();
        p.text = "paypal paypal paypal account secure".into();
        p.title = "paypal account".into();
        let s = DataSources::from_page(&p);
        let terms = boosted_prominent_terms(&s, 5);
        assert_eq!(
            terms.first().map(String::as_str),
            Some("paypal"),
            "{terms:?}"
        );
    }

    #[test]
    fn ocr_noise_degrades_gracefully() {
        // Heavy OCR noise loses terms but never invents non-canonical ones.
        let p = phish();
        let s = DataSources::from_page(&p);
        let noisy = kyp_web::ocr::OcrConfig {
            substitution_rate: 0.5,
            drop_rate: 0.3,
            word_loss_rate: 0.3,
            seed: 1,
        };
        let terms = ocr_prominent_terms(&p, &s, &noisy, 5);
        for t in &terms {
            assert!(t.chars().all(|c| c.is_ascii_lowercase()));
            assert!(t.len() >= 3);
        }
    }

    #[test]
    fn visible_sets_membership_counts() {
        let p = phish();
        let s = DataSources::from_page(&p);
        let sets = VisibleSets::from_sources(&s);
        // "paypal" is visible in url (path), title, text, copyright and links.
        let all = sets.all_terms();
        assert!(all.contains("paypal"));
        assert!(sets.url.contains("paypal"));
        assert!(sets.title.contains("paypal"));
        assert!(sets.text.contains("paypal"));
    }

    #[test]
    fn n_limits_output() {
        let p = phish();
        let s = DataSources::from_page(&p);
        assert!(boosted_prominent_terms(&s, 2).len() <= 2);
        assert!(boosted_prominent_terms(&s, 0).is_empty());
    }
}
