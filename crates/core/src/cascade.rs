//! The two-stage serving cascade: a cheap URL-only pre-filter in front of
//! the full scrape-and-classify pipeline.
//!
//! The paper's 212-feature pipeline pays a full scrape for every page,
//! but most of its discriminative power on easy cases comes from URL
//! lexical signals. The cascade exploits that: a small GBM over
//! [`URL_FEATURE_COUNT`] lexical features scores every request first, and
//! only scores inside a configurable uncertainty band
//! ([`CascadeBand`]) fall through to the full pipeline. Scores outside
//! the band are **final** at ~0 virtual scrape cost, tagged
//! [`VerdictStage::UrlOnly`].
//!
//! Determinism: the pre-filter is a pure function of the request URL
//! string and the band — no clock, no cache, no shared state — so
//! cascade decisions are identical at any thread count, and a band of
//! `0,1` (every score is uncertain) reproduces the non-cascade output
//! byte for byte.
//!
//! # Examples
//!
//! ```
//! use kyp_core::{CascadeBand, CascadeClassifier, CascadeDecision, DetectorConfig};
//! use kyp_core::cascade::train_url_stage;
//! use kyp_web::DomainRanker;
//!
//! let ranker = DomainRanker::from_ranked(["bigbank.com"]);
//! let legit: Vec<String> = (0..40).map(|i| format!("https://s{i}.bigbank.com/")).collect();
//! let phish: Vec<String> =
//!     (0..40).map(|i| format!("http://bigbank.com.login{i}.badhost.tk/a@b")).collect();
//! let detector = train_url_stage(&legit, &phish, &ranker, &DetectorConfig::url_stage())
//!     .unwrap();
//! let cascade = CascadeClassifier::new(detector, ranker, CascadeBand::new(0.35, 0.65).unwrap());
//! match cascade.prescreen("https://s99.bigbank.com/") {
//!     CascadeDecision::Final(v) => assert_eq!(v.stage, kyp_core::VerdictStage::UrlOnly),
//!     other => println!("uncertain: {other:?}"),
//! }
//! ```

use crate::{DetectorConfig, PipelineVerdict};
use kyp_ml::Dataset;
use kyp_obs::{VerdictKind, VerdictStage};
use kyp_url::Url;
use kyp_web::DomainRanker;

/// Number of URL-lexical features the cascade's stage-one model consumes:
/// the nine per-URL statistics of the full pipeline's f1 family plus
/// eight cascade-specific lexical signals (IP host, `@`, digits, hyphens,
/// path depth, query length, typosquat distance).
pub const URL_FEATURE_COUNT: usize = 17;

/// How many top-ranked domains the typosquat-distance feature compares
/// against.
const TYPOSQUAT_REFERENCES: usize = 64;

/// Cap on the typosquat edit distance (beyond this the URL is simply
/// "not similar to any popular domain").
const TYPOSQUAT_CAP: usize = 10;

/// A verdict together with the cascade stage that produced it — the
/// provenance-carrying verdict API.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The classification outcome.
    pub verdict: PipelineVerdict,
    /// Which stage decided it.
    pub stage: VerdictStage,
}

impl Verdict {
    /// Wraps a full-pipeline verdict (the stage every pre-cascade path
    /// emits, keeping old outputs byte-identical).
    pub fn full(verdict: PipelineVerdict) -> Self {
        Verdict {
            verdict,
            stage: VerdictStage::Full,
        }
    }

    /// Wraps a URL-only pre-filter verdict.
    pub fn url_only(verdict: PipelineVerdict) -> Self {
        Verdict {
            verdict,
            stage: VerdictStage::UrlOnly,
        }
    }

    /// The confidence score the deciding stage produced.
    pub fn score(&self) -> f64 {
        self.verdict.score()
    }

    /// The verdict label (legitimate / confirmed_legitimate / phish /
    /// suspicious).
    pub fn label(&self) -> VerdictKind {
        self.verdict.kind()
    }
}

/// The cascade's uncertainty band: URL scores in `[lo, hi]` (inclusive)
/// fall through to the full pipeline; scores outside it are final.
///
/// `CascadeBand::FORCED_FULL` (`0,1`) sends everything to the full
/// pipeline — the configuration CI uses to prove byte-identity with the
/// non-cascade path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeBand {
    /// Scores strictly below `lo` finalise as legitimate.
    pub lo: f64,
    /// Scores strictly above `hi` finalise as suspicious.
    pub hi: f64,
}

impl CascadeBand {
    /// The band covering every score: nothing finalises at the URL stage.
    pub const FORCED_FULL: CascadeBand = CascadeBand { lo: 0.0, hi: 1.0 };

    /// A validated band.
    ///
    /// # Errors
    ///
    /// Rejects non-finite bounds, bounds outside `[0, 1]`, and `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, String> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(format!("cascade band bounds must be finite, got {lo},{hi}"));
        }
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) {
            return Err(format!(
                "cascade band bounds must lie in [0, 1], got {lo},{hi}"
            ));
        }
        if lo > hi {
            return Err(format!("cascade band is inverted: lo {lo} > hi {hi}"));
        }
        Ok(CascadeBand { lo, hi })
    }

    /// Parses the CLI form `lo,hi` (e.g. `0.1,0.9`) with hard errors on
    /// anything malformed.
    ///
    /// # Errors
    ///
    /// Rejects missing commas, non-numeric parts, and every
    /// [`Self::new`] violation.
    pub fn parse(s: &str) -> Result<Self, String> {
        let Some((lo_s, hi_s)) = s.split_once(',') else {
            return Err(format!("invalid cascade band {s:?} (want lo,hi)"));
        };
        let lo: f64 = lo_s
            .trim()
            .parse()
            .map_err(|_| format!("invalid cascade band lower bound {lo_s:?}"))?;
        let hi: f64 = hi_s
            .trim()
            .parse()
            .map_err(|_| format!("invalid cascade band upper bound {hi_s:?}"))?;
        Self::new(lo, hi)
    }

    /// `true` when `score` is uncertain (falls through to the full
    /// pipeline).
    pub fn contains(self, score: f64) -> bool {
        self.lo <= score && score <= self.hi
    }
}

impl Default for CascadeBand {
    /// The operating point the frontier sweep recommends: wide enough to
    /// keep the AUC delta tiny, narrow enough to skip most scrapes.
    fn default() -> Self {
        CascadeBand { lo: 0.15, hi: 0.85 }
    }
}

impl std::fmt::Display for CascadeBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{},{}", self.lo, self.hi)
    }
}

/// What the pre-filter concluded for one URL.
#[derive(Debug, Clone, PartialEq)]
pub enum CascadeDecision {
    /// The URL score fell outside the band; this verdict is final and no
    /// scrape happens.
    Final(Verdict),
    /// The score fell inside the band; the full pipeline decides.
    Uncertain {
        /// The stage-one score, kept for frontier accounting.
        url_score: f64,
    },
    /// The URL did not parse; the full pipeline decides (and reports the
    /// fetch failure as usual).
    Unscorable,
}

/// Extracts [`URL_FEATURE_COUNT`] lexical features from a raw URL —
/// stage one's entire input. Pure and allocation-light; never panics.
#[derive(Debug, Clone)]
pub struct UrlFeaturizer {
    ranker: DomainRanker,
    /// Main-level domains of the best-ranked RDNs, in deterministic
    /// `(rank, name)` order — the typosquat references.
    top_mlds: Vec<String>,
}

impl UrlFeaturizer {
    /// Builds a featurizer over a domain-popularity ranking.
    pub fn new(ranker: DomainRanker) -> Self {
        let top_mlds = ranker
            .top_rdns(TYPOSQUAT_REFERENCES)
            .into_iter()
            .map(|(_rank, rdn)| {
                rdn.split_once('.')
                    .map_or_else(|| rdn.clone(), |(mld, _suffix)| mld.to_owned())
            })
            .collect();
        UrlFeaturizer { ranker, top_mlds }
    }

    /// The ranking the featurizer was built over.
    pub fn ranker(&self) -> &DomainRanker {
        &self.ranker
    }

    /// The feature row of a parsed URL.
    pub fn features(&self, url: &Url) -> [f64; URL_FEATURE_COUNT] {
        let mut rdn_buf = String::new();
        let [https, dots, ldc, len, fqdn_len, mld_len, terms, mld_terms, rank] =
            crate::features::single_url_stats(url, &self.ranker, &mut rdn_buf);
        let raw = url.as_str();
        let digits = raw.chars().filter(char::is_ascii_digit).count();
        let digit_ratio = if raw.is_empty() {
            0.0
        } else {
            digits as f64 / raw.len() as f64
        };
        let hyphens: usize = url.fqdn().map_or(0, |f| {
            f.labels().iter().map(|l| l.matches('-').count()).sum()
        });
        let path_depth = url.path().split('/').filter(|s| !s.is_empty()).count();
        let query_len = url.query().map_or(0, str::len);
        let typo = self.typosquat_distance(url);
        [
            https,
            dots,
            ldc,
            len,
            fqdn_len,
            mld_len,
            terms,
            mld_terms,
            rank,
            f64::from(url.host().is_ip()),
            raw.matches('@').count() as f64,
            digits as f64,
            digit_ratio,
            hyphens as f64,
            path_depth as f64,
            query_len as f64,
            typo as f64,
        ]
    }

    /// Parses and featurizes a raw URL string; `None` when it does not
    /// parse.
    pub fn features_of(&self, url: &str) -> Option<[f64; URL_FEATURE_COUNT]> {
        Url::parse(url).ok().map(|u| self.features(&u))
    }

    /// Minimum capped edit distance between the URL's main-level domain
    /// and the top-ranked MLDs. `0` means the MLD *is* a popular domain;
    /// `1`–`2` on an unranked RDN is the typosquat signature; the cap
    /// means "unrelated".
    fn typosquat_distance(&self, url: &Url) -> usize {
        let Some(mld) = url.mld() else {
            return TYPOSQUAT_CAP;
        };
        let mut best = TYPOSQUAT_CAP;
        for reference in &self.top_mlds {
            let d = levenshtein_capped(mld, reference, best);
            if d < best {
                best = d;
                if best == 0 {
                    break;
                }
            }
        }
        best
    }
}

/// Capped Levenshtein distance, written index-free so the panic-free
/// (P02) guarantee of the serving path holds structurally.
fn levenshtein_capped(a: &str, b: &str, cap: usize) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) >= cap {
        return cap;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = Vec::with_capacity(b.len() + 1);
        row.push(i + 1);
        let mut row_min = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let diag = prev.get(j).copied().unwrap_or(usize::MAX);
            let up = prev.get(j + 1).copied().unwrap_or(usize::MAX);
            let left = row.last().copied().unwrap_or(usize::MAX);
            let cost = usize::from(ca != cb);
            let v = diag
                .saturating_add(cost)
                .min(up.saturating_add(1))
                .min(left.saturating_add(1));
            row_min = row_min.min(v);
            row.push(v);
        }
        if row_min >= cap {
            return cap;
        }
        prev = row;
    }
    prev.last().copied().unwrap_or(0).min(cap)
}

/// Stage one of the cascade: URL featurizer + small GBM + band.
///
/// [`Self::prescreen`] is a pure function of the URL string, so cascade
/// decisions are deterministic at any thread count and independent of
/// caches, clocks and request order.
#[derive(Debug, Clone)]
pub struct CascadeClassifier {
    featurizer: UrlFeaturizer,
    detector: crate::PhishDetector,
    band: CascadeBand,
}

impl CascadeClassifier {
    /// Assembles the pre-filter from a trained URL-stage detector, the
    /// ranking it was fitted against, and an uncertainty band.
    pub fn new(detector: crate::PhishDetector, ranker: DomainRanker, band: CascadeBand) -> Self {
        CascadeClassifier {
            featurizer: UrlFeaturizer::new(ranker),
            detector,
            band,
        }
    }

    /// Assembles the pre-filter from a loaded URL-stage snapshot.
    ///
    /// # Errors
    ///
    /// Rejects snapshots not tagged `stage: "url"` — scoring
    /// [`URL_FEATURE_COUNT`] features with a 212-feature model would be
    /// silently wrong.
    pub fn from_snapshot(
        snapshot: crate::ModelSnapshot,
        band: CascadeBand,
    ) -> Result<Self, crate::SnapshotError> {
        snapshot.require_stage(crate::snapshot::STAGE_URL)?;
        Ok(Self::new(snapshot.detector, snapshot.ranker, band))
    }

    /// The configured uncertainty band.
    pub fn band(&self) -> CascadeBand {
        self.band
    }

    /// Replaces the uncertainty band (used by the frontier sweep, which
    /// trains once and sweeps many bands).
    pub fn set_band(&mut self, band: CascadeBand) {
        self.band = band;
    }

    /// The stage-one featurizer.
    pub fn featurizer(&self) -> &UrlFeaturizer {
        &self.featurizer
    }

    /// Scores the raw URL without deciding — the frontier sweep's probe.
    pub fn url_score(&self, url: &str) -> Option<f64> {
        self.featurizer
            .features_of(url)
            .map(|row| self.detector.score(&row))
    }

    /// Screens one request URL.
    ///
    /// Scores below the band finalise as [`PipelineVerdict::Legitimate`];
    /// scores above it finalise as [`PipelineVerdict::Suspicious`] (the
    /// URL stage can flag but never identify a target). Scores inside the
    /// band — and unparseable URLs — fall through.
    pub fn prescreen(&self, url: &str) -> CascadeDecision {
        let Some(score) = self.url_score(url) else {
            return CascadeDecision::Unscorable;
        };
        if self.band.contains(score) {
            CascadeDecision::Uncertain { url_score: score }
        } else if score < self.band.lo {
            CascadeDecision::Final(Verdict::url_only(PipelineVerdict::Legitimate { score }))
        } else {
            CascadeDecision::Final(Verdict::url_only(PipelineVerdict::Suspicious { score }))
        }
    }
}

impl DetectorConfig {
    /// The URL-stage hyper-parameters: a deliberately small ensemble —
    /// stage one must stay ~free next to a virtual scrape.
    pub fn url_stage() -> Self {
        let mut config = DetectorConfig::default();
        config.gbm.n_trees = 40;
        config.gbm.max_depth = 3;
        config
    }
}

/// Trains the URL-stage detector from labeled raw URLs. Unparseable URLs
/// are skipped (they fall through at serve time anyway); the counts of
/// usable rows are returned alongside the detector.
///
/// # Errors
///
/// Fails when either class has no parseable URL — a GBM cannot fit a
/// single-class set.
pub fn train_url_stage(
    legitimate: &[String],
    phishing: &[String],
    ranker: &DomainRanker,
    config: &DetectorConfig,
) -> Result<crate::PhishDetector, String> {
    let featurizer = UrlFeaturizer::new(ranker.clone());
    let mut data = Dataset::with_capacity(URL_FEATURE_COUNT, legitimate.len() + phishing.len());
    let mut counts = [0usize; 2];
    for (urls, label) in [(legitimate, false), (phishing, true)] {
        for url in urls {
            if let Some(row) = featurizer.features_of(url) {
                data.push_row(&row, label);
                counts[usize::from(label)] += 1;
            }
        }
    }
    let [legit_rows, phish_rows] = counts;
    if legit_rows == 0 || phish_rows == 0 {
        return Err(format!(
            "cannot train the URL stage: {legit_rows} legitimate and {phish_rows} phishing \
             parseable URLs (need both classes)"
        ));
    }
    Ok(crate::PhishDetector::train(&data, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranker() -> DomainRanker {
        DomainRanker::from_ranked(["bigbank.com", "shopmart.co.uk", "news.fr"])
    }

    fn urls(pattern: &str, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| pattern.replace("{i}", &i.to_string()))
            .collect()
    }

    fn trained() -> CascadeClassifier {
        let legit = urls("https://s{i}.bigbank.com/account", 60);
        let phish = urls(
            "http://bigbank.com.verify{i}.badhost.tk/login.php?id={i}",
            60,
        );
        let detector =
            train_url_stage(&legit, &phish, &ranker(), &DetectorConfig::url_stage()).unwrap();
        CascadeClassifier::new(detector, ranker(), CascadeBand::new(0.3, 0.7).unwrap())
    }

    #[test]
    fn feature_row_shape_and_signals() {
        let f = UrlFeaturizer::new(ranker());
        let row = f
            .features_of("http://bigbank.com@10.0.0.1/a/b/c?x=1")
            .unwrap();
        assert_eq!(row.len(), URL_FEATURE_COUNT);
        assert_eq!(row[9], 1.0, "IP host");
        assert_eq!(row[10], 1.0, "@ count");
        assert_eq!(row[14], 3.0, "path depth");
        assert_eq!(row[15], 3.0, "query length");
    }

    #[test]
    fn typosquat_distance_separates_brands_from_noise() {
        let f = UrlFeaturizer::new(ranker());
        let dist = |u: &str| {
            let parsed = Url::parse(u).unwrap();
            f.typosquat_distance(&parsed)
        };
        assert_eq!(dist("https://www.bigbank.com/"), 0, "the brand itself");
        assert_eq!(dist("https://www.bigbanc.com/"), 1, "one-edit typosquat");
        assert_eq!(
            dist("http://zzqqxxyy-unrelated.tk/"),
            TYPOSQUAT_CAP,
            "unrelated domains hit the cap"
        );
        assert_eq!(dist("http://10.0.0.1/"), TYPOSQUAT_CAP, "no mld at all");
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein_capped("kitten", "sitting", 10), 3);
        assert_eq!(levenshtein_capped("", "abc", 10), 3);
        assert_eq!(levenshtein_capped("same", "same", 10), 0);
        assert_eq!(levenshtein_capped("short", "muchlongerstring", 4), 4);
    }

    #[test]
    fn band_validation_hard_errors() {
        assert!(CascadeBand::new(0.2, 0.8).is_ok());
        assert!(CascadeBand::new(0.8, 0.2).is_err());
        assert!(CascadeBand::new(-0.1, 0.5).is_err());
        assert!(CascadeBand::new(0.0, 1.5).is_err());
        assert!(CascadeBand::new(f64::NAN, 0.5).is_err());
        assert_eq!(
            CascadeBand::parse("0.1,0.9").unwrap(),
            CascadeBand::new(0.1, 0.9).unwrap()
        );
        assert_eq!(CascadeBand::parse(" 0.1 , 0.9 ").unwrap().hi, 0.9);
        assert!(CascadeBand::parse("0.1").is_err());
        assert!(CascadeBand::parse("a,b").is_err());
        assert!(CascadeBand::parse("0.9,0.1").is_err());
        assert_eq!(CascadeBand::FORCED_FULL.to_string(), "0,1");
    }

    #[test]
    fn forced_full_band_never_finalises() {
        let mut cascade = trained();
        cascade.set_band(CascadeBand::FORCED_FULL);
        for url in urls("https://s{i}.bigbank.com/account", 20)
            .iter()
            .chain(urls("http://bigbank.com.verify{i}.badhost.tk/login.php", 20).iter())
        {
            match cascade.prescreen(url) {
                CascadeDecision::Uncertain { .. } => {}
                other => panic!("forced-full band finalised {url}: {other:?}"),
            }
        }
    }

    #[test]
    fn confident_scores_finalise_with_url_only_stage() {
        let cascade = trained();
        let mut finals = 0;
        for url in urls("https://s{i}.bigbank.com/account", 20) {
            if let CascadeDecision::Final(v) = cascade.prescreen(&url) {
                finals += 1;
                assert_eq!(v.stage, VerdictStage::UrlOnly);
                assert_eq!(v.label(), VerdictKind::Legitimate);
                assert!(v.score() < cascade.band().lo);
            }
        }
        for url in urls(
            "http://bigbank.com.verify{i}.badhost.tk/login.php?id={i}",
            20,
        ) {
            if let CascadeDecision::Final(v) = cascade.prescreen(&url) {
                finals += 1;
                assert_eq!(v.label(), VerdictKind::Suspicious);
                assert!(v.score() > cascade.band().hi);
            }
        }
        assert!(
            finals > 20,
            "the trained stage should be confident: {finals}/40"
        );
    }

    #[test]
    fn unparseable_urls_fall_through() {
        let cascade = trained();
        assert_eq!(cascade.prescreen("http://"), CascadeDecision::Unscorable);
        assert_eq!(cascade.prescreen(""), CascadeDecision::Unscorable);
    }

    #[test]
    fn prescreen_is_a_pure_function_of_the_url() {
        let cascade = trained();
        let url = "http://bigbank.com.verify3.badhost.tk/login.php?id=3";
        let first = cascade.prescreen(url);
        for _ in 0..3 {
            assert_eq!(cascade.prescreen(url), first);
        }
    }

    #[test]
    fn training_rejects_single_class_inputs() {
        let legit = urls("https://s{i}.bigbank.com/", 10);
        let err = train_url_stage(&legit, &[], &ranker(), &DetectorConfig::url_stage());
        assert!(err.is_err());
        let unparseable = vec!["http://".to_owned()];
        let err = train_url_stage(
            &legit,
            &unparseable,
            &ranker(),
            &DetectorConfig::url_stage(),
        );
        assert!(err.unwrap_err().contains("0 phishing"));
    }

    #[test]
    fn verdict_wrapper_accessors() {
        let v = Verdict::full(PipelineVerdict::Legitimate { score: 0.12 });
        assert_eq!(v.stage, VerdictStage::Full);
        assert_eq!(v.score(), 0.12);
        assert_eq!(v.label(), VerdictKind::Legitimate);
        let u = Verdict::url_only(PipelineVerdict::Suspicious { score: 0.93 });
        assert_eq!(u.stage, VerdictStage::UrlOnly);
        assert_eq!(u.label(), VerdictKind::Suspicious);
    }
}
