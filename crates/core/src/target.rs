//! Target identification (Section V-B): decide whether a suspected page
//! is legitimate, and if not, which brand it impersonates.
//!
//! The five-step process, implemented verbatim:
//!
//! 1. Extract *boosted prominent terms*; collect mlds from the page's URLs
//!    and links; for every collected mld that can be *composed* from the
//!    keyterms (separated by dashes or digits), query the search engine
//!    with the guessed domain. If the suspected RDN comes back → the page
//!    is legitimate.
//! 2. Query the engine with the *prominent terms*. Suspected RDN in the
//!    results → legitimate. Result mlds that appear in a controlled data
//!    source become candidate targets → step 5.
//! 3. Same as 2 with *boosted prominent terms*.
//! 4. Same as 2 with *OCR prominent terms* (slow path, image-based pages).
//! 5. Rank candidates by how often they appear across the page's data
//!    sources; return the top 1–3.

use crate::keyterms::{self, DEFAULT_KEYTERM_COUNT};
use crate::DataSources;
use kyp_search::{SearchEngine, SearchHit};
use kyp_text::extract_terms;
use kyp_url::Url;
use kyp_web::ocr::OcrConfig;
use kyp_web::VisitedPage;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of the target identifier.
#[derive(Debug, Clone)]
pub struct TargetIdentifierConfig {
    /// Keyterm list length (the paper's N = 5).
    pub keyterm_count: usize,
    /// Number of search results inspected per query.
    pub search_results: usize,
    /// Maximum candidates returned (the paper evaluates top-1/2/3).
    pub max_candidates: usize,
    /// OCR noise profile for step 4.
    pub ocr: OcrConfig,
}

impl Default for TargetIdentifierConfig {
    fn default() -> Self {
        TargetIdentifierConfig {
            keyterm_count: DEFAULT_KEYTERM_COUNT,
            search_results: 10,
            max_candidates: 3,
            ocr: OcrConfig::default(),
        }
    }
}

/// One candidate target brand, ranked by appearances in the page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetCandidate {
    /// The brand's main level domain, e.g. `paypal`.
    pub mld: String,
    /// The brand's registered domain, e.g. `paypal.com`.
    pub rdn: String,
    /// How many times the mld appears across the page's data sources.
    pub appearances: usize,
}

/// Outcome of target identification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetVerdict {
    /// The page's own domain came back from a search — deemed legitimate.
    Legitimate {
        /// Which step (1–4) confirmed legitimacy.
        step: u8,
    },
    /// Candidate targets found: the page impersonates `candidates[0]`
    /// (best first).
    Phish {
        /// Ranked candidate targets (at most `max_candidates`).
        candidates: Vec<TargetCandidate>,
    },
    /// No legitimacy confirmation and no target found (the paper's
    /// "suspicious" outcome in Section VI-D).
    Unknown,
}

impl TargetVerdict {
    /// The best candidate mld, if the verdict is `Phish`.
    pub fn top_target(&self) -> Option<&str> {
        match self {
            TargetVerdict::Phish { candidates } => candidates.first().map(|c| c.mld.as_str()),
            _ => None,
        }
    }

    /// `true` when `mld` is among the top-`k` candidates.
    pub fn has_target_in_top(&self, mld: &str, k: usize) -> bool {
        match self {
            TargetVerdict::Phish { candidates } => candidates.iter().take(k).any(|c| c.mld == mld),
            _ => false,
        }
    }
}

/// The target identification system of Section V.
///
/// Holds a handle to the search-engine substrate (shared with other
/// components) and the process configuration.
///
/// # Examples
///
/// ```
/// use kyp_core::{TargetIdentifier, TargetVerdict};
/// use kyp_search::SearchEngine;
/// use kyp_web::{Browser, Page, WebWorld};
/// use std::sync::Arc;
///
/// let mut engine = SearchEngine::new();
/// engine.index_page("mybank.com", "mybank", "mybank online banking welcome mybank");
///
/// let mut world = WebWorld::new();
/// world.add_page("https://mybank.com/", Page::new(
///     "<title>MyBank</title><body>Welcome to mybank banking <a href=\"/login\">mybank login</a></body>"));
/// let visit = Browser::new(&world).visit("https://mybank.com/")?;
///
/// let ident = TargetIdentifier::new(Arc::new(engine));
/// assert!(matches!(ident.identify(&visit), TargetVerdict::Legitimate { .. }));
/// # Ok::<(), kyp_web::VisitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TargetIdentifier {
    engine: Arc<SearchEngine>,
    config: TargetIdentifierConfig,
}

impl TargetIdentifier {
    /// Creates an identifier with default configuration.
    pub fn new(engine: Arc<SearchEngine>) -> Self {
        Self::with_config(engine, TargetIdentifierConfig::default())
    }

    /// Creates an identifier with explicit configuration.
    pub fn with_config(engine: Arc<SearchEngine>, config: TargetIdentifierConfig) -> Self {
        TargetIdentifier { engine, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TargetIdentifierConfig {
        &self.config
    }

    /// Runs the five-step identification process on a page.
    pub fn identify(&self, page: &VisitedPage) -> TargetVerdict {
        let sources = DataSources::from_page(page);
        self.identify_with_sources(page, &sources)
    }

    /// Like [`identify`](Self::identify) but reuses precomputed term
    /// distributions.
    pub fn identify_with_sources(
        &self,
        page: &VisitedPage,
        sources: &DataSources,
    ) -> TargetVerdict {
        self.identify_with_sources_observed(page, sources, &mut kyp_obs::NoopObserver)
    }

    /// Like [`identify_with_sources`](Self::identify_with_sources),
    /// reporting each identification step's outcome to `obs`. The
    /// observer only watches; the verdict is identical to the unobserved
    /// call.
    pub fn identify_with_sources_observed(
        &self,
        page: &VisitedPage,
        sources: &DataSources,
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> TargetVerdict {
        use kyp_obs::TargetStepOutcome;
        let n = self.config.keyterm_count;
        let k = self.config.search_results;
        let suspected = suspected_rdns(page);
        let controlled_terms = controlled_term_set(sources);

        // ---- Step 1: guess the target FQDN from boosted prominent terms.
        let boosted = keyterms::boosted_prominent_terms(sources, n);
        let collected = collect_mlds(page);
        for (mld, rdn) in &collected {
            if !composable(mld, &boosted) {
                continue;
            }
            let hits = self.engine.query_domain(rdn, k);
            if hits.iter().any(|h| suspected.contains(&h.rdn)) {
                obs.target_step(1, &TargetStepOutcome::ConfirmedLegitimate);
                return TargetVerdict::Legitimate { step: 1 };
            }
        }
        obs.target_step(1, &TargetStepOutcome::Continue);

        // ---- Steps 2-4: keyterm searches. Each step reports its outcome
        // before step 5 (candidate ranking) reports the final cut.
        let prominent = keyterms::prominent_terms(sources, n);
        match self.search_step(&prominent, &suspected, &controlled_terms, 2) {
            StepOutcome::Legitimate(step) => {
                obs.target_step(step, &TargetStepOutcome::ConfirmedLegitimate);
                return TargetVerdict::Legitimate { step };
            }
            StepOutcome::Candidates(c) => {
                obs.target_step(2, &TargetStepOutcome::Candidates { count: c.len() });
                return self.step5_observed(page, sources, c, obs);
            }
            StepOutcome::Continue => obs.target_step(2, &TargetStepOutcome::Continue),
        }
        match self.search_step(&boosted, &suspected, &controlled_terms, 3) {
            StepOutcome::Legitimate(step) => {
                obs.target_step(step, &TargetStepOutcome::ConfirmedLegitimate);
                return TargetVerdict::Legitimate { step };
            }
            StepOutcome::Candidates(c) => {
                obs.target_step(3, &TargetStepOutcome::Candidates { count: c.len() });
                return self.step5_observed(page, sources, c, obs);
            }
            StepOutcome::Continue => obs.target_step(3, &TargetStepOutcome::Continue),
        }
        let ocr_terms = keyterms::ocr_prominent_terms(page, sources, &self.config.ocr, n);
        match self.search_step(&ocr_terms, &suspected, &controlled_terms, 4) {
            StepOutcome::Legitimate(step) => {
                obs.target_step(step, &TargetStepOutcome::ConfirmedLegitimate);
                return TargetVerdict::Legitimate { step };
            }
            StepOutcome::Candidates(c) => {
                obs.target_step(4, &TargetStepOutcome::Candidates { count: c.len() });
                return self.step5_observed(page, sources, c, obs);
            }
            StepOutcome::Continue => obs.target_step(4, &TargetStepOutcome::Continue),
        }

        TargetVerdict::Unknown
    }

    fn search_step(
        &self,
        terms: &[String],
        suspected: &BTreeSet<String>,
        controlled_terms: &BTreeSet<String>,
        step: u8,
    ) -> StepOutcome {
        if terms.is_empty() {
            return StepOutcome::Continue;
        }
        let hits = self.engine.query(terms, self.config.search_results);
        if hits.iter().any(|h| suspected.contains(&h.rdn)) {
            return StepOutcome::Legitimate(step);
        }
        let candidates: Vec<SearchHit> = hits
            .into_iter()
            .filter(|h| mld_appears_in(&h.mld, controlled_terms))
            .collect();
        if candidates.is_empty() {
            StepOutcome::Continue
        } else {
            StepOutcome::Candidates(candidates)
        }
    }

    /// Step 5: rank candidate mlds by appearances across the page,
    /// reporting the final (capped) candidate count.
    fn step5_observed(
        &self,
        page: &VisitedPage,
        sources: &DataSources,
        hits: Vec<SearchHit>,
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> TargetVerdict {
        let verdict = self.step5(page, sources, hits);
        if let TargetVerdict::Phish { candidates } = &verdict {
            obs.target_step(
                5,
                &kyp_obs::TargetStepOutcome::Candidates {
                    count: candidates.len(),
                },
            );
        }
        verdict
    }

    /// Step 5: rank candidate mlds by appearances across the page.
    fn step5(
        &self,
        page: &VisitedPage,
        sources: &DataSources,
        hits: Vec<SearchHit>,
    ) -> TargetVerdict {
        let mut candidates: Vec<TargetCandidate> = Vec::new();
        for hit in hits {
            if candidates.iter().any(|c| c.mld == hit.mld) {
                continue;
            }
            let appearances = count_appearances(&hit.mld, page, sources);
            candidates.push(TargetCandidate {
                mld: hit.mld,
                rdn: hit.rdn,
                appearances,
            });
        }
        candidates.sort_by(|a, b| {
            b.appearances
                .cmp(&a.appearances)
                .then_with(|| a.mld.cmp(&b.mld))
        });
        candidates.truncate(self.config.max_candidates);
        TargetVerdict::Phish { candidates }
    }
}

enum StepOutcome {
    Legitimate(u8),
    Candidates(Vec<SearchHit>),
    Continue,
}

/// RDNs of the suspected page itself (starting and landing URLs).
fn suspected_rdns(page: &VisitedPage) -> BTreeSet<String> {
    [&page.starting_url, &page.landing_url]
        .into_iter()
        .filter_map(Url::rdn)
        .collect()
}

/// mld/RDN pairs collected from the page's URLs and links (paper Step 1).
fn collect_mlds(page: &VisitedPage) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    let mut push = |url: &Url| {
        if let (Some(mld), Some(rdn)) = (url.mld(), url.rdn()) {
            if !out.iter().any(|(_, r)| *r == rdn) {
                out.push((mld.to_owned(), rdn));
            }
        }
    };
    push(&page.starting_url);
    push(&page.landing_url);
    for u in page.logged_links.iter().chain(&page.href_links) {
        push(u);
    }
    out
}

/// Terms of every *controlled* data source (Section III-A: everything but
/// the external links).
fn controlled_term_set(sources: &DataSources) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for d in [
        &sources.text,
        &sources.title,
        &sources.copyright,
        &sources.start,
        &sources.land,
        &sources.startrdn,
        &sources.landrdn,
        &sources.intlog,
        &sources.intlink,
        &sources.intrdn,
    ] {
        set.extend(d.terms().map(str::to_owned));
    }
    set
}

/// Whether a candidate mld "appears in" a term set: either verbatim as a
/// term, or composable from the set's terms.
fn mld_appears_in(mld: &str, terms: &BTreeSet<String>) -> bool {
    let canon = crate::features::canonical_mld(mld);
    if canon.is_empty() {
        return false;
    }
    if terms.contains(&canon) {
        return true;
    }
    let term_vec: Vec<String> = terms
        .iter()
        .filter(|t| canon.contains(t.as_str()))
        .cloned()
        .collect();
    composable(mld, &term_vec)
}

/// Whether `mld` can be composed from `keyterms`, possibly separated by a
/// dash or a string of digits (paper Step 1). Short filler runs of at most
/// two letters (e.g. the "of" in `bankofamerica`) are tolerated, capped at
/// three filler letters overall, and at least one keyterm must be used.
pub(crate) fn composable(mld: &str, keyterms: &[String]) -> bool {
    let mld = mld.to_ascii_lowercase();
    if keyterms.is_empty() || mld.is_empty() {
        return false;
    }
    fn rec(
        s: &[u8],
        pos: usize,
        filler_left: usize,
        used_keyterm: bool,
        keyterms: &[String],
    ) -> bool {
        let Some(&byte) = s.get(pos) else {
            // Consumed the whole mld.
            return used_keyterm;
        };
        let c = byte as char;
        // Separator characters are free.
        if c == '-' || c.is_ascii_digit() {
            return rec(s, pos + 1, filler_left, used_keyterm, keyterms);
        }
        // Try each keyterm as a prefix.
        let rest = s.get(pos..).unwrap_or_default();
        for k in keyterms {
            let kb = k.as_bytes();
            if rest.starts_with(kb) && rec(s, pos + kb.len(), filler_left, true, keyterms) {
                return true;
            }
        }
        // Tolerate a short filler letter.
        if filler_left > 0 && c.is_ascii_alphabetic() {
            return rec(s, pos + 1, filler_left - 1, used_keyterm, keyterms);
        }
        false
    }
    rec(mld.as_bytes(), 0, 3, false, keyterms)
}

/// How many times a candidate mld appears across the page's data sources:
/// term occurrences in every distribution plus links whose RDN contains it.
fn count_appearances(mld: &str, page: &VisitedPage, sources: &DataSources) -> usize {
    let canon = crate::features::canonical_mld(mld);
    if canon.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    for d in [
        &sources.text,
        &sources.title,
        &sources.copyright,
        &sources.start,
        &sources.land,
        &sources.startrdn,
        &sources.landrdn,
        &sources.intlog,
        &sources.intlink,
        &sources.intrdn,
        &sources.extrdn,
        &sources.extlog,
        &sources.extlink,
    ] {
        count += d.count(&canon) as usize;
    }
    for u in page.logged_links.iter().chain(&page.href_links) {
        if let Some(rdn) = u.rdn() {
            let rdn_terms = extract_terms(&rdn).join("");
            if rdn_terms.contains(&canon) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_pages::{legit, phish};

    fn engine() -> Arc<SearchEngine> {
        let mut e = SearchEngine::new();
        e.index_page(
            "paypal.com",
            "paypal",
            "paypal account login send money online payments paypal secure",
        );
        e.index_page(
            "mybank.com",
            "mybank",
            "mybank online banking welcome accounts mortgages mybank",
        );
        e.index_page("weather.com", "weather", "weather forecast sun rain");
        Arc::new(e)
    }

    #[test]
    fn phish_target_identified() {
        let ident = TargetIdentifier::new(engine());
        let verdict = ident.identify(&phish());
        assert_eq!(verdict.top_target(), Some("paypal"));
        assert!(verdict.has_target_in_top("paypal", 1));
    }

    #[test]
    fn legit_site_confirmed() {
        let ident = TargetIdentifier::new(engine());
        let verdict = ident.identify(&legit());
        assert!(
            matches!(verdict, TargetVerdict::Legitimate { .. }),
            "got {verdict:?}"
        );
    }

    #[test]
    fn hintless_page_is_unknown() {
        // A credential-harvesting page with no brand hint anywhere
        // (the paper's 17 "unknown target" pages).
        let mut p = phish();
        p.text = "enter your details below to continue".into();
        p.title = "Account verification".into();
        p.copyright = None;
        p.screenshot_text = p.text.clone();
        p.href_links.clear();
        p.logged_links.clear();
        p.starting_url = crate::features::test_pages::url("http://xgh-3321.tk/v/f?x=1");
        p.landing_url = p.starting_url.clone();
        p.redirection_chain = vec![p.starting_url.clone()];
        let ident = TargetIdentifier::new(engine());
        assert_eq!(ident.identify(&p), TargetVerdict::Unknown);
    }

    #[test]
    fn composable_paper_examples() {
        let kt = |s: &[&str]| {
            s.iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
        };
        // bankofamerica from {bank, america}: "of" is filler.
        assert!(composable("bankofamerica", &kt(&["bank", "america"])));
        // Dash and digit separators.
        assert!(composable("pay-pal2secure", &kt(&["pay", "pal", "secure"])));
        // Not composable from unrelated terms.
        assert!(!composable("bankofamerica", &kt(&["weather", "forecast"])));
        // Requires at least one keyterm.
        assert!(!composable("ab", &kt(&["weather"])));
        assert!(!composable("bank", &[]));
    }

    #[test]
    fn composable_rejects_long_fillers() {
        let kt = vec!["bank".to_string()];
        assert!(!composable("bankinternational", &kt));
        assert!(composable("bank-24", &kt));
    }

    #[test]
    fn image_based_phish_found_via_ocr() {
        let mut p = phish();
        // Strip HTML text/title so steps 2-3 have nothing to work with;
        // brand only on the screenshot and in external links.
        p.text = String::new();
        p.title = String::new();
        p.copyright = None;
        p.screenshot_text = "PayPal sign in paypal secure payments paypal".into();
        let cfg = TargetIdentifierConfig {
            ocr: kyp_web::ocr::OcrConfig {
                substitution_rate: 0.0,
                drop_rate: 0.0,
                word_loss_rate: 0.0,
                seed: 0,
            },
            ..TargetIdentifierConfig::default()
        };
        let ident = TargetIdentifier::with_config(engine(), cfg);
        let verdict = ident.identify(&p);
        assert_eq!(verdict.top_target(), Some("paypal"), "got {verdict:?}");
    }

    #[test]
    fn candidates_capped_at_max() {
        let ident = TargetIdentifier::new(engine());
        if let TargetVerdict::Phish { candidates } = ident.identify(&phish()) {
            assert!(candidates.len() <= 3);
            // Ranked: appearances non-increasing.
            for w in candidates.windows(2) {
                assert!(w[0].appearances >= w[1].appearances);
            }
        } else {
            panic!("expected phish verdict");
        }
    }

    #[test]
    fn verdict_helpers() {
        let v = TargetVerdict::Phish {
            candidates: vec![
                TargetCandidate {
                    mld: "paypal".into(),
                    rdn: "paypal.com".into(),
                    appearances: 9,
                },
                TargetCandidate {
                    mld: "mybank".into(),
                    rdn: "mybank.com".into(),
                    appearances: 2,
                },
            ],
        };
        assert_eq!(v.top_target(), Some("paypal"));
        assert!(v.has_target_in_top("mybank", 2));
        assert!(!v.has_target_in_top("mybank", 1));
        assert_eq!(TargetVerdict::Unknown.top_target(), None);
    }
}
