//! The phishing detection classifier (Section IV-C): Gradient Boosting
//! over the 212-feature vector, with the paper's discrimination threshold
//! of 0.7 favouring the legitimate class.

use kyp_ml::{Dataset, FlatModel, GbmParams, GradientBoosting};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Configuration of [`PhishDetector`].
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Gradient boosting hyper-parameters.
    pub gbm: GbmParams,
    /// Discrimination threshold: confidences in `[threshold, 1]` predict
    /// phishing (the paper sets 0.7).
    pub threshold: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            gbm: GbmParams::default(),
            threshold: 0.7,
        }
    }
}

/// A trained phishing detector.
///
/// # Examples
///
/// ```
/// use kyp_core::{DetectorConfig, PhishDetector};
/// use kyp_ml::Dataset;
///
/// let mut train = Dataset::new(2);
/// for i in 0..300 {
///     let v = f64::from(i % 3 == 0);
///     train.push_row(&[v, 1.0 - v], v > 0.5);
/// }
/// let detector = PhishDetector::train(&train, &DetectorConfig::default());
/// assert!(detector.is_phish(&[1.0, 0.0]));
/// assert!(!detector.is_phish(&[0.0, 1.0]));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhishDetector {
    model: GradientBoosting,
    threshold: f64,
    /// Flat inference tables compiled lazily from `model`; never
    /// serialized (the boxed ensemble is the interchange form) and
    /// bit-identical to it, so cloning or round-tripping a detector
    /// only resets this cache.
    #[serde(skip)]
    compiled: OnceLock<FlatModel>,
}

impl PhishDetector {
    /// Trains a detector on a labeled feature dataset (`true` = phishing).
    ///
    /// # Panics
    ///
    /// Panics when the dataset is empty or single-class (see
    /// [`GradientBoosting::fit`]).
    pub fn train(data: &Dataset, config: &DetectorConfig) -> Self {
        PhishDetector {
            model: GradientBoosting::fit(data, &config.gbm),
            threshold: config.threshold,
            compiled: OnceLock::new(),
        }
    }

    /// The compiled flat-inference twin of the model, built on first use.
    fn flat(&self) -> &FlatModel {
        self.compiled.get_or_init(|| self.model.compile())
    }

    /// Eagerly compiles the flat inference tables (normally built lazily
    /// on the first score). Call after loading a snapshot so the first
    /// request does not pay the compilation cost.
    pub fn warm(&self) {
        let _ = self.flat();
    }

    /// The phishing confidence of a feature vector, in `[0, 1]`.
    ///
    /// Scored through the compiled [`FlatModel`]; bit-identical to the
    /// boxed ensemble walk (see [`Self::score_reference`]).
    pub fn score(&self, features: &[f64]) -> f64 {
        self.flat().predict_proba(features)
    }

    /// The phishing confidence computed through the original boxed-enum
    /// tree walk. Reference implementation for equivalence tests and
    /// before/after benchmarks; production paths use [`Self::score`].
    pub fn score_reference(&self, features: &[f64]) -> f64 {
        self.model.predict_proba(features)
    }

    /// Confidence scores for a batch of feature vectors, walked
    /// batch-major through the compiled model. Element `i` is
    /// bit-identical to `score(&rows[i])`.
    pub fn score_batch<R: AsRef<[f64]>>(&self, rows: &[R]) -> Vec<f64> {
        self.flat().predict_batch(rows)
    }

    /// Class prediction at the configured threshold.
    pub fn is_phish(&self, features: &[f64]) -> bool {
        self.score(features) >= self.threshold
    }

    /// Confidence scores for every row of a dataset.
    pub fn score_dataset(&self, data: &Dataset) -> Vec<f64> {
        self.model.predict_dataset(data)
    }

    /// The discrimination threshold in use.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Overrides the discrimination threshold (used for ROC sweeps).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// Structural validation of the wrapped ensemble; see
    /// [`GradientBoosting::validate`]. Called on snapshot load, before
    /// the unchecked inference walks ever see the model.
    ///
    /// # Errors
    ///
    /// Describes the first malformed tree.
    pub fn validate(&self) -> Result<(), String> {
        self.model.validate()
    }

    /// The underlying boosting model (feature importances, tree count).
    pub fn model(&self) -> &GradientBoosting {
        &self.model
    }

    /// Reassembles a detector from a deserialised model and threshold
    /// (model persistence for deployment, e.g. shipping with an add-on).
    pub fn from_parts(model: GradientBoosting, threshold: f64) -> Self {
        PhishDetector {
            model,
            threshold,
            compiled: OnceLock::new(),
        }
    }

    /// Calibrates the discrimination threshold on held-out data: picks the
    /// lowest threshold whose false-positive rate stays within `max_fpr`
    /// (maximising recall at the allowed FP budget), sets it, and returns
    /// it. This is the operational tuning the paper performs with its ROC
    /// analysis before settling on 0.7.
    ///
    /// # Panics
    ///
    /// Panics when `validation` is empty.
    pub fn calibrate_threshold(&mut self, validation: &Dataset, max_fpr: f64) -> f64 {
        assert!(!validation.is_empty(), "validation set must not be empty");
        let scores = self.score_dataset(validation);
        let labels = validation.labels();
        // Candidate thresholds: every distinct legitimate score (the FPR
        // only changes there), descending, plus 1.0.
        let mut candidates: Vec<f64> = scores
            .iter()
            .zip(labels)
            .filter(|(_, &y)| !y)
            .map(|(s, _)| *s)
            .collect();
        candidates.push(1.0);
        candidates.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        candidates.dedup();

        let mut best = 1.0;
        for t in candidates {
            let c = kyp_ml::metrics::Confusion::at_threshold(&scores, labels, t);
            if c.fpr() <= max_fpr {
                best = t;
            } else {
                break;
            }
        }
        self.threshold = best;
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_train() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..400 {
            let phishy = i % 2 == 0;
            let x = if phishy { 0.9 } else { 0.1 };
            d.push_row(&[x, f64::from(i % 7)], phishy);
        }
        d
    }

    #[test]
    fn train_and_classify() {
        let det = PhishDetector::train(&toy_train(), &DetectorConfig::default());
        assert!(det.is_phish(&[0.9, 3.0]));
        assert!(!det.is_phish(&[0.1, 3.0]));
        assert_eq!(det.threshold(), 0.7);
    }

    #[test]
    fn threshold_shifts_decisions() {
        let mut det = PhishDetector::train(&toy_train(), &DetectorConfig::default());
        let score = det.score(&[0.9, 3.0]);
        det.set_threshold(score + 1e-6);
        assert!(!det.is_phish(&[0.9, 3.0]));
        det.set_threshold(score - 1e-6);
        assert!(det.is_phish(&[0.9, 3.0]));
    }

    #[test]
    fn score_dataset_matches() {
        let data = toy_train();
        let det = PhishDetector::train(&data, &DetectorConfig::default());
        let scores = det.score_dataset(&data);
        assert_eq!(scores.len(), data.len());
        assert_eq!(scores[0], det.score(data.row(0)));
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let det = PhishDetector::train(&toy_train(), &DetectorConfig::default());
        let json = serde_json::to_string(&det).unwrap();
        let back: PhishDetector = serde_json::from_str(&json).unwrap();
        let probe = [0.42, 5.0];
        assert_eq!(det.score(&probe), back.score(&probe));
        assert_eq!(det.threshold(), back.threshold());
    }

    #[test]
    fn calibrate_threshold_respects_fpr_budget() {
        let data = toy_train();
        let mut det = PhishDetector::train(&data, &DetectorConfig::default());
        // Build a noisy validation set.
        let mut valid = Dataset::new(2);
        for i in 0..300 {
            let phishy = i % 2 == 0;
            let x = if phishy { 0.8 } else { 0.2 } + (i % 10) as f64 * 0.02;
            valid.push_row(&[x, 1.0], phishy);
        }
        let t = det.calibrate_threshold(&valid, 0.01);
        assert_eq!(det.threshold(), t);
        let scores = det.score_dataset(&valid);
        let c = kyp_ml::metrics::Confusion::at_threshold(&scores, valid.labels(), t);
        assert!(c.fpr() <= 0.01, "fpr {} at threshold {t}", c.fpr());
        // Tighter budget never lowers the threshold.
        let tighter = det.calibrate_threshold(&valid, 0.001);
        assert!(tighter >= t);
    }

    #[test]
    #[should_panic(expected = "validation set must not be empty")]
    fn calibrate_requires_data() {
        let mut det = PhishDetector::train(&toy_train(), &DetectorConfig::default());
        det.calibrate_threshold(&Dataset::new(2), 0.01);
    }

    #[test]
    fn flat_path_matches_reference_bits() {
        let det = PhishDetector::train(&toy_train(), &DetectorConfig::default());
        let probes = [[0.9, 3.0], [0.1, 3.0], [0.42, 5.0], [-2.0, 100.0]];
        for p in &probes {
            assert_eq!(det.score(p).to_bits(), det.score_reference(p).to_bits());
        }
        let batch = det.score_batch(&probes);
        for (p, got) in probes.iter().zip(&batch) {
            assert_eq!(got.to_bits(), det.score_reference(p).to_bits());
        }
    }

    #[test]
    fn warm_is_idempotent() {
        let det = PhishDetector::train(&toy_train(), &DetectorConfig::default());
        det.warm();
        det.warm();
        assert_eq!(
            det.score(&[0.9, 3.0]).to_bits(),
            det.score_reference(&[0.9, 3.0]).to_bits()
        );
    }

    #[test]
    fn model_accessible() {
        let det = PhishDetector::train(&toy_train(), &DetectorConfig::default());
        assert!(det.model().n_trees() > 0);
    }
}
