//! The combined system of Section III-C: the phishing detector tentatively
//! flags a page; flagged pages go through target identification, which
//! either names the target (confirming the phish), confirms the page as
//! legitimate (removing a false positive), or stays undecided
//! ("suspicious"). Section VI-D shows this pipeline cutting the false
//! positive rate from 0.0005 to 0.0001 on the English test set.

use crate::{
    DataSources, FeatureExtractor, PhishDetector, TargetCandidate, TargetIdentifier, TargetVerdict,
};
use kyp_web::VisitedPage;

/// Outcome of the full pipeline for one page.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineVerdict {
    /// The detector's confidence was below the threshold.
    Legitimate {
        /// Detector confidence.
        score: f64,
    },
    /// The detector flagged the page but target identification confirmed
    /// it as legitimate — a removed false positive.
    ConfirmedLegitimate {
        /// Detector confidence.
        score: f64,
        /// The identification step (1–4) that confirmed legitimacy.
        step: u8,
    },
    /// Flagged and a target was identified.
    Phish {
        /// Detector confidence.
        score: f64,
        /// Ranked candidate targets.
        candidates: Vec<TargetCandidate>,
    },
    /// Flagged, but no target found and no legitimacy confirmation.
    Suspicious {
        /// Detector confidence.
        score: f64,
    },
}

impl PipelineVerdict {
    /// `true` for the `Phish` and `Suspicious` outcomes — pages a deployed
    /// system would block or warn about.
    pub fn is_alarming(&self) -> bool {
        matches!(
            self,
            PipelineVerdict::Phish { .. } | PipelineVerdict::Suspicious { .. }
        )
    }
}

/// Detector + target identifier, wired as in the paper.
///
/// # Examples
///
/// Training and running the pipeline end-to-end requires a corpus; see
/// `examples/quickstart.rs` at the repository root.
#[derive(Debug, Clone)]
pub struct Pipeline {
    extractor: FeatureExtractor,
    detector: PhishDetector,
    identifier: TargetIdentifier,
}

impl Pipeline {
    /// Assembles a pipeline from its trained components.
    pub fn new(
        extractor: FeatureExtractor,
        detector: PhishDetector,
        identifier: TargetIdentifier,
    ) -> Self {
        Pipeline {
            extractor,
            detector,
            identifier,
        }
    }

    /// The feature extractor.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The detection component.
    pub fn detector(&self) -> &PhishDetector {
        &self.detector
    }

    /// The target identification component.
    pub fn identifier(&self) -> &TargetIdentifier {
        &self.identifier
    }

    /// Classifies a page with the two-stage process.
    pub fn classify(&self, page: &VisitedPage) -> PipelineVerdict {
        let sources = DataSources::from_page(page);
        let features = self.extractor.extract_with_sources(page, &sources);
        let score = self.detector.score(&features);
        if score < self.detector.threshold() {
            return PipelineVerdict::Legitimate { score };
        }
        match self.identifier.identify_with_sources(page, &sources) {
            TargetVerdict::Legitimate { step } => {
                PipelineVerdict::ConfirmedLegitimate { score, step }
            }
            TargetVerdict::Phish { candidates } => PipelineVerdict::Phish { score, candidates },
            TargetVerdict::Unknown => PipelineVerdict::Suspicious { score },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_pages::{legit, phish};
    use crate::DetectorConfig;
    use kyp_ml::Dataset;
    use kyp_search::SearchEngine;
    use std::sync::Arc;

    fn pipeline() -> Pipeline {
        let extractor = FeatureExtractor::default();
        // Tiny training set built from jittered copies of the fixtures.
        let mut data = Dataset::new(crate::features::FEATURE_COUNT);
        for i in 0..40 {
            let mut p = phish();
            p.input_count = 2 + i % 3;
            data.push_row(&extractor.extract(&p), true);
            let mut l = legit();
            l.image_count = 1 + i % 4;
            data.push_row(&extractor.extract(&l), false);
        }
        let detector = PhishDetector::train(&data, &DetectorConfig::default());
        let mut engine = SearchEngine::new();
        engine.index_page(
            "paypal.com",
            "paypal",
            "paypal account login send money online payments paypal",
        );
        engine.index_page(
            "mybank.com",
            "mybank",
            "mybank online banking welcome accounts mybank",
        );
        Pipeline::new(extractor, detector, TargetIdentifier::new(Arc::new(engine)))
    }

    #[test]
    fn phish_flagged_with_target() {
        let p = pipeline();
        match p.classify(&phish()) {
            PipelineVerdict::Phish { candidates, score } => {
                assert!(score >= 0.7);
                assert_eq!(candidates[0].mld, "paypal");
            }
            v => panic!("expected phish verdict, got {v:?}"),
        }
    }

    #[test]
    fn legit_passes_detector() {
        let p = pipeline();
        match p.classify(&legit()) {
            PipelineVerdict::Legitimate { score } => assert!(score < 0.7),
            v => panic!("expected legitimate, got {v:?}"),
        }
    }

    #[test]
    fn alarming_helper() {
        assert!(PipelineVerdict::Suspicious { score: 0.9 }.is_alarming());
        assert!(PipelineVerdict::Phish {
            score: 0.9,
            candidates: vec![]
        }
        .is_alarming());
        assert!(!PipelineVerdict::Legitimate { score: 0.1 }.is_alarming());
        assert!(!PipelineVerdict::ConfirmedLegitimate {
            score: 0.8,
            step: 2
        }
        .is_alarming());
    }

    #[test]
    fn accessors_exposed() {
        let p = pipeline();
        assert_eq!(p.detector().threshold(), 0.7);
        let _ = p.extractor();
        let _ = p.identifier();
    }
}
