//! The combined system of Section III-C: the phishing detector tentatively
//! flags a page; flagged pages go through target identification, which
//! either names the target (confirming the phish), confirms the page as
//! legitimate (removing a false positive), or stays undecided
//! ("suspicious"). Section VI-D shows this pipeline cutting the false
//! positive rate from 0.0005 to 0.0001 on the English test set.

use crate::{
    DataSources, FeatureExtractor, PhishDetector, TargetCandidate, TargetIdentifier, TargetVerdict,
};
use kyp_web::{
    FailureCause, ResilientBrowser, ScrapedPage, SourceAvailability, VisitedPage, World,
};
use serde::{Deserialize, Serialize};

/// Outcome of the full pipeline for one page.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineVerdict {
    /// The detector's confidence was below the threshold.
    Legitimate {
        /// Detector confidence.
        score: f64,
    },
    /// The detector flagged the page but target identification confirmed
    /// it as legitimate — a removed false positive.
    ConfirmedLegitimate {
        /// Detector confidence.
        score: f64,
        /// The identification step (1–4) that confirmed legitimacy.
        step: u8,
    },
    /// Flagged and a target was identified.
    Phish {
        /// Detector confidence.
        score: f64,
        /// Ranked candidate targets.
        candidates: Vec<TargetCandidate>,
    },
    /// Flagged, but no target found and no legitimacy confirmation.
    Suspicious {
        /// Detector confidence.
        score: f64,
    },
}

impl PipelineVerdict {
    /// `true` for the `Phish` and `Suspicious` outcomes — pages a deployed
    /// system would block or warn about.
    pub fn is_alarming(&self) -> bool {
        matches!(
            self,
            PipelineVerdict::Phish { .. } | PipelineVerdict::Suspicious { .. }
        )
    }

    /// The detector confidence the verdict carries, whichever variant.
    pub fn score(&self) -> f64 {
        match self {
            PipelineVerdict::Legitimate { score }
            | PipelineVerdict::ConfirmedLegitimate { score, .. }
            | PipelineVerdict::Phish { score, .. }
            | PipelineVerdict::Suspicious { score } => *score,
        }
    }

    /// The payload-free observation kind of this verdict.
    pub fn kind(&self) -> kyp_obs::VerdictKind {
        match self {
            PipelineVerdict::Legitimate { .. } => kyp_obs::VerdictKind::Legitimate,
            PipelineVerdict::ConfirmedLegitimate { .. } => {
                kyp_obs::VerdictKind::ConfirmedLegitimate
            }
            PipelineVerdict::Phish { .. } => kyp_obs::VerdictKind::Phish,
            PipelineVerdict::Suspicious { .. } => kyp_obs::VerdictKind::Suspicious,
        }
    }
}

/// Detector + target identifier, wired as in the paper.
///
/// # Examples
///
/// Training and running the pipeline end-to-end requires a corpus; see
/// `examples/quickstart.rs` at the repository root.
#[derive(Debug, Clone)]
pub struct Pipeline {
    extractor: FeatureExtractor,
    detector: PhishDetector,
    identifier: TargetIdentifier,
}

impl Pipeline {
    /// Assembles a pipeline from its trained components.
    pub fn new(
        extractor: FeatureExtractor,
        detector: PhishDetector,
        identifier: TargetIdentifier,
    ) -> Self {
        Pipeline {
            extractor,
            detector,
            identifier,
        }
    }

    /// The feature extractor.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The detection component.
    pub fn detector(&self) -> &PhishDetector {
        &self.detector
    }

    /// The target identification component.
    pub fn identifier(&self) -> &TargetIdentifier {
        &self.identifier
    }

    /// Classifies a page with the two-stage process.
    pub fn classify(&self, page: &VisitedPage) -> PipelineVerdict {
        self.classify_bundle(page, &SourceAvailability::FULL, &mut kyp_obs::NoopObserver)
    }

    /// Classifies a partially captured page.
    ///
    /// Sources the scraper could not deliver intact are replaced by their
    /// neutral values (see [`DataSources::from_partial`]), so the verdict
    /// is always produced from a complete, finite feature vector. With a
    /// [`SourceAvailability::FULL`] mask this is exactly
    /// [`Pipeline::classify`].
    pub fn classify_degraded(
        &self,
        page: &VisitedPage,
        availability: &SourceAvailability,
    ) -> PipelineVerdict {
        self.classify_bundle(page, availability, &mut kyp_obs::NoopObserver)
    }

    /// The canonical classification core every `classify*` entry point
    /// delegates to: degraded-aware source assembly, feature extraction,
    /// the GBM decision, and (for flagged pages) target identification —
    /// with every stage reported to `obs`.
    ///
    /// The observer only watches: the verdict is a pure function of
    /// `(page, availability)`, and passing [`kyp_obs::NoopObserver`]
    /// compiles to the uninstrumented pipeline.
    pub fn classify_bundle(
        &self,
        page: &VisitedPage,
        availability: &SourceAvailability,
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> PipelineVerdict {
        obs.page_start(page.starting_url.as_str());
        let sources = DataSources::from_partial(page, availability);
        let features = self
            .extractor
            .extract_with_sources_observed(page, &sources, obs);
        let score = self.detector.score(&features);
        let flagged = score >= self.detector.threshold();
        obs.detector_score(score, flagged);
        let verdict = if flagged {
            match self
                .identifier
                .identify_with_sources_observed(page, &sources, obs)
            {
                TargetVerdict::Legitimate { step } => {
                    PipelineVerdict::ConfirmedLegitimate { score, step }
                }
                TargetVerdict::Phish { candidates } => PipelineVerdict::Phish { score, candidates },
                TargetVerdict::Unknown => PipelineVerdict::Suspicious { score },
            }
        } else {
            PipelineVerdict::Legitimate { score }
        };
        obs.verdict(verdict.kind());
        verdict
    }

    /// Scrapes and classifies a batch of URLs, degrading gracefully.
    ///
    /// Every URL is attempted through the resilient scraper; pages that
    /// arrive — even partially — are classified (degraded pages via
    /// [`Pipeline::classify_degraded`]), and pages that cannot be fetched
    /// at all are tallied by failure cause in the returned
    /// [`ScrapeReport`]. The batch never panics on scrape failures, and
    /// with a fault-free world it classifies every URL.
    ///
    /// All timing is virtual (the scraper's [`kyp_web::VirtualClock`]), so
    /// two runs over the same world, plan and URLs produce bit-identical
    /// reports.
    ///
    /// Scraping stays serial — the virtual clock, retry backoff and
    /// per-host circuit breakers are shared sequential state, and the
    /// determinism contract depends on their exact fetch order — but
    /// feature extraction and the two-stage verdict for every captured
    /// page fan out over the default [`kyp_exec`] pool. Verdicts come back
    /// in scrape-completion (= input) order and each page's verdict is a
    /// pure function of its captured bytes, so the [`BatchRun`] is
    /// bit-identical to the serial path at any thread count.
    pub fn classify_all<W: World>(
        &self,
        scraper: &mut ResilientBrowser<'_, W>,
        urls: &[String],
    ) -> BatchRun {
        self.classify_all_observed(scraper, urls, &mut kyp_obs::NoopObserver)
    }

    /// Like [`Pipeline::classify_all`], reporting every scrape and
    /// classification stage to `obs`.
    ///
    /// Scrape events stream into the observer in fetch order as the
    /// serial scraping loop runs; classification events are recorded
    /// per page inside the worker pool and replayed in input order, so
    /// the observed stream — like the [`BatchRun`] itself — is
    /// bit-identical at any thread count.
    pub fn classify_all_observed<W: World>(
        &self,
        scraper: &mut ResilientBrowser<'_, W>,
        urls: &[String],
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> BatchRun {
        let retries_before = scraper.total_retries();
        let trips_before = scraper.breaker().trips();
        let clock_before = scraper.clock().now_ms();

        let mut report = ScrapeReport::default();
        let mut scraped_pages = Vec::new();
        for url in urls {
            report.requested += 1;
            match scraper.scrape_observed(url, obs) {
                Ok(scraped) => {
                    report.completed += 1;
                    if scraped.availability.is_degraded() {
                        report.degraded += 1;
                    }
                    scraped_pages.push((url.clone(), scraped));
                }
                Err(failure) => {
                    report.failed += 1;
                    report.count_cause(failure.cause);
                }
            }
        }
        report.retries = scraper.total_retries() - retries_before;
        report.breaker_trips = scraper.breaker().trips() - trips_before;
        report.virtual_elapsed_ms = scraper.clock().now_ms() - clock_before;

        let classified = self.classify_scraped_observed(&scraped_pages, obs);
        BatchRun { classified, report }
    }

    /// Classifies a batch of already-scraped pages in parallel.
    ///
    /// This is the pure classification core of [`Pipeline::classify_all`]
    /// — degraded-aware feature extraction plus the two-stage verdict —
    /// fanned out over the default [`kyp_exec`] pool, shared verbatim by
    /// the batch path and the online scoring service (`kyp-serve`).
    /// Verdicts come back in input order and each page's verdict is a pure
    /// function of its captured bytes, so the result is bit-identical to a
    /// serial loop at any thread count.
    pub fn classify_scraped(&self, pages: &[(String, ScrapedPage)]) -> Vec<ClassifiedPage> {
        self.classify_scraped_observed(pages, &mut kyp_obs::NoopObserver)
    }

    /// Like [`Pipeline::classify_scraped`], reporting every stage to
    /// `obs`.
    ///
    /// Each worker records its page's events into a private
    /// [`kyp_obs::Recorder`] — a pure function of the page — and the
    /// buffers are replayed into `obs` in input order after the pool
    /// joins, so the observed stream is independent of the thread count
    /// and of how chunks were scheduled.
    pub fn classify_scraped_observed(
        &self,
        pages: &[(String, ScrapedPage)],
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> Vec<ClassifiedPage> {
        let results = kyp_exec::pool().par_map(pages, |(url, scraped)| {
            let mut recorder = kyp_obs::Recorder::new();
            let verdict =
                self.classify_bundle(&scraped.visit, &scraped.availability, &mut recorder);
            let page = ClassifiedPage {
                url: url.clone(),
                verdict,
                degraded: scraped.availability.is_degraded(),
            };
            (page, recorder.into_events())
        });
        results
            .into_iter()
            .map(|(page, events)| {
                kyp_obs::replay(&events, obs);
                page
            })
            .collect()
    }
}

/// One successfully classified page of a [`Pipeline::classify_all`] batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedPage {
    /// The URL the scrape started from.
    pub url: String,
    /// The pipeline's verdict.
    pub verdict: PipelineVerdict,
    /// Whether the page was only partially captured.
    pub degraded: bool,
}

/// Everything a [`Pipeline::classify_all`] batch produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRun {
    /// Verdicts for every page that could be fetched, in input order.
    pub classified: Vec<ClassifiedPage>,
    /// Aggregate counts over the whole batch.
    pub report: ScrapeReport,
}

/// Aggregate accounting of one scraping batch.
///
/// All fields are plain counts over virtual time, so a report is
/// bit-reproducible: two batches over the same world, fault plan and URL
/// list serialize identically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrapeReport {
    /// URLs the batch attempted.
    pub requested: u64,
    /// URLs that yielded a page (including degraded ones).
    pub completed: u64,
    /// Completed pages that were only partially captured.
    pub degraded: u64,
    /// URLs that yielded no page at all.
    pub failed: u64,
    /// Retry attempts beyond each URL's first fetch.
    pub retries: u64,
    /// Times a per-host circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Failures still transient after every allowed attempt.
    pub failed_transient: u64,
    /// Failures where every attempt timed out.
    pub failed_timeout: u64,
    /// Failures abandoned because the per-visit deadline budget ran out.
    pub failed_deadline: u64,
    /// Fetches refused because the host's circuit was open.
    pub failed_circuit_open: u64,
    /// URLs whose page does not exist.
    pub failed_not_found: u64,
    /// URLs that could not be parsed.
    pub failed_bad_url: u64,
    /// Redirect chains longer than the browser's limit.
    pub failed_too_many_redirects: u64,
    /// Virtual milliseconds the batch consumed.
    pub virtual_elapsed_ms: u64,
}

impl ScrapeReport {
    /// Sum of the per-cause failure counts; always equals `failed`.
    pub fn failures_total(&self) -> u64 {
        self.failed_transient
            + self.failed_timeout
            + self.failed_deadline
            + self.failed_circuit_open
            + self.failed_not_found
            + self.failed_bad_url
            + self.failed_too_many_redirects
    }

    /// Fraction of requested URLs that yielded a page (1.0 for an empty
    /// batch).
    pub fn completion_rate(&self) -> f64 {
        if self.requested == 0 {
            1.0
        } else {
            self.completed as f64 / self.requested as f64
        }
    }

    /// Adds one failure of `cause` to the matching per-cause counter.
    ///
    /// Callers driving a scraper directly (rather than through
    /// [`Pipeline::classify_all`]) use this to keep
    /// [`ScrapeReport::failures_total`] consistent with `failed`.
    pub fn count_cause(&mut self, cause: FailureCause) {
        match cause {
            FailureCause::Transient => self.failed_transient += 1,
            FailureCause::Timeout => self.failed_timeout += 1,
            FailureCause::DeadlineExceeded => self.failed_deadline += 1,
            FailureCause::CircuitOpen => self.failed_circuit_open += 1,
            FailureCause::NotFound => self.failed_not_found += 1,
            FailureCause::BadUrl => self.failed_bad_url += 1,
            FailureCause::TooManyRedirects => self.failed_too_many_redirects += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_pages::{legit, phish};
    use crate::DetectorConfig;
    use kyp_ml::Dataset;
    use kyp_search::SearchEngine;
    use std::sync::Arc;

    fn pipeline() -> Pipeline {
        let extractor = FeatureExtractor::default();
        // Tiny training set built from jittered copies of the fixtures.
        let mut data = Dataset::new(crate::features::FEATURE_COUNT);
        for i in 0..40 {
            let mut p = phish();
            p.input_count = 2 + i % 3;
            data.push_row(&extractor.extract(&p), true);
            let mut l = legit();
            l.image_count = 1 + i % 4;
            data.push_row(&extractor.extract(&l), false);
        }
        let detector = PhishDetector::train(&data, &DetectorConfig::default());
        let mut engine = SearchEngine::new();
        engine.index_page(
            "paypal.com",
            "paypal",
            "paypal account login send money online payments paypal",
        );
        engine.index_page(
            "mybank.com",
            "mybank",
            "mybank online banking welcome accounts mybank",
        );
        Pipeline::new(extractor, detector, TargetIdentifier::new(Arc::new(engine)))
    }

    #[test]
    fn phish_flagged_with_target() {
        let p = pipeline();
        match p.classify(&phish()) {
            PipelineVerdict::Phish { candidates, score } => {
                assert!(score >= 0.7);
                assert_eq!(candidates[0].mld, "paypal");
            }
            v => panic!("expected phish verdict, got {v:?}"),
        }
    }

    #[test]
    fn legit_passes_detector() {
        let p = pipeline();
        match p.classify(&legit()) {
            PipelineVerdict::Legitimate { score } => assert!(score < 0.7),
            v => panic!("expected legitimate, got {v:?}"),
        }
    }

    #[test]
    fn alarming_helper() {
        assert!(PipelineVerdict::Suspicious { score: 0.9 }.is_alarming());
        assert!(PipelineVerdict::Phish {
            score: 0.9,
            candidates: vec![]
        }
        .is_alarming());
        assert!(!PipelineVerdict::Legitimate { score: 0.1 }.is_alarming());
        assert!(!PipelineVerdict::ConfirmedLegitimate {
            score: 0.8,
            step: 2
        }
        .is_alarming());
    }

    #[test]
    fn accessors_exposed() {
        let p = pipeline();
        assert_eq!(p.detector().threshold(), 0.7);
        let _ = p.extractor();
        let _ = p.identifier();
    }

    #[test]
    fn classify_matches_degraded_with_full_mask() {
        let p = pipeline();
        for page in [phish(), legit()] {
            assert_eq!(
                p.classify(&page),
                p.classify_degraded(&page, &SourceAvailability::FULL)
            );
        }
    }

    #[test]
    fn degraded_classification_still_yields_a_verdict() {
        let p = pipeline();
        let mask = SourceAvailability {
            html: false,
            links: false,
            screenshot: false,
        };
        // No panic, and a well-formed verdict either way.
        let _ = p.classify_degraded(&phish(), &mask);
        let _ = p.classify_degraded(&legit(), &mask);
    }

    fn tiny_world() -> kyp_web::WebWorld {
        use kyp_web::Page;
        let mut world = kyp_web::WebWorld::new();
        world.add_page(
            "http://a.example.com/",
            Page::new("<title>A</title><body>plain page one</body>"),
        );
        world.add_page(
            "http://b.example.com/",
            Page::new("<title>B</title><body>plain page two</body>"),
        );
        world
    }

    #[test]
    fn classify_all_clean_world_classifies_everything() {
        let p = pipeline();
        let world = tiny_world();
        let mut scraper = ResilientBrowser::new(&world);
        let urls: Vec<String> = vec![
            "http://a.example.com/".into(),
            "http://b.example.com/".into(),
            "http://missing.example.com/".into(),
            "not a url".into(),
        ];
        let run = p.classify_all(&mut scraper, &urls);
        assert_eq!(run.report.requested, 4);
        assert_eq!(run.report.completed, 2);
        assert_eq!(run.report.failed, 2);
        assert_eq!(run.report.failed_not_found, 1);
        assert_eq!(run.report.failed_bad_url, 1);
        assert_eq!(run.report.failures_total(), run.report.failed);
        assert_eq!(run.classified.len(), 2);
        assert!(run.classified.iter().all(|c| !c.degraded));
        assert_eq!(run.classified[0].url, "http://a.example.com/");
        assert!(run.report.virtual_elapsed_ms > 0, "virtual time must pass");
    }

    #[test]
    fn classify_all_reports_are_bit_identical_across_runs() {
        let p = pipeline();
        let world = tiny_world();
        let urls: Vec<String> = vec![
            "http://a.example.com/".into(),
            "http://missing.example.com/".into(),
            "http://b.example.com/".into(),
        ];
        let plan = kyp_web::FaultPlan::new(7, 0.4);
        let run = |w: &kyp_web::WebWorld| {
            let flaky = kyp_web::FlakyWorld::new(w, plan.clone());
            let mut scraper = ResilientBrowser::new(&flaky);
            p.classify_all(&mut scraper, &urls)
        };
        let (one, two) = (run(&world), run(&world));
        assert_eq!(one.report, two.report);
        assert_eq!(one.classified, two.classified);
        let a = serde_json::to_string(&one.report).unwrap();
        let b = serde_json::to_string(&two.report).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scrape_report_roundtrips_through_json() {
        let report = ScrapeReport {
            requested: 10,
            completed: 7,
            degraded: 2,
            failed: 3,
            retries: 5,
            breaker_trips: 1,
            failed_transient: 1,
            failed_timeout: 1,
            failed_deadline: 0,
            failed_circuit_open: 0,
            failed_not_found: 1,
            failed_bad_url: 0,
            failed_too_many_redirects: 0,
            virtual_elapsed_ms: 1234,
        };
        assert_eq!(report.failures_total(), report.failed);
        assert!((report.completion_rate() - 0.7).abs() < 1e-12);
        let json = serde_json::to_string(&report).unwrap();
        let back: ScrapeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
