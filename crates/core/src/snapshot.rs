//! The persisted model artifact shared by every entry point.
//!
//! Training (`kyp train`), evaluation (`kyp eval`), single-page scanning
//! (`kyp scan`) and the online scoring service (`kyp serve`) all exchange
//! the same self-contained json bundle: the trained detector plus the
//! domain ranking it was fitted against. [`ModelSnapshot`] is that bundle,
//! stamped with an explicit format version so a service never silently
//! loads a model written by an incompatible build.
//!
//! # Examples
//!
//! ```
//! use kyp_core::{DetectorConfig, ModelSnapshot, PhishDetector};
//! use kyp_ml::Dataset;
//! use kyp_web::DomainRanker;
//!
//! let mut train = Dataset::new(2);
//! for i in 0..200 {
//!     let v = f64::from(i % 2);
//!     train.push_row(&[v, 1.0 - v], v > 0.5);
//! }
//! let detector = PhishDetector::train(&train, &DetectorConfig::default());
//! let snapshot = ModelSnapshot::new(detector, DomainRanker::default());
//!
//! let json = snapshot.to_json().unwrap();
//! let back = ModelSnapshot::from_json(&json).unwrap();
//! assert_eq!(back.format_version, kyp_core::MODEL_SNAPSHOT_VERSION);
//! ```

use crate::PhishDetector;
use kyp_web::DomainRanker;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// The snapshot format this build writes and accepts.
///
/// Bump on any change to the serialized shape of [`ModelSnapshot`] (or of
/// the detector/ranker inside it) that older readers would misinterpret.
pub const MODEL_SNAPSHOT_VERSION: u32 = 1;

/// Stage tag of a cascade URL-only model (`stage: "url"`).
pub const STAGE_URL: &str = "url";

/// Stage tag of a full 212-feature pipeline model. Full-stage snapshots
/// omit the field entirely, so artifacts written before the cascade
/// existed keep their exact bytes and parse as full-stage.
pub const STAGE_FULL: &str = "full";

/// A versioned, self-contained trained-model bundle: everything `eval`,
/// `scan` and `serve` need to score pages offline.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// Format version stamp; see [`MODEL_SNAPSHOT_VERSION`].
    pub format_version: u32,
    /// The trained detection classifier.
    pub detector: PhishDetector,
    /// The domain-popularity ranking the features were computed against.
    pub ranker: DomainRanker,
    /// Which cascade stage the model scores: `Some("url")` for the
    /// URL-only pre-filter, `None` for the full pipeline. Absent from the
    /// json of full-stage snapshots, keeping pre-cascade artifacts
    /// byte-identical.
    pub stage: Option<String>,
}

// Hand-written (de)serialization: the stage field must be *absent* — not
// null — from full-stage json so pre-cascade snapshots keep their exact
// bytes, and absent-means-full on the way back in.
impl Serialize for ModelSnapshot {
    fn to_json_value(&self) -> serde::Value {
        let mut fields = vec![
            (
                "format_version".to_owned(),
                self.format_version.to_json_value(),
            ),
            ("detector".to_owned(), self.detector.to_json_value()),
            ("ranker".to_owned(), self.ranker.to_json_value()),
        ];
        if let Some(stage) = &self.stage {
            fields.push(("stage".to_owned(), serde::Value::String(stage.clone())));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for ModelSnapshot {
    fn from_json_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for struct ModelSnapshot"))?;
        let field = |name: &str| serde::obj_get(fields, name);
        Ok(ModelSnapshot {
            format_version: Deserialize::from_json_value(field("format_version"))
                .map_err(|e| serde::Error::custom(format!("ModelSnapshot.format_version: {e}")))?,
            detector: Deserialize::from_json_value(field("detector"))
                .map_err(|e| serde::Error::custom(format!("ModelSnapshot.detector: {e}")))?,
            ranker: Deserialize::from_json_value(field("ranker"))
                .map_err(|e| serde::Error::custom(format!("ModelSnapshot.ranker: {e}")))?,
            stage: Deserialize::from_json_value(field("stage"))
                .map_err(|e| serde::Error::custom(format!("ModelSnapshot.stage: {e}")))?,
        })
    }
}

/// Why a snapshot could not be loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The content is not a parseable snapshot.
    Malformed(String),
    /// The content carries no `format_version` stamp — most likely a
    /// bundle written before snapshots were versioned.
    MissingVersion,
    /// The content was written by an incompatible format version.
    VersionMismatch {
        /// The version found in the file.
        found: u64,
        /// The version this build supports.
        expected: u32,
    },
    /// The snapshot scores a different cascade stage than the seam that
    /// loaded it expects — e.g. a 17-feature URL model handed to the
    /// 212-feature pipeline, or vice versa.
    StageMismatch {
        /// The stage tag found in the file (`"full"` when untagged).
        found: String,
        /// The stage the loading seam requires.
        expected: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Malformed(e) => write!(f, "malformed model snapshot: {e}"),
            SnapshotError::MissingVersion => write!(
                f,
                "model snapshot has no format_version field \
                 (pre-versioned bundle? re-run `kyp train` to regenerate it)"
            ),
            SnapshotError::VersionMismatch { found, expected } => write!(
                f,
                "model snapshot format version {found} is not supported \
                 (this build reads version {expected}; re-run `kyp train` \
                 with a matching build)"
            ),
            SnapshotError::StageMismatch { found, expected } => write!(
                f,
                "model snapshot scores the {found:?} cascade stage, but this \
                 seam needs a {expected:?}-stage model (train one with \
                 `kyp cascade-train` for \"url\", `kyp train` for \"full\")"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl ModelSnapshot {
    /// Bundles a trained detector and its ranking at the current format
    /// version.
    pub fn new(detector: PhishDetector, ranker: DomainRanker) -> Self {
        ModelSnapshot {
            format_version: MODEL_SNAPSHOT_VERSION,
            detector,
            ranker,
            stage: None,
        }
    }

    /// Bundles a URL-stage (cascade pre-filter) model, tagged
    /// `stage: "url"` so full-pipeline seams reject it at load time.
    pub fn new_url_stage(detector: PhishDetector, ranker: DomainRanker) -> Self {
        ModelSnapshot {
            format_version: MODEL_SNAPSHOT_VERSION,
            detector,
            ranker,
            stage: Some(STAGE_URL.to_owned()),
        }
    }

    /// The cascade stage this snapshot scores; untagged snapshots are
    /// full-stage.
    pub fn stage(&self) -> &str {
        self.stage.as_deref().unwrap_or(STAGE_FULL)
    }

    /// Verifies the snapshot scores the stage a loading seam expects.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::StageMismatch`] when it does not.
    pub fn require_stage(&self, expected: &str) -> Result<(), SnapshotError> {
        if self.stage() == expected {
            Ok(())
        } else {
            Err(SnapshotError::StageMismatch {
                found: self.stage().to_owned(),
                expected: expected.to_owned(),
            })
        }
    }

    /// Serializes the snapshot to its json interchange form.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] when serialization fails
    /// (practically unreachable for a well-formed snapshot).
    pub fn to_json(&self) -> Result<String, SnapshotError> {
        serde_json::to_string(self).map_err(|e| SnapshotError::Malformed(e.to_string()))
    }

    /// Parses a snapshot, verifying the format version *before* touching
    /// the payload.
    ///
    /// # Errors
    ///
    /// - [`SnapshotError::Malformed`] when the text is not a json object
    ///   or the payload does not deserialize;
    /// - [`SnapshotError::MissingVersion`] when there is no
    ///   `format_version` stamp;
    /// - [`SnapshotError::VersionMismatch`] when the stamp differs from
    ///   [`MODEL_SNAPSHOT_VERSION`].
    pub fn from_json(json: &str) -> Result<Self, SnapshotError> {
        let value: serde_json::Value =
            serde_json::from_str(json).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        let Some(version) = value.get("format_version") else {
            return Err(SnapshotError::MissingVersion);
        };
        let Some(found) = version.as_u64() else {
            return Err(SnapshotError::Malformed(format!(
                "format_version is not an integer: {version:?}"
            )));
        };
        if found != u64::from(MODEL_SNAPSHOT_VERSION) {
            return Err(SnapshotError::VersionMismatch {
                found,
                expected: MODEL_SNAPSHOT_VERSION,
            });
        }
        let snapshot: Self =
            serde_json::from_value(value).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        // The ensemble's tree walks index nodes unchecked; a tampered or
        // corrupted artifact must be rejected here, not panic mid-score.
        snapshot
            .detector
            .validate()
            .map_err(SnapshotError::Malformed)?;
        // Compile the flat inference tables eagerly: every consumer of a
        // loaded snapshot (eval, scan, serve, cluster) is about to score
        // with it, and the first request should not pay the compilation.
        snapshot.detector.warm();
        Ok(snapshot)
    }

    /// Writes the snapshot to `path` as json.
    ///
    /// # Errors
    ///
    /// Propagates serialization and filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Reads and validates a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures and every [`Self::from_json`]
    /// error.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetectorConfig;
    use kyp_ml::Dataset;

    fn snapshot() -> ModelSnapshot {
        let mut train = Dataset::new(2);
        for i in 0..120 {
            let v = f64::from(i % 2);
            train.push_row(&[v, 1.0 - v], v > 0.5);
        }
        let detector = PhishDetector::train(&train, &DetectorConfig::default());
        ModelSnapshot::new(detector, DomainRanker::from_ranked(["example.com"]))
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let snap = snapshot();
        let json = snap.to_json().unwrap();
        let back = ModelSnapshot::from_json(&json).unwrap();
        assert_eq!(back.format_version, MODEL_SNAPSHOT_VERSION);
        for row in [[1.0, 0.0], [0.0, 1.0], [0.3, 0.7]] {
            assert_eq!(
                snap.detector.score(&row).to_bits(),
                back.detector.score(&row).to_bits(),
                "scores must be bit-identical after a round trip"
            );
        }
    }

    #[test]
    fn roundtrip_then_compile_matches_original_flat_walk() {
        // The serialized form carries only the boxed ensemble; a loaded
        // snapshot recompiles its flat tables, and the recompiled walk
        // must be bit-identical to the original detector's — both the
        // flat path and the boxed reference path.
        let snap = snapshot();
        let back = ModelSnapshot::from_json(&snap.to_json().unwrap()).unwrap();
        let probes = [[1.0, 0.0], [0.0, 1.0], [0.3, 0.7], [2.5, -1.5]];
        for p in &probes {
            assert_eq!(
                snap.detector.score(p).to_bits(),
                back.detector.score(p).to_bits()
            );
            assert_eq!(
                back.detector.score(p).to_bits(),
                back.detector.score_reference(p).to_bits()
            );
        }
        let batch = back.detector.score_batch(&probes);
        for (p, got) in probes.iter().zip(&batch) {
            assert_eq!(got.to_bits(), snap.detector.score(p).to_bits());
        }
    }

    #[test]
    fn missing_version_is_an_explicit_error() {
        // A pre-versioned bundle: detector + ranker, no stamp.
        let err = ModelSnapshot::from_json(r#"{"detector": {}, "ranker": {}}"#).unwrap_err();
        assert!(matches!(err, SnapshotError::MissingVersion), "{err}");
        assert!(err.to_string().contains("format_version"));
    }

    #[test]
    fn version_mismatch_is_an_explicit_error() {
        let snap = snapshot();
        let json =
            snap.to_json()
                .unwrap()
                .replacen("\"format_version\":1", "\"format_version\":999", 1);
        match ModelSnapshot::from_json(&json) {
            Err(SnapshotError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, MODEL_SNAPSHOT_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    /// A snapshot whose tree child indices point out of range must be
    /// rejected at load time — before it can drive the unchecked
    /// inference walks out of bounds (regression test for the
    /// kyp-lint P02 finding on `FlatModel::compile_node`).
    #[test]
    fn out_of_range_tree_reference_is_malformed_not_a_panic() {
        let json = snapshot().to_json().unwrap();
        // Redirect the first split's `left` child far out of range, same
        // string-surgery style as the version-mismatch test above.
        let pos = json
            .find("\"left\":")
            .expect("fixture snapshot holds no split node to corrupt")
            + "\"left\":".len();
        let end = pos
            + json[pos..]
                .find(|c: char| !c.is_ascii_digit())
                .expect("unterminated left index");
        let tampered = format!("{}9999999{}", &json[..pos], &json[end..]);
        let err = ModelSnapshot::from_json(&tampered).unwrap_err();
        match err {
            SnapshotError::Malformed(detail) => {
                assert!(detail.contains("out of range"), "{detail}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn untagged_snapshots_are_full_stage_and_keep_their_bytes() {
        let snap = snapshot();
        assert_eq!(snap.stage(), STAGE_FULL);
        assert!(snap.require_stage(STAGE_FULL).is_ok());
        let json = snap.to_json().unwrap();
        assert!(
            !json.contains("\"stage\""),
            "full-stage snapshots must serialize without a stage field"
        );
        let back = ModelSnapshot::from_json(&json).unwrap();
        assert_eq!(back.stage(), STAGE_FULL);
    }

    #[test]
    fn url_stage_tag_round_trips_with_identical_scores() {
        let base = snapshot();
        let snap = ModelSnapshot::new_url_stage(base.detector.clone(), base.ranker.clone());
        assert_eq!(snap.stage(), STAGE_URL);
        let json = snap.to_json().unwrap();
        assert!(json.contains("\"stage\":\"url\""), "{json}");
        let back = ModelSnapshot::from_json(&json).unwrap();
        assert_eq!(back.stage(), STAGE_URL);
        assert!(back.require_stage(STAGE_URL).is_ok());
        for row in [[1.0, 0.0], [0.0, 1.0], [0.3, 0.7]] {
            assert_eq!(
                snap.detector.score(&row).to_bits(),
                back.detector.score(&row).to_bits()
            );
        }
    }

    #[test]
    fn stage_mismatch_is_an_explicit_error() {
        let full = snapshot();
        let err = full.require_stage(STAGE_URL).unwrap_err();
        match err {
            SnapshotError::StageMismatch { found, expected } => {
                assert_eq!(found, STAGE_FULL);
                assert_eq!(expected, STAGE_URL);
            }
            other => panic!("expected stage mismatch, got {other:?}"),
        }
        let url = ModelSnapshot::new_url_stage(full.detector.clone(), full.ranker.clone());
        assert!(matches!(
            url.require_stage(STAGE_FULL),
            Err(SnapshotError::StageMismatch { .. })
        ));
        assert!(url
            .require_stage(STAGE_FULL)
            .unwrap_err()
            .to_string()
            .contains("cascade-train"));
    }

    #[test]
    fn garbage_is_malformed() {
        assert!(matches!(
            ModelSnapshot::from_json("{not json"),
            Err(SnapshotError::Malformed(_))
        ));
        assert!(matches!(
            ModelSnapshot::from_json(r#"{"format_version": "one"}"#),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("kyp_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let snap = snapshot();
        snap.save(&path).unwrap();
        let back = ModelSnapshot::load(&path).unwrap();
        assert_eq!(
            snap.detector.score(&[1.0, 0.0]).to_bits(),
            back.detector.score(&[1.0, 0.0]).to_bits()
        );
        let _ = std::fs::remove_file(&path);
    }
}
