//! A Whittaker-et-al.-style bag-of-words detector (NDSS'10).
//!
//! The original system trains on ~9M examples with ~100,000 mostly static
//! bag-of-words features over page content, URL and hosting data. This
//! replica keeps the defining characteristics — high-dimensional hashed
//! lexical features, a linear model, brand/language dependence — so the
//! Table X comparison shows the data-hunger the paper criticises:
//! with the paper's small training budget it underperforms the
//! 212-feature system, especially on *unseen brands*.

use crate::BaselineDetector;
use kyp_ml::{hash_feature, SparseLogisticRegression};
use kyp_text::extract_terms;
use kyp_web::VisitedPage;

/// The bag-of-words baseline.
///
/// # Examples
///
/// ```
/// use kyp_baselines::{BagOfWords, BaselineDetector};
/// let bow = BagOfWords::new();
/// assert_eq!(bow.name(), "Bag-of-words");
/// ```
#[derive(Debug, Clone)]
pub struct BagOfWords {
    model: SparseLogisticRegression,
}

impl Default for BagOfWords {
    fn default() -> Self {
        Self::new()
    }
}

impl BagOfWords {
    /// Creates an untrained model.
    pub fn new() -> Self {
        BagOfWords {
            model: SparseLogisticRegression::new(0.08, 1e-6),
        }
    }

    /// The hashed sparse feature vector of a page: one feature per term
    /// per source namespace (text, title, URL, links), plus a few counts.
    pub fn featurize(page: &VisitedPage) -> Vec<(u64, f64)> {
        let mut f: Vec<(u64, f64)> = Vec::new();
        let mut add_terms = |ns: &str, text: &str| {
            for t in extract_terms(text) {
                f.push((hash_feature(ns, &t), 1.0));
            }
        };
        add_terms("text", &page.text);
        add_terms("title", &page.title);
        add_terms("url", page.starting_url.as_str());
        add_terms("url", page.landing_url.as_str());
        for u in page.href_links.iter().chain(&page.logged_links) {
            add_terms("link", u.as_str());
        }
        f.push((hash_feature("count", "inputs"), page.input_count as f64));
        f.push((hash_feature("count", "images"), page.image_count as f64));
        f.push((
            hash_feature("count", "chain"),
            page.redirection_chain.len() as f64,
        ));
        f
    }

    /// Trains for `epochs` passes over labeled pages.
    pub fn train(&mut self, pages: &[(VisitedPage, bool)], epochs: usize) {
        let examples: Vec<(Vec<(u64, f64)>, bool)> = pages
            .iter()
            .map(|(p, y)| (Self::featurize(p), *y))
            .collect();
        self.model.fit(&examples, epochs);
    }

    /// Number of learned non-zero weights (Table X reports the feature
    /// hunger of the original system).
    pub fn model_size(&self) -> usize {
        self.model.nnz()
    }
}

impl BaselineDetector for BagOfWords {
    fn name(&self) -> &'static str {
        "Bag-of-words"
    }

    fn score(&self, page: &VisitedPage) -> f64 {
        self.model.predict_proba(&Self::featurize(page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{legit, phish};

    #[test]
    fn learns_seen_brand() {
        let mut bow = BagOfWords::new();
        let data = vec![(phish(), true), (legit(), false)];
        bow.train(&data, 50);
        assert!(bow.score(&phish()) > 0.8);
        assert!(bow.score(&legit()) < 0.2);
        assert!(bow.model_size() > 10);
    }

    #[test]
    fn untrained_model_is_uncertain() {
        let bow = BagOfWords::new();
        assert!((bow.score(&phish()) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn brand_dependence_weakness() {
        // Train on one brand only; a phish against an unseen brand with
        // disjoint vocabulary gets a weaker score than the seen brand —
        // the generalisation weakness the paper criticises.
        let mut bow = BagOfWords::new();
        bow.train(&[(phish(), true), (legit(), false)], 50);
        let mut unseen = phish();
        unseen.text = "acceda a su cuenta norbanco introduzca su clave".into();
        unseen.title = "NorBanco acceso".into();
        unseen.starting_url = crate::fixtures::url("http://host-77.ml/nb/entrar");
        unseen.landing_url = unseen.starting_url.clone();
        unseen.redirection_chain = vec![unseen.starting_url.clone()];
        unseen.href_links = vec![crate::fixtures::url("https://www.norbanco.es/ayuda")];
        unseen.logged_links = vec![crate::fixtures::url("https://www.norbanco.es/logo.png")];
        assert!(
            bow.score(&unseen) < bow.score(&phish()),
            "unseen-brand phish should score lower: {} vs {}",
            bow.score(&unseen),
            bow.score(&phish())
        );
    }
}
