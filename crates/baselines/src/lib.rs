#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Baseline phishing detectors for the Table X comparison.
//!
//! The paper compares against eight prior systems; three representative
//! ones are implemented here against the same simulated corpus:
//!
//! - [`Cantina`] — Zhang et al. (WWW'07): TF-IDF signature terms queried
//!   against a search engine, no learning;
//! - [`BagOfWords`] — Whittaker et al. (NDSS'10) style: a linear model
//!   over hundreds of thousands of hashed lexical features, needing far
//!   more training data than the paper's 212 features;
//! - [`UrlLexical`] — Ma et al. (KDD'09) style: online learning over
//!   URL-string features only (no page content).
//!
//! All three consume the same [`VisitedPage`] scrape bundle as the real
//! system, so comparisons isolate the feature/algorithm choice.

mod bow;
mod cantina;
mod url_lexical;

pub use bow::BagOfWords;
pub use cantina::Cantina;
pub use url_lexical::UrlLexical;

use kyp_web::VisitedPage;

/// Common interface of the comparison systems: a phishing confidence in
/// `[0, 1]` for a scraped page.
pub trait BaselineDetector {
    /// The system's name as used in Table X.
    fn name(&self) -> &'static str;

    /// Phishing confidence in `[0, 1]`.
    fn score(&self, page: &VisitedPage) -> f64;

    /// Binary decision at the system's natural threshold (0.5).
    fn is_phish(&self, page: &VisitedPage) -> bool {
        self.score(page) >= 0.5
    }
}

#[cfg(test)]
pub(crate) mod fixtures {
    use kyp_url::Url;
    use kyp_web::VisitedPage;

    pub fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    pub fn phish() -> VisitedPage {
        VisitedPage {
            starting_url: url("http://secure-check332.tk/paypago/login?x=9"),
            landing_url: url("http://secure-check332.tk/paypago/login?x=9"),
            redirection_chain: vec![url("http://secure-check332.tk/paypago/login?x=9")],
            logged_links: vec![url("https://www.paypago.com/logo.png")],
            href_links: vec![url("https://www.paypago.com/help")],
            text: "sign in to your paypago wallet account password".into(),
            title: "PayPago Login".into(),
            copyright: Some("© PayPago".into()),
            screenshot_text: "sign in to your paypago wallet".into(),
            input_count: 2,
            image_count: 2,
            iframe_count: 0,
        }
    }

    pub fn legit() -> VisitedPage {
        VisitedPage {
            starting_url: url("https://www.paypago.com/"),
            landing_url: url("https://www.paypago.com/"),
            redirection_chain: vec![url("https://www.paypago.com/")],
            logged_links: vec![url("https://www.paypago.com/app.js")],
            href_links: vec![url("https://www.paypago.com/wallet")],
            text: "welcome to paypago send money with your paypago wallet".into(),
            title: "PayPago — payments".into(),
            copyright: Some("© 2015 PayPago Inc".into()),
            screenshot_text: "welcome to paypago".into(),
            input_count: 0,
            image_count: 1,
            iframe_count: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _take(_: &dyn BaselineDetector) {}
    }
}
