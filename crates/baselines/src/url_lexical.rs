//! A Ma-et-al.-style URL-lexical detector (KDD'09, "Beyond Blacklists").
//!
//! Classifies from the URL string alone — hashed URL tokens plus a few
//! numeric statistics — with online logistic regression. Fast and
//! content-free, but blind to everything the page serves, which is why
//! the paper's content-aware features dominate it at equal training data.

use crate::BaselineDetector;
use kyp_ml::{hash_feature, SparseLogisticRegression};
use kyp_text::extract_terms;
use kyp_url::Url;
use kyp_web::VisitedPage;

/// The URL-lexical baseline.
///
/// # Examples
///
/// ```
/// use kyp_baselines::{BaselineDetector, UrlLexical};
/// let m = UrlLexical::new();
/// assert_eq!(m.name(), "URL-lexical");
/// ```
#[derive(Debug, Clone)]
pub struct UrlLexical {
    model: SparseLogisticRegression,
}

impl Default for UrlLexical {
    fn default() -> Self {
        Self::new()
    }
}

impl UrlLexical {
    /// Creates an untrained model.
    pub fn new() -> Self {
        UrlLexical {
            model: SparseLogisticRegression::new(0.08, 1e-6),
        }
    }

    /// Sparse features of a URL: hashed host/path/query tokens and scaled
    /// numeric statistics (length, label count, digits, https).
    pub fn featurize_url(url: &Url) -> Vec<(u64, f64)> {
        let mut f: Vec<(u64, f64)> = Vec::new();
        let free = url.free_url();
        let host = url.fqdn_str().unwrap_or_else(|| url.host().to_string());
        for t in extract_terms(&host) {
            f.push((hash_feature("host", &t), 1.0));
        }
        if let Some(ps) = url.public_suffix() {
            f.push((hash_feature("tld", &ps), 1.0));
        }
        for t in extract_terms(&free.path)
            .into_iter()
            .chain(extract_terms(&free.query))
        {
            f.push((hash_feature("path", &t), 1.0));
        }
        f.push((hash_feature("num", "len"), url.len() as f64 / 64.0));
        f.push((
            hash_feature("num", "labels"),
            url.level_domain_count() as f64 / 4.0,
        ));
        f.push((hash_feature("num", "dots"), free.dot_count() as f64 / 4.0));
        f.push((
            hash_feature("num", "digits"),
            url.as_str().chars().filter(char::is_ascii_digit).count() as f64 / 8.0,
        ));
        f.push((hash_feature("num", "https"), f64::from(url.is_https())));
        f.push((hash_feature("num", "ip"), f64::from(url.host().is_ip())));
        f
    }

    /// Features for a visited page: its starting URL (what a URL filter
    /// sees before any page load).
    pub fn featurize(page: &VisitedPage) -> Vec<(u64, f64)> {
        Self::featurize_url(&page.starting_url)
    }

    /// Trains for `epochs` passes.
    pub fn train(&mut self, pages: &[(VisitedPage, bool)], epochs: usize) {
        let examples: Vec<(Vec<(u64, f64)>, bool)> = pages
            .iter()
            .map(|(p, y)| (Self::featurize(p), *y))
            .collect();
        self.model.fit(&examples, epochs);
    }

    /// Online update from a single example (the original system is an
    /// online learner).
    pub fn update(&mut self, page: &VisitedPage, label: bool) {
        self.model.update(&Self::featurize(page), label);
    }
}

impl BaselineDetector for UrlLexical {
    fn name(&self) -> &'static str {
        "URL-lexical"
    }

    fn score(&self, page: &VisitedPage) -> f64 {
        self.model.predict_proba(&Self::featurize(page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{legit, phish};

    #[test]
    fn learns_url_shapes() {
        let mut m = UrlLexical::new();
        m.train(&[(phish(), true), (legit(), false)], 60);
        assert!(m.score(&phish()) > 0.8);
        assert!(m.score(&legit()) < 0.2);
    }

    #[test]
    fn online_updates_move_score() {
        let mut m = UrlLexical::new();
        let before = m.score(&phish());
        for _ in 0..30 {
            m.update(&phish(), true);
        }
        assert!(m.score(&phish()) > before);
    }

    #[test]
    fn content_blindness() {
        // Same URL, totally different page content → identical score.
        let mut m = UrlLexical::new();
        m.train(&[(phish(), true), (legit(), false)], 30);
        let mut altered = phish();
        altered.text = "completely different content".into();
        altered.title = "other".into();
        assert_eq!(m.score(&phish()), m.score(&altered));
    }

    #[test]
    fn ip_urls_featurized() {
        let url = crate::fixtures::url("http://10.2.3.4/login");
        let f = UrlLexical::featurize_url(&url);
        assert!(f
            .iter()
            .any(|(id, v)| *id == hash_feature("num", "ip") && *v == 1.0));
    }
}
