//! The Cantina baseline (Zhang, Hong, Cranor — WWW'07).
//!
//! Cantina computes the TF-IDF signature of a page (its top-5 terms),
//! queries a search engine with the signature, and declares the page
//! legitimate if its own domain appears in the top results. Unlike the
//! paper's system it needs a TF-IDF corpus (language-dependent) and a
//! live search engine for *every* classification.

use crate::BaselineDetector;
use kyp_search::SearchEngine;
use kyp_text::tfidf::{Corpus as TfIdfCorpus, PreparedCorpus};
use kyp_web::VisitedPage;
use std::sync::Arc;

/// The Cantina detector.
///
/// # Examples
///
/// ```
/// use kyp_baselines::{BaselineDetector, Cantina};
/// use kyp_search::SearchEngine;
/// use kyp_text::tfidf::Corpus;
/// use std::sync::Arc;
///
/// let mut df = Corpus::new();
/// df.add_document("welcome to paypago send money");
/// let mut engine = SearchEngine::new();
/// engine.index_page("paypago.com", "paypago", "paypago send money wallet");
/// let cantina = Cantina::new(Arc::new(engine), df);
/// // (See crate tests for full classification examples.)
/// assert_eq!(cantina.name(), "Cantina");
/// ```
#[derive(Debug, Clone)]
pub struct Cantina {
    engine: Arc<SearchEngine>,
    /// IDF table compiled once at construction: Cantina weighs every
    /// classified page against the same frozen corpus, so the logarithms
    /// are precomputed instead of re-derived per page (bit-identical
    /// scores, see [`kyp_text::tfidf::Corpus::prepare`]).
    df: PreparedCorpus,
    signature_len: usize,
    top_hits: usize,
}

impl Cantina {
    /// Creates a Cantina instance over a search engine and a document-
    /// frequency corpus (built from crawled legitimate pages).
    pub fn new(engine: Arc<SearchEngine>, df: TfIdfCorpus) -> Self {
        Cantina {
            engine,
            df: df.prepare(),
            signature_len: 5,
            top_hits: 10,
        }
    }

    /// The page's TF-IDF signature terms.
    pub fn signature(&self, page: &VisitedPage) -> Vec<String> {
        let doc = format!("{} {}", page.title, page.text);
        self.df
            .top_terms(&doc, self.signature_len)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }
}

impl BaselineDetector for Cantina {
    fn name(&self) -> &'static str {
        "Cantina"
    }

    /// 0.0 when the page's own RDN comes back for its signature query,
    /// 1.0 otherwise. Pages with no extractable signature score 1.0
    /// (Cantina's well-known weakness on text-poor pages).
    fn score(&self, page: &VisitedPage) -> f64 {
        let signature = self.signature(page);
        if signature.is_empty() {
            return 1.0;
        }
        let own_rdns: Vec<String> = [&page.starting_url, &page.landing_url]
            .into_iter()
            .filter_map(kyp_url::Url::rdn)
            .collect();
        let hits = self.engine.query(&signature, self.top_hits);
        let confirmed = hits.iter().any(|h| own_rdns.contains(&h.rdn));
        if confirmed {
            0.0
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{legit, phish};

    fn cantina() -> Cantina {
        let mut df = TfIdfCorpus::new();
        for _ in 0..20 {
            df.add_document("the welcome account sign with your");
        }
        df.add_document("paypago wallet money");
        let mut engine = SearchEngine::new();
        engine.index_page(
            "paypago.com",
            "paypago",
            "paypago wallet send money payments paypago account",
        );
        engine.index_page("news.com", "news", "daily news and weather");
        Cantina::new(Arc::new(engine), df)
    }

    #[test]
    fn legit_page_confirmed_by_own_domain() {
        let c = cantina();
        assert_eq!(c.score(&legit()), 0.0);
        assert!(!c.is_phish(&legit()));
    }

    #[test]
    fn phish_not_confirmed() {
        let c = cantina();
        assert_eq!(c.score(&phish()), 1.0);
        assert!(c.is_phish(&phish()));
    }

    #[test]
    fn signature_contains_distinctive_terms() {
        let c = cantina();
        let sig = c.signature(&legit());
        assert!(sig.contains(&"paypago".to_string()), "{sig:?}");
    }

    #[test]
    fn empty_text_scores_phish() {
        let mut p = phish();
        p.text = String::new();
        p.title = String::new();
        let c = cantina();
        assert_eq!(c.score(&p), 1.0);
    }
}
