#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! A search-engine substrate for the *Know Your Phish* target
//! identification component.
//!
//! The paper's target identifier (Section V-B) queries a web search engine
//! with keyterms and inspects the registered domain names (RDNs) of the
//! results, under the assumption that *a search engine does not return a
//! phishing site as a top hit* — fresh phish are not yet indexed, old
//! phish are already blacklisted.
//!
//! Offline we realise that assumption literally: [`SearchEngine`] is an
//! inverted index with TF-IDF ranking over the **legitimate** corpus only.
//! The query interface matches what the identification process needs:
//! keyterm queries returning ranked RDNs ([`SearchEngine::query`]) and
//! domain-guess lookups ([`SearchEngine::query_domain`], paper Step 1).
//!
//! # Examples
//!
//! ```
//! use kyp_search::SearchEngine;
//!
//! let mut engine = SearchEngine::new();
//! engine.index_page("bankofamerica.com", "bankofamerica",
//!                   "bank of america sign in online banking america");
//! engine.index_page("weather.com", "weather", "weather forecast rain sun");
//!
//! let hits = engine.query(&["bank".into(), "america".into()], 3);
//! assert_eq!(hits[0].rdn, "bankofamerica.com");
//! ```

use kyp_text::extract_terms;
use std::collections::{BTreeMap, HashMap};

/// One search result: a registered domain with its relevance score.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Registered domain name of the result, e.g. `bankofamerica.com`.
    pub rdn: String,
    /// Main level domain of the result, e.g. `bankofamerica`.
    pub mld: String,
    /// TF-IDF relevance score (higher is better).
    pub score: f64,
}

#[derive(Debug, Clone)]
struct DocInfo {
    rdn: String,
    mld: String,
    norm: f64,
}

/// An inverted-index search engine over indexed pages.
///
/// See the [crate docs](crate) for the role this plays and an example.
#[derive(Debug, Clone, Default)]
pub struct SearchEngine {
    docs: Vec<DocInfo>,
    /// term → (document id, term frequency) postings. A hash map is fine
    /// here (kyp-lint D01 permits keyed lookup): postings are only ever
    /// read by key, and each list is in document-id order by
    /// construction.
    postings: HashMap<String, Vec<(u32, f64)>>,
}

impl SearchEngine {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes one page: its RDN, mld and searchable text (title, body,
    /// domain terms — whatever the caller deems visible to a crawler).
    pub fn index_page(&mut self, rdn: &str, mld: &str, text: &str) {
        let id = self.docs.len() as u32;
        // Ordered map (kyp-lint D01): the norm below is a float sum over
        // the values — summation order must not depend on hash order, or
        // scores drift across processes.
        let mut tf: BTreeMap<String, f64> = BTreeMap::new();
        // Domain terms are searchable too, like a real engine.
        for term in extract_terms(text).into_iter().chain(extract_terms(rdn)) {
            *tf.entry(term).or_insert(0.0) += 1.0;
        }
        // kyp-lint: allow(D06) — summed over BTreeMap values, whose order is deterministic
        let norm = tf.values().map(|c| c * c).sum::<f64>().sqrt().max(1.0);
        for (term, count) in tf {
            self.postings.entry(term).or_default().push((id, count));
        }
        self.docs.push(DocInfo {
            rdn: rdn.to_owned(),
            mld: mld.to_owned(),
            norm,
        });
    }

    /// Number of indexed pages.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    fn idf(&self, term: &str) -> f64 {
        let df = self.postings.get(term).map_or(0, Vec::len) as f64;
        let n = self.docs.len() as f64;
        ((1.0 + n) / (1.0 + df)).ln() + 1.0
    }

    /// Queries the index with keyterms, returning the top-`k` distinct
    /// RDNs by TF-IDF cosine score (paper Steps 2–4).
    pub fn query(&self, terms: &[String], k: usize) -> Vec<SearchHit> {
        // Ordered map (kyp-lint D01): iterated into the ranked hit list.
        let mut scores: BTreeMap<u32, f64> = BTreeMap::new();
        for term in terms {
            let idf = self.idf(term);
            if let Some(post) = self.postings.get(term.as_str()) {
                for &(doc, tf) in post {
                    *scores.entry(doc).or_insert(0.0) += tf * idf * idf;
                }
            }
        }
        let mut scored: Vec<(u32, f64)> = scores
            .into_iter()
            .map(|(d, s)| (d, s / self.docs[d as usize].norm))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    self.docs[a.0 as usize]
                        .rdn
                        .cmp(&self.docs[b.0 as usize].rdn)
                })
        });
        let mut hits: Vec<SearchHit> = Vec::new();
        for (doc, score) in scored {
            let info = &self.docs[doc as usize];
            if hits.iter().any(|h| h.rdn == info.rdn) {
                continue;
            }
            hits.push(SearchHit {
                rdn: info.rdn.clone(),
                mld: info.mld.clone(),
                score,
            });
            if hits.len() >= k {
                break;
            }
        }
        hits
    }

    /// Looks up a guessed domain (paper Step 1): returns hits whose RDN or
    /// mld matches the guess's registrable part.
    ///
    /// The guess may be a bare FQDN like `bankofamerica.com` or
    /// `www.bankofamerica.com`.
    pub fn query_domain(&self, guess: &str, k: usize) -> Vec<SearchHit> {
        let guess = guess.trim().trim_end_matches('.').to_ascii_lowercase();
        let guess_mld = guess
            .rsplit('.')
            .nth(1)
            .unwrap_or(guess.as_str())
            .to_owned();
        let mut hits = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for info in &self.docs {
            let matched = guess == info.rdn
                || guess.ends_with(&format!(".{}", info.rdn))
                || info.mld == guess_mld
                || info.mld == guess;
            if matched && seen.insert(info.rdn.clone()) {
                hits.push(SearchHit {
                    rdn: info.rdn.clone(),
                    mld: info.mld.clone(),
                    score: 1.0,
                });
                if hits.len() >= k {
                    break;
                }
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SearchEngine {
        let mut e = SearchEngine::new();
        e.index_page(
            "bankofamerica.com",
            "bankofamerica",
            "bank of america online banking sign in secure america bank",
        );
        e.index_page(
            "paypal.com",
            "paypal",
            "paypal send money online payments account login",
        );
        e.index_page("weather.com", "weather", "weather forecast rain sun cloud");
        e
    }

    #[test]
    fn keyterm_query_ranks_relevant_site_first() {
        let e = engine();
        let hits = e.query(&["bank".into(), "america".into(), "banking".into()], 3);
        assert_eq!(hits[0].rdn, "bankofamerica.com");
        assert_eq!(hits[0].mld, "bankofamerica");
    }

    #[test]
    fn unrelated_terms_return_nothing() {
        let e = engine();
        assert!(e.query(&["zebra".into()], 3).is_empty());
        assert!(e.query(&[], 3).is_empty());
    }

    #[test]
    fn distinctive_term_beats_common_term() {
        let mut e = SearchEngine::new();
        e.index_page("a.com", "a", "login login login login paypal");
        e.index_page("b.com", "b", "login");
        e.index_page("c.com", "c", "login");
        let hits = e.query(&["paypal".into()], 2);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rdn, "a.com");
    }

    #[test]
    fn query_domain_exact_and_fqdn() {
        let e = engine();
        let hits = e.query_domain("bankofamerica.com", 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rdn, "bankofamerica.com");
        let www = e.query_domain("www.paypal.com", 3);
        assert_eq!(www[0].rdn, "paypal.com");
    }

    #[test]
    fn query_domain_matches_mld_across_tld() {
        let e = engine();
        // A guess with the wrong TLD still surfaces the brand site.
        let hits = e.query_domain("paypal.net", 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rdn, "paypal.com");
    }

    #[test]
    fn query_domain_unknown() {
        let e = engine();
        assert!(e.query_domain("totally-unknown.xyz", 3).is_empty());
    }

    #[test]
    fn multiple_pages_same_rdn_dedup() {
        let mut e = SearchEngine::new();
        e.index_page("x.com", "x", "alpha beta");
        e.index_page("x.com", "x", "alpha gamma");
        let hits = e.query(&["alpha".into()], 5);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn domain_terms_are_searchable() {
        let mut e = SearchEngine::new();
        e.index_page("stripebank.io", "stripebank", "welcome to our site");
        let hits = e.query(&["stripebank".into()], 3);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn duplicate_query_terms_do_not_double_count_ranking() {
        // Repeating a query term scores it twice, but ordering against a
        // clearly better document must not flip.
        let e = engine();
        let once = e.query(&["bank".into(), "america".into()], 3);
        let dup = e.query(&["bank".into(), "bank".into(), "america".into()], 3);
        assert_eq!(once[0].rdn, dup[0].rdn);
    }

    #[test]
    fn scores_are_positive_and_ordered() {
        let e = engine();
        let hits = e.query(&["online".into(), "account".into()], 5);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(hits.iter().all(|h| h.score > 0.0));
    }

    #[test]
    fn empty_engine_is_silent() {
        let e = SearchEngine::new();
        assert!(e.is_empty());
        assert!(e.query(&["anything".into()], 5).is_empty());
        assert!(e.query_domain("paypago.com", 5).is_empty());
    }

    #[test]
    fn query_domain_trailing_dot_and_case() {
        let e = engine();
        assert_eq!(e.query_domain("PayPal.COM.", 3).len(), 1);
    }

    #[test]
    fn k_limits_results() {
        let mut e = SearchEngine::new();
        for i in 0..10 {
            e.index_page(
                &format!("site{i}.com"),
                &format!("site{i}"),
                "common word here",
            );
        }
        assert_eq!(e.query(&["common".into()], 3).len(), 3);
        assert_eq!(e.len(), 10);
    }
}
