//! Classification metrics: the quantities reported in the paper's Tables
//! VI and VII (precision, recall, F1, false-positive rate, AUC) and the
//! curves of Figs. 3–5 (precision-recall and ROC).

use serde::{Deserialize, Serialize};

/// A binary confusion matrix; positives are phishing pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Phish classified as phish.
    pub tp: usize,
    /// Legitimate classified as phish (the costly error).
    pub fp: usize,
    /// Legitimate classified as legitimate.
    pub tn: usize,
    /// Phish classified as legitimate.
    pub fn_: usize,
}

impl Confusion {
    /// Builds a confusion matrix from scores at a discrimination
    /// threshold: `score >= threshold` predicts phishing.
    pub fn at_threshold(scores: &[f64], labels: &[bool], threshold: f64) -> Self {
        assert_eq!(scores.len(), labels.len());
        let mut c = Confusion::default();
        for (&s, &y) in scores.iter().zip(labels) {
            match (s >= threshold, y) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision: `tp / (tp + fp)`; 1.0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall (true-positive rate): `tp / (tp + fn)`; 1.0 without positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score: the harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-positive rate: `fp / (fp + tn)`; 0.0 without negatives.
    pub fn fpr(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            0.0
        } else {
            self.fp as f64 / denom as f64
        }
    }

    /// Accuracy: `(tp + tn) / total`.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Total number of scored examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }
}

/// The ROC curve: `(fpr, tpr)` points for decreasing thresholds, starting
/// at `(0, 0)` and ending at `(1, 1)` (Fig. 4 / Fig. 5 of the paper).
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<(f64, f64)> {
    assert_eq!(scores.len(), labels.len());
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return vec![(0.0, 0.0), (1.0, 1.0)];
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut curve = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        // Process ties in one block so the curve is threshold-consistent.
        let s = scores[order[i]];
        while i < order.len() && scores[order[i]] == s {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push((fp as f64 / neg as f64, tp as f64 / pos as f64));
    }
    curve
}

/// Area under the ROC curve via the Mann-Whitney statistic (ties counted
/// half). Returns 0.5 when one class is absent.
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Rank-based computation, O(n log n).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let s = scores[order[i]];
        let start = i;
        while i < order.len() && scores[order[i]] == s {
            i += 1;
        }
        // Average rank for the tie block (1-based ranks).
        let avg_rank = (start + 1 + i) as f64 / 2.0;
        for &idx in &order[start..i] {
            if labels[idx] {
                // kyp-lint: allow(D06) — ranks accumulate in the sorted score order, which is deterministic
                rank_sum_pos += avg_rank;
            }
        }
    }
    let pos_f = pos as f64;
    let neg_f = neg as f64;
    (rank_sum_pos - pos_f * (pos_f + 1.0) / 2.0) / (pos_f * neg_f)
}

/// Precision-recall points for decreasing thresholds (Fig. 3).
pub fn precision_recall_curve(scores: &[f64], labels: &[bool]) -> Vec<(f64, f64)> {
    assert_eq!(scores.len(), labels.len());
    let pos = labels.iter().filter(|&&l| l).count();
    if pos == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut curve = Vec::new();
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let s = scores[order[i]];
        while i < order.len() && scores[order[i]] == s {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / pos as f64;
        curve.push((precision, recall));
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_basic() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let labels = [true, false, true, false];
        let c = Confusion::at_threshold(&scores, &labels, 0.7);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
        assert_eq!(c.fpr(), 0.5);
        assert_eq!(c.accuracy(), 0.5);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn perfect_classifier() {
        let scores = [1.0, 1.0, 0.0, 0.0];
        let labels = [true, true, false, false];
        let c = Confusion::at_threshold(&scores, &labels, 0.5);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(auc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_classifier_auc_zero() {
        let scores = [0.0, 0.0, 1.0, 1.0];
        let labels = [true, true, false, false];
        assert_eq!(auc(&scores, &labels), 0.0);
    }

    #[test]
    fn random_scores_auc_half_with_ties() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert_eq!(auc(&scores, &labels), 0.5);
    }

    #[test]
    fn auc_matches_trapezoid_on_roc() {
        let scores = [0.9, 0.7, 0.6, 0.55, 0.4, 0.2];
        let labels = [true, true, false, true, false, false];
        let curve = roc_curve(&scores, &labels);
        let mut trap = 0.0;
        for w in curve.windows(2) {
            trap += (w[1].0 - w[0].0) * (w[1].1 + w[0].1) / 2.0;
        }
        assert!((auc(&scores, &labels) - trap).abs() < 1e-12);
    }

    #[test]
    fn roc_starts_and_ends_correctly() {
        let scores = [0.8, 0.6, 0.4, 0.2];
        let labels = [true, false, true, false];
        let curve = roc_curve(&scores, &labels);
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
        // Monotone in both coordinates.
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn degenerate_single_class() {
        let scores = [0.5, 0.6];
        let labels = [true, true];
        assert_eq!(auc(&scores, &labels), 0.5);
        assert_eq!(roc_curve(&scores, &labels), vec![(0.0, 0.0), (1.0, 1.0)]);
        let c = Confusion::at_threshold(&scores, &labels, 0.7);
        assert_eq!(c.fpr(), 0.0);
    }

    #[test]
    fn pr_curve_recall_reaches_one() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let labels = [true, false, true, false];
        let curve = precision_recall_curve(&scores, &labels);
        assert_eq!(curve.last().map(|p| p.1), Some(1.0));
        // First point: only the top score predicted positive → precision 1.
        assert_eq!(curve.first(), Some(&(1.0, 0.5)));
    }

    #[test]
    fn empty_inputs() {
        let c = Confusion::at_threshold(&[], &[], 0.5);
        assert_eq!(c.total(), 0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
        assert!(precision_recall_curve(&[], &[]).is_empty());
    }

    #[test]
    fn threshold_inclusive() {
        let c = Confusion::at_threshold(&[0.7], &[true], 0.7);
        assert_eq!(c.tp, 1, "score == threshold predicts positive");
    }
}
