//! Compiled, cache-friendly GBM inference: the hot-path twin of
//! [`GradientBoosting`].
//!
//! The boosting model stores each tree as a `Vec` of boxed-enum nodes —
//! ideal for fitting, terrible for scoring: every step of a traversal
//! chases a pointer into a heterogeneous allocation and branches on the
//! enum tag. [`FlatModel`] compiles the whole ensemble once into
//! structure-of-arrays node tables (`feature`, `threshold`, packed child
//! references with a leaf tag bit) laid out in depth-first order, so a
//! traversal touches three small parallel arrays that stay resident in
//! L1/L2 across rows and trees.
//!
//! Scoring is **bit-identical** to the boxed walk: compilation copies
//! thresholds and leaf values verbatim, the comparison direction is
//! preserved (`x <= t` goes left, NaN goes right), and the per-row
//! accumulation order (base score, then trees in boosting order, each
//! scaled by the learning rate) is exactly the order
//! [`GradientBoosting::decision_function`] uses. The equivalence is
//! enforced by property tests in `tests/flat_equivalence.rs`.

use crate::gbm::sigmoid;
use crate::tree::Node;
use crate::GradientBoosting;

/// High bit of a packed child reference: set when the reference points
/// into the leaf-value table instead of the node tables.
const LEAF_BIT: u32 = 1 << 31;

/// Rows per block in [`FlatModel::predict_batch`]: small enough that a
/// block's accumulators live in L1, large enough to amortise streaming
/// the node tables once per tree per block.
const BATCH_BLOCK: usize = 64;

/// A gradient-boosting ensemble compiled for inference.
///
/// Produced by [`GradientBoosting::compile`]; immutable afterwards. All
/// trees share four parallel arrays indexed by node id, nodes of one tree
/// are contiguous in depth-first order, and leaves live in a separate
/// value table addressed through tagged child references.
///
/// # Examples
///
/// ```
/// use kyp_ml::{Dataset, GbmParams, GradientBoosting};
///
/// let mut data = Dataset::new(2);
/// for i in 0..200 {
///     let v = i as f64 / 100.0;
///     data.push_row(&[v, -v], v > 1.0);
/// }
/// let model = GradientBoosting::fit(&data, &GbmParams::default());
/// let flat = model.compile();
/// let probe = [1.8, -1.8];
/// assert_eq!(
///     flat.predict_proba(&probe).to_bits(),
///     model.predict_proba(&probe).to_bits()
/// );
/// ```
#[derive(Debug, Clone)]
pub struct FlatModel {
    n_features: usize,
    base_score: f64,
    learning_rate: f64,
    /// Per-tree root references, packed like child references (a
    /// single-leaf tree's root points straight into `leaf_values`).
    roots: Vec<u32>,
    /// Split feature per internal node.
    feature: Vec<u32>,
    /// Split threshold per internal node: `x <= threshold` goes left.
    threshold: Vec<f64>,
    /// Packed `[left, right]` child references per internal node.
    children: Vec<[u32; 2]>,
    /// Leaf values, addressed by `reference & !LEAF_BIT`.
    leaf_values: Vec<f64>,
}

impl FlatModel {
    /// Compiles the ensemble of `model` into flat node tables.
    pub(crate) fn compile(model: &GradientBoosting) -> Self {
        let mut flat = FlatModel {
            n_features: model.n_features(),
            base_score: model.base_score(),
            learning_rate: model.learning_rate(),
            roots: Vec::with_capacity(model.n_trees()),
            feature: Vec::new(),
            threshold: Vec::new(),
            children: Vec::new(),
            leaf_values: Vec::new(),
        };
        for tree in model.trees() {
            let root = flat.compile_node(tree.nodes(), 0);
            flat.roots.push(root);
        }
        flat
    }

    /// Recursively lays node `idx` of `nodes` out depth-first, returning
    /// its packed reference.
    fn compile_node(&mut self, nodes: &[Node], idx: usize) -> u32 {
        // kyp-lint: allow(P02) — child indices are range-checked by RegressionTree::validate before untrusted models reach compilation
        match &nodes[idx] {
            Node::Leaf { value } => {
                let slot = self.leaf_values.len() as u32;
                debug_assert!(slot & LEAF_BIT == 0, "leaf table overflow");
                self.leaf_values.push(*value);
                slot | LEAF_BIT
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
                ..
            } => {
                let slot = self.feature.len();
                debug_assert!((slot as u32) & LEAF_BIT == 0, "node table overflow");
                self.feature.push(*feature as u32);
                self.threshold.push(*threshold);
                self.children.push([0, 0]); // patched below
                let l = self.compile_node(nodes, *left);
                let r = self.compile_node(nodes, *right);
                // kyp-lint: allow(P02) — slot was pushed into `children` a few lines up
                self.children[slot] = [l, r];
                slot as u32
            }
        }
    }

    /// Number of features the compiled model expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of trees in the compiled ensemble.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total internal (split) nodes across all trees.
    pub fn node_count(&self) -> usize {
        self.feature.len()
    }

    /// Total leaves across all trees.
    pub fn leaf_count(&self) -> usize {
        self.leaf_values.len()
    }

    /// Walks one tree for one row, returning the leaf value.
    #[inline]
    fn tree_leaf(&self, mut node: u32, row: &[f64]) -> f64 {
        while node & LEAF_BIT == 0 {
            let i = node as usize;
            // `x <= t` goes left; NaN fails the comparison and goes right,
            // exactly like the boxed walk.
            // kyp-lint: allow(P02) — node tables are compiled from validated trees; bounds hold by construction on the hot path
            let go_left = row[self.feature[i] as usize] <= self.threshold[i];
            node = self.children[i][usize::from(!go_left)]; // kyp-lint: allow(P02) — compiled in bounds, as above
        }
        // kyp-lint: allow(P02) — leaf references are compiled in bounds, same argument as above
        self.leaf_values[(node & !LEAF_BIT) as usize]
    }

    /// The raw (log-odds) score of a feature vector — bit-identical to
    /// [`GradientBoosting::decision_function`].
    pub fn decision_function(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.n_features);
        let mut score = self.base_score;
        for &root in &self.roots {
            score += self.learning_rate * self.tree_leaf(root, row);
        }
        score
    }

    /// The confidence in `[0, 1]` that the row is positive — bit-identical
    /// to [`GradientBoosting::predict_proba`].
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        sigmoid(self.decision_function(row))
    }

    /// Confidence scores for a batch of rows, walked batch-major: each
    /// block of [`BATCH_BLOCK`] rows is carried through all trees together
    /// so the node tables are streamed once per tree per block instead of
    /// once per tree per row.
    ///
    /// Element `i` is bit-identical to `predict_proba(&rows[i])`: the
    /// per-row accumulation order (base, then trees in order) is
    /// unchanged; only the loop nest is tiled.
    pub fn predict_batch<R: AsRef<[f64]>>(&self, rows: &[R]) -> Vec<f64> {
        let mut out = vec![self.base_score; rows.len()];
        for (block, scores) in rows.chunks(BATCH_BLOCK).zip(out.chunks_mut(BATCH_BLOCK)) {
            for &root in &self.roots {
                for (row, score) in block.iter().zip(scores.iter_mut()) {
                    *score += self.learning_rate * self.tree_leaf(root, row.as_ref());
                }
            }
        }
        for score in &mut out {
            *score = sigmoid(*score);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Dataset, GbmParams, GradientBoosting};

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..n {
            let x = (i % 100) as f64 / 100.0;
            let y = ((i * 13) % 7) as f64;
            d.push_row(&[x, y, x * y], x > 0.5);
        }
        d
    }

    #[test]
    fn compiled_layout_is_complete() {
        let d = toy(300);
        let m = GradientBoosting::fit(&d, &GbmParams::default());
        let flat = m.compile();
        assert_eq!(flat.n_trees(), m.n_trees());
        assert_eq!(flat.n_features(), m.n_features());
        // Every tree contributes internal nodes + leaves == node_count.
        assert!(flat.leaf_count() > flat.n_trees() - 1);
        assert!(flat.node_count() > 0);
    }

    #[test]
    fn pointwise_matches_boxed_walk() {
        let d = toy(400);
        let m = GradientBoosting::fit(&d, &GbmParams::default());
        let flat = m.compile();
        for i in 0..d.len() {
            let row = d.row(i);
            assert_eq!(
                flat.decision_function(row).to_bits(),
                m.decision_function(row).to_bits(),
                "row {i}"
            );
            assert_eq!(
                flat.predict_proba(row).to_bits(),
                m.predict_proba(row).to_bits(),
                "row {i}"
            );
        }
    }

    #[test]
    fn batch_matches_pointwise_at_odd_sizes() {
        let d = toy(257); // not a multiple of the block size
        let m = GradientBoosting::fit(
            &d,
            &GbmParams {
                n_trees: 30,
                ..GbmParams::default()
            },
        );
        let flat = m.compile();
        let rows: Vec<Vec<f64>> = (0..d.len()).map(|i| d.row(i).to_vec()).collect();
        let batch = flat.predict_batch(&rows);
        assert_eq!(batch.len(), rows.len());
        for (i, (row, got)) in rows.iter().zip(&batch).enumerate() {
            assert_eq!(got.to_bits(), m.predict_proba(row).to_bits(), "row {i}");
        }
    }

    #[test]
    fn single_leaf_trees_compile() {
        // Depth-0 trees: every root is a leaf reference.
        let d = toy(200);
        let m = GradientBoosting::fit(
            &d,
            &GbmParams {
                n_trees: 5,
                max_depth: 0,
                ..GbmParams::default()
            },
        );
        let flat = m.compile();
        assert_eq!(flat.node_count(), 0);
        assert_eq!(flat.leaf_count(), 5);
        let probe = [0.3, 2.0, 0.6];
        assert_eq!(
            flat.predict_proba(&probe).to_bits(),
            m.predict_proba(&probe).to_bits()
        );
    }

    #[test]
    fn empty_batch() {
        let d = toy(200);
        let m = GradientBoosting::fit(&d, &GbmParams::default());
        let flat = m.compile();
        let rows: Vec<Vec<f64>> = Vec::new();
        assert!(flat.predict_batch(&rows).is_empty());
    }
}
