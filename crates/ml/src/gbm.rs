//! Stochastic gradient boosting with logistic loss (Friedman 2002), the
//! classifier of the paper's Section IV-C.

use crate::tree::{BinnedMatrix, TreeParams};
use crate::{Dataset, RegressionTree};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`GradientBoosting`].
///
/// The defaults are tuned for the paper's regime: a few thousand training
/// examples and ~200 features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbmParams {
    /// Number of boosting iterations (trees).
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum examples per leaf.
    pub min_samples_leaf: usize,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// L2 regularisation on leaf values.
    pub lambda: f64,
    /// Row subsampling fraction per iteration (the "stochastic" in
    /// stochastic gradient boosting).
    pub subsample: f64,
    /// Column subsampling fraction per tree.
    pub colsample: f64,
    /// RNG seed for subsampling (fits are deterministic given a seed).
    pub seed: u64,
}

impl Default for GbmParams {
    fn default() -> Self {
        GbmParams {
            n_trees: 150,
            learning_rate: 0.1,
            max_depth: 4,
            min_samples_leaf: 5,
            min_child_weight: 1e-3,
            lambda: 1.0,
            subsample: 0.8,
            colsample: 0.8,
            seed: 42,
        }
    }
}

/// A fitted gradient-boosting classifier.
///
/// Outputs a confidence in `[0, 1]` that an instance belongs to the
/// positive (phishing) class; the paper compares this against a
/// discrimination threshold of 0.7, favouring the legitimate class.
///
/// # Examples
///
/// See the [crate docs](crate) for a full fit/predict example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoosting {
    trees: Vec<RegressionTree>,
    base_score: f64,
    learning_rate: f64,
    n_features: usize,
}

impl GradientBoosting {
    /// Fits a model on `data`.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or contains a single class only.
    pub fn fit(data: &Dataset, params: &GbmParams) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let pos = data.positives();
        let neg = data.negatives();
        assert!(
            pos > 0 && neg > 0,
            "training data must contain both classes (got {pos} positive, {neg} negative)"
        );

        let n = data.len();
        let binned = BinnedMatrix::build(data);
        let base_score = (pos as f64 / neg as f64).ln();
        let mut raw: Vec<f64> = vec![base_score; n];
        let mut grads = vec![0.0; n];
        let mut hess = vec![0.0; n];
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        let pool = kyp_exec::pool();
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_samples_leaf: params.min_samples_leaf,
            min_child_weight: params.min_child_weight,
            lambda: params.lambda,
        };

        let mut all_rows: Vec<u32> = (0..n as u32).collect();
        let mut all_cols: Vec<usize> = (0..data.n_features()).collect();
        let row_take = ((n as f64 * params.subsample).round() as usize).clamp(1, n);
        let col_take = ((data.n_features() as f64 * params.colsample).round() as usize)
            .clamp(1, data.n_features());

        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            // Logistic loss: p = σ(raw); g = p - y; h = p (1 - p).
            for i in 0..n {
                let p = sigmoid(raw[i]);
                let y = f64::from(data.label(i));
                grads[i] = p - y;
                hess[i] = (p * (1.0 - p)).max(1e-9);
            }
            all_rows.shuffle(&mut rng);
            let rows = &mut all_rows[..row_take];
            all_cols.shuffle(&mut rng);
            let mut cols = all_cols[..col_take].to_vec();
            cols.sort_unstable();

            let tree = RegressionTree::fit_with_grad(
                &binned,
                &grads,
                &hess,
                rows,
                &tree_params,
                Some(&cols),
                &pool,
            );
            // Update raw scores for every row (not just the subsample),
            // traversing the already-built BinnedMatrix instead of
            // re-binning each raw feature vector against thresholds.
            tree.add_predictions_binned(&binned, params.learning_rate, &mut raw, &pool);
            trees.push(tree);
        }

        GradientBoosting {
            trees,
            base_score,
            learning_rate: params.learning_rate,
            n_features: data.n_features(),
        }
    }

    /// Fits with early stopping: after each boosting round the validation
    /// log-loss is measured; training stops once it has not improved for
    /// `patience` consecutive rounds, and the ensemble is truncated to its
    /// best round. Guards the small-training-set regime the paper targets
    /// against overfitting.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GradientBoosting::fit`], or
    /// when `valid` is empty or has a different feature count.
    pub fn fit_with_early_stopping(
        train: &Dataset,
        valid: &Dataset,
        params: &GbmParams,
        patience: usize,
    ) -> Self {
        assert!(!valid.is_empty(), "validation set must not be empty");
        assert_eq!(train.n_features(), valid.n_features());
        let mut model = Self::fit(train, params);

        // Replay the ensemble on the validation set, tracking loss.
        let mut raw: Vec<f64> = vec![model.base_score; valid.len()];
        let mut best_loss = f64::INFINITY;
        let mut best_round = 0usize;
        for (round, tree) in model.trees.iter().enumerate() {
            for (i, r) in raw.iter_mut().enumerate() {
                *r += model.learning_rate * tree.predict(valid.row(i));
            }
            let loss = log_loss(&raw, valid.labels());
            if loss < best_loss - 1e-9 {
                best_loss = loss;
                best_round = round + 1;
            } else if round + 1 - best_round >= patience {
                break;
            }
        }
        model.trees.truncate(best_round.max(1));
        model
    }

    /// The raw (log-odds) score of a feature vector.
    pub fn decision_function(&self, features: &[f64]) -> f64 {
        debug_assert_eq!(features.len(), self.n_features);
        let mut score = self.base_score;
        for tree in &self.trees {
            score += self.learning_rate * tree.predict(features);
        }
        score
    }

    /// The confidence in `[0, 1]` that the instance is positive (phishing).
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        sigmoid(self.decision_function(features))
    }

    /// Class prediction at a discrimination threshold (the paper uses 0.7).
    pub fn predict(&self, features: &[f64], threshold: f64) -> bool {
        self.predict_proba(features) >= threshold
    }

    /// Confidence scores for every row of a dataset.
    ///
    /// The ensemble is compiled to a [`crate::FlatModel`] once, then rows
    /// are scored in parallel on the default [`kyp_exec`] pool; the result
    /// is bit-identical to mapping [`GradientBoosting::predict_proba`]
    /// over the rows serially.
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<f64> {
        let flat = self.compile();
        kyp_exec::pool().par_map_index(data.len(), |i| flat.predict_proba(data.row(i)))
    }

    /// Compiles the ensemble into a [`crate::FlatModel`] for
    /// cache-friendly inference. Scoring through the compiled model is
    /// bit-identical to [`GradientBoosting::predict_proba`].
    pub fn compile(&self) -> crate::FlatModel {
        crate::FlatModel::compile(self)
    }

    /// Structural validation of the ensemble, for models deserialized
    /// from untrusted artifacts (a hand-edited or corrupted snapshot
    /// can otherwise drive the unchecked tree walks of
    /// [`RegressionTree::predict`] and [`crate::FlatModel`] out of
    /// bounds). Models produced by [`GradientBoosting::fit`] pass by
    /// construction.
    ///
    /// # Errors
    ///
    /// Describes the first malformed tree: an out-of-range child or
    /// feature index, a node cycle, or a non-finite threshold.
    pub fn validate(&self) -> Result<(), String> {
        for (t, tree) in self.trees.iter().enumerate() {
            tree.validate(self.n_features)
                .map_err(|e| format!("tree {t}: {e}"))?;
        }
        Ok(())
    }

    /// The fitted trees, in boosting order (for compilation).
    pub(crate) fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// The prior log-odds every score starts from (for compilation).
    pub(crate) fn base_score(&self) -> f64 {
        self.base_score
    }

    /// The shrinkage applied to each tree (for compilation).
    pub(crate) fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features the model was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total split gain per feature, normalised to sum to 1.
    ///
    /// The paper (Section VII-A) discusses which feature groups carry the
    /// signal; this is the hook for that analysis.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for tree in &self.trees {
            tree.accumulate_importance(&mut imp);
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

#[inline]
pub(crate) fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Mean logistic loss of raw scores against labels.
fn log_loss(raw: &[f64], labels: &[bool]) -> f64 {
    let mut total = 0.0;
    for (&r, &y) in raw.iter().zip(labels) {
        let p = sigmoid(r).clamp(1e-12, 1.0 - 1e-12);
        total -= if y { p.ln() } else { (1.0 - p).ln() };
    }
    total / raw.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BinnedMatrix;

    fn toy(n: usize, noise: bool) -> Dataset {
        // Two informative features + one constant.
        let mut d = Dataset::new(3);
        for i in 0..n {
            let x = (i % 100) as f64 / 100.0;
            let label = if noise && i % 17 == 0 {
                x <= 0.5
            } else {
                x > 0.5
            };
            d.push_row(&[x, 1.0 - x, 7.0], label);
        }
        d
    }

    #[test]
    fn learns_separable_problem() {
        let d = toy(500, false);
        let m = GradientBoosting::fit(&d, &GbmParams::default());
        assert!(m.predict_proba(&[0.9, 0.1, 7.0]) > 0.9);
        assert!(m.predict_proba(&[0.1, 0.9, 7.0]) < 0.1);
        assert!(m.predict(&[0.95, 0.05, 7.0], 0.7));
        assert!(!m.predict(&[0.05, 0.95, 7.0], 0.7));
    }

    #[test]
    fn tolerates_label_noise() {
        let d = toy(1000, true);
        let m = GradientBoosting::fit(&d, &GbmParams::default());
        assert!(m.predict_proba(&[0.95, 0.05, 7.0]) > 0.7);
        assert!(m.predict_proba(&[0.05, 0.95, 7.0]) < 0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = toy(300, true);
        let p = GbmParams {
            seed: 7,
            ..GbmParams::default()
        };
        let a = GradientBoosting::fit(&d, &p);
        let b = GradientBoosting::fit(&d, &p);
        let probe = [0.3, 0.7, 7.0];
        assert_eq!(a.predict_proba(&probe), b.predict_proba(&probe));
    }

    #[test]
    fn different_seeds_differ() {
        let d = toy(300, true);
        let a = GradientBoosting::fit(
            &d,
            &GbmParams {
                seed: 1,
                ..Default::default()
            },
        );
        let b = GradientBoosting::fit(
            &d,
            &GbmParams {
                seed: 2,
                ..Default::default()
            },
        );
        let probe = [0.49, 0.51, 7.0];
        // Not a strict requirement, but with stochastic subsampling the raw
        // scores should essentially never coincide exactly.
        assert_ne!(
            a.decision_function(&probe).to_bits(),
            b.decision_function(&probe).to_bits()
        );
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let d = toy(200, true);
        let m = GradientBoosting::fit(&d, &GbmParams::default());
        for (row, _) in d.iter() {
            let p = m.predict_proba(row);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn importance_ignores_constant_feature() {
        let d = toy(500, false);
        let m = GradientBoosting::fit(&d, &GbmParams::default());
        let imp = m.feature_importance();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(imp[2], 0.0, "constant feature has zero importance");
        assert!(imp[0] + imp[1] > 0.99);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let mut d = Dataset::new(1);
        d.push_row(&[1.0], true);
        d.push_row(&[2.0], true);
        GradientBoosting::fit(&d, &GbmParams::default());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        GradientBoosting::fit(&Dataset::new(1), &GbmParams::default());
    }

    #[test]
    fn early_stopping_never_beats_budget() {
        let train = toy(400, true);
        let valid = toy(200, true);
        let full = GradientBoosting::fit(&train, &GbmParams::default());
        let stopped =
            GradientBoosting::fit_with_early_stopping(&train, &valid, &GbmParams::default(), 10);
        assert!(stopped.n_trees() <= full.n_trees());
        assert!(stopped.n_trees() >= 1);
        // Still a working classifier.
        assert!(stopped.predict_proba(&[0.95, 0.05, 7.0]) > 0.6);
    }

    #[test]
    #[should_panic(expected = "validation set must not be empty")]
    fn early_stopping_rejects_empty_validation() {
        let train = toy(100, false);
        GradientBoosting::fit_with_early_stopping(
            &train,
            &Dataset::new(3),
            &GbmParams::default(),
            5,
        );
    }

    #[test]
    fn log_loss_sane() {
        // Confident-correct beats uncertain beats confident-wrong.
        let labels = [true, false];
        let good = log_loss(&[4.0, -4.0], &labels);
        let flat = log_loss(&[0.0, 0.0], &labels);
        let bad = log_loss(&[-4.0, 4.0], &labels);
        assert!(good < flat && flat < bad);
    }

    #[test]
    fn predict_dataset_matches_pointwise() {
        let d = toy(100, false);
        let m = GradientBoosting::fit(
            &d,
            &GbmParams {
                n_trees: 20,
                ..Default::default()
            },
        );
        let scores = m.predict_dataset(&d);
        assert_eq!(scores.len(), d.len());
        assert_eq!(scores[3], m.predict_proba(d.row(3)));
    }

    /// The fit loop maintains raw scores through the BinnedMatrix; the
    /// replay below reproduces them bit-for-bit against
    /// `decision_function`'s raw-row traversal, proving the binned update
    /// is a drop-in for `raw[i] += lr * tree.predict(data.row(i))`.
    #[test]
    fn binned_raw_update_matches_raw_traversal_replay() {
        let d = toy(400, true);
        let m = GradientBoosting::fit(&d, &GbmParams::default());
        let binned = BinnedMatrix::build(&d);
        for pool in [kyp_exec::Pool::new(1), kyp_exec::Pool::new(4)] {
            let mut raw = vec![m.base_score; d.len()];
            for tree in &m.trees {
                tree.add_predictions_binned(&binned, m.learning_rate, &mut raw, &pool);
            }
            for (i, r) in raw.iter().enumerate() {
                assert_eq!(
                    r.to_bits(),
                    m.decision_function(d.row(i)).to_bits(),
                    "row {i} diverges ({} threads)",
                    pool.threads()
                );
            }
        }
    }

    #[test]
    fn fitted_models_validate_and_tampered_ones_do_not() {
        let d = toy(200, false);
        let m = GradientBoosting::fit(&d, &GbmParams::default());
        assert!(m.validate().is_ok());
        // Round-trip through json and corrupt a child reference, the way
        // a damaged snapshot would arrive.
        let json = serde_json::to_string(&m).unwrap();
        let tampered = json.replacen("\"left\":1", "\"left\":1000000", 1);
        assert_ne!(json, tampered, "fixture model holds no matching split");
        let bad: GradientBoosting = serde_json::from_str(&tampered).unwrap();
        let err = bad.validate().unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn n_trees_reported() {
        let d = toy(100, false);
        let m = GradientBoosting::fit(
            &d,
            &GbmParams {
                n_trees: 13,
                ..Default::default()
            },
        );
        assert_eq!(m.n_trees(), 13);
        assert_eq!(m.n_features(), 3);
    }
}
