//! Stratified k-fold cross-validation (the paper's *scenario 1*).

use crate::Dataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Assigns each example to one of `k` folds, stratified by label so every
/// fold preserves the class ratio.
///
/// Returns a fold index per example.
///
/// # Panics
///
/// Panics when `k < 2`.
///
/// # Examples
///
/// ```
/// let labels = vec![true, false, true, false, true, false];
/// let folds = kyp_ml::cv::stratified_folds(&labels, 3, 1);
/// assert_eq!(folds.len(), 6);
/// assert!(folds.iter().all(|&f| f < 3));
/// ```
pub fn stratified_folds(labels: &[bool], k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least 2 folds");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut folds = vec![0usize; labels.len()];
    for class in [true, false] {
        let mut idx: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == class).collect();
        idx.shuffle(&mut rng);
        for (pos, i) in idx.into_iter().enumerate() {
            folds[i] = pos % k;
        }
    }
    folds
}

/// The train/test split for one fold.
#[derive(Debug, Clone)]
pub struct FoldSplit {
    /// Training rows (all folds but `fold`).
    pub train: Vec<usize>,
    /// Held-out rows (fold `fold`).
    pub test: Vec<usize>,
}

/// Produces the `k` train/test splits for a fold assignment.
pub fn fold_splits(folds: &[usize], k: usize) -> Vec<FoldSplit> {
    (0..k)
        .map(|fold| {
            let (test, train): (Vec<usize>, Vec<usize>) =
                (0..folds.len()).partition(|&i| folds[i] == fold);
            FoldSplit { train, test }
        })
        .collect()
}

/// Runs k-fold cross-validation: `fit_predict(train, test)` must return a
/// score per test row. Returns pooled `(scores, labels)` over all folds,
/// ready for [`metrics`](crate::metrics).
pub fn cross_validate<F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    mut fit_predict: F,
) -> (Vec<f64>, Vec<bool>)
where
    F: FnMut(&Dataset, &Dataset) -> Vec<f64>,
{
    let folds = stratified_folds(data.labels(), k, seed);
    let mut all_scores = Vec::with_capacity(data.len());
    let mut all_labels = Vec::with_capacity(data.len());
    for split in fold_splits(&folds, k) {
        let train = data.select_rows(&split.train);
        let test = data.select_rows(&split.test);
        let scores = fit_predict(&train, &test);
        assert_eq!(
            scores.len(),
            test.len(),
            "fit_predict must score every test row"
        );
        all_scores.extend(scores);
        all_labels.extend(test.labels().iter().copied());
    }
    (all_scores, all_labels)
}

/// Runs k-fold cross-validation with the folds fitted concurrently on the
/// default [`kyp_exec`] pool.
///
/// `fit_predict` must be a pure function of its `(train, test)` datasets
/// (it runs once per fold, possibly on different threads). The pooled
/// `(scores, labels)` come back in fold order — exactly the output of
/// [`cross_validate`] with the same closure, at any thread count.
pub fn cross_validate_par<F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    fit_predict: F,
) -> (Vec<f64>, Vec<bool>)
where
    F: Fn(&Dataset, &Dataset) -> Vec<f64> + Sync,
{
    let folds = stratified_folds(data.labels(), k, seed);
    let splits = fold_splits(&folds, k);
    let per_fold: Vec<(Vec<f64>, Vec<bool>)> = kyp_exec::pool().par_map(&splits, |split| {
        let train = data.select_rows(&split.train);
        let test = data.select_rows(&split.test);
        let scores = fit_predict(&train, &test);
        assert_eq!(
            scores.len(),
            test.len(),
            "fit_predict must score every test row"
        );
        (scores, test.labels().to_vec())
    });
    let mut all_scores = Vec::with_capacity(data.len());
    let mut all_labels = Vec::with_capacity(data.len());
    for (scores, labels) in per_fold {
        all_scores.extend(scores);
        all_labels.extend(labels);
    }
    (all_scores, all_labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n_pos: usize, n_neg: usize) -> Vec<bool> {
        let mut l = vec![true; n_pos];
        l.extend(vec![false; n_neg]);
        l
    }

    #[test]
    fn folds_cover_all_examples() {
        let l = labels(50, 200);
        let folds = stratified_folds(&l, 5, 0);
        assert_eq!(folds.len(), 250);
        for fold in 0..5 {
            assert!(folds.contains(&fold));
        }
    }

    #[test]
    fn stratification_preserves_ratio() {
        let l = labels(100, 400);
        let folds = stratified_folds(&l, 5, 3);
        for fold in 0..5 {
            let pos = l
                .iter()
                .zip(&folds)
                .filter(|&(&y, &f)| y && f == fold)
                .count();
            let neg = l
                .iter()
                .zip(&folds)
                .filter(|&(&y, &f)| !y && f == fold)
                .count();
            assert_eq!(pos, 20);
            assert_eq!(neg, 80);
        }
    }

    #[test]
    fn splits_are_disjoint_and_complete() {
        let l = labels(10, 30);
        let folds = stratified_folds(&l, 4, 9);
        for split in fold_splits(&folds, 4) {
            assert_eq!(split.train.len() + split.test.len(), 40);
            let mut seen: Vec<usize> = split.train.iter().chain(&split.test).copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..40).collect::<Vec<_>>());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let l = labels(20, 20);
        assert_eq!(stratified_folds(&l, 4, 5), stratified_folds(&l, 4, 5));
        assert_ne!(stratified_folds(&l, 4, 5), stratified_folds(&l, 4, 6));
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn k_one_panics() {
        stratified_folds(&[true, false], 1, 0);
    }

    /// Concurrent folds must pool scores and labels exactly as the serial
    /// loop does.
    #[test]
    fn cross_validate_par_matches_serial() {
        let mut d = Dataset::new(2);
        for i in 0..120 {
            d.push_row(&[i as f64, (i % 7) as f64], i % 3 == 0);
        }
        let fit = |_train: &Dataset, test: &Dataset| -> Vec<f64> {
            (0..test.len()).map(|i| test.row(i)[0] * 0.5).collect()
        };
        let serial = cross_validate(&d, 4, 9, fit);
        let parallel = cross_validate_par(&d, 4, 9, fit);
        assert_eq!(serial.0, parallel.0);
        assert_eq!(serial.1, parallel.1);
    }

    #[test]
    fn cross_validate_pools_all_rows() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push_row(&[i as f64], i % 2 == 0);
        }
        let (scores, labels) = cross_validate(&d, 5, 0, |_train, test| {
            // Trivial "model": score = feature value.
            (0..test.len()).map(|i| test.row(i)[0]).collect()
        });
        assert_eq!(scores.len(), 100);
        assert_eq!(labels.len(), 100);
        assert_eq!(labels.iter().filter(|&&l| l).count(), 50);
    }
}
