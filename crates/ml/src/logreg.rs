//! Online logistic regression over sparse (hashed) features.
//!
//! This is the learner behind the Ma-et-al.-style and bag-of-words
//! baselines of Table X: the original systems train linear models over
//! hundreds of thousands of sparse lexical features with online updates.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Online L2-regularised logistic regression on sparse feature vectors.
///
/// Features are `(feature_id, value)` pairs; use [`hash_feature`] to map
/// arbitrary tokens into the id space (the "hashing trick").
///
/// # Examples
///
/// ```
/// use kyp_ml::SparseLogisticRegression;
///
/// let mut lr = SparseLogisticRegression::new(0.1, 1e-5);
/// for _ in 0..200 {
///     lr.update(&[(0, 1.0)], true);
///     lr.update(&[(1, 1.0)], false);
/// }
/// assert!(lr.predict_proba(&[(0, 1.0)]) > 0.9);
/// assert!(lr.predict_proba(&[(1, 1.0)]) < 0.1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparseLogisticRegression {
    weights: HashMap<u64, f64>,
    bias: f64,
    learning_rate: f64,
    l2: f64,
    updates: u64,
}

impl SparseLogisticRegression {
    /// Creates a model with the given learning rate and L2 penalty.
    pub fn new(learning_rate: f64, l2: f64) -> Self {
        SparseLogisticRegression {
            weights: HashMap::new(),
            bias: 0.0,
            learning_rate,
            l2,
            updates: 0,
        }
    }

    /// The raw decision score for a sparse example.
    pub fn decision_function(&self, features: &[(u64, f64)]) -> f64 {
        let mut z = self.bias;
        for (id, v) in features {
            if let Some(w) = self.weights.get(id) {
                z += w * v;
            }
        }
        z
    }

    /// Probability that the example is positive (phishing).
    pub fn predict_proba(&self, features: &[(u64, f64)]) -> f64 {
        1.0 / (1.0 + (-self.decision_function(features)).exp())
    }

    /// One online SGD step on a labeled example.
    pub fn update(&mut self, features: &[(u64, f64)], label: bool) {
        let p = self.predict_proba(features);
        let err = f64::from(label) - p;
        let lr = self.learning_rate;
        self.bias += lr * err;
        for (id, v) in features {
            let w = self.weights.entry(*id).or_insert(0.0);
            // kyp-lint: allow(D06) — per-weight update in the caller-supplied feature order; no cross-key reduction
            *w += lr * (err * v - self.l2 * *w);
        }
        self.updates += 1;
    }

    /// Trains for `epochs` passes over a sparse dataset.
    pub fn fit(&mut self, examples: &[(Vec<(u64, f64)>, bool)], epochs: usize) {
        for _ in 0..epochs {
            for (x, y) in examples {
                self.update(x, *y);
            }
        }
    }

    /// Number of non-zero weights (model size).
    pub fn nnz(&self) -> usize {
        self.weights.len()
    }

    /// Number of online updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

/// Hashes a token into the feature-id space (FNV-1a).
///
/// Used by the baselines to realise the bag-of-words models of the
/// compared systems without a corpus-wide vocabulary pass.
pub fn hash_feature(namespace: &str, token: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for b in namespace.bytes().chain([b':']).chain(token.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_simple_separation() {
        let mut lr = SparseLogisticRegression::new(0.5, 0.0);
        let pos = vec![(hash_feature("w", "paypal"), 1.0)];
        let neg = vec![(hash_feature("w", "news"), 1.0)];
        for _ in 0..100 {
            lr.update(&pos, true);
            lr.update(&neg, false);
        }
        assert!(lr.predict_proba(&pos) > 0.9);
        assert!(lr.predict_proba(&neg) < 0.1);
        assert_eq!(lr.updates(), 200);
        assert_eq!(lr.nnz(), 2);
    }

    #[test]
    fn l2_shrinks_weights() {
        let mut strong = SparseLogisticRegression::new(0.5, 0.0);
        let mut weak = SparseLogisticRegression::new(0.5, 0.1);
        let x = vec![(1u64, 1.0)];
        for _ in 0..200 {
            strong.update(&x, true);
            weak.update(&x, true);
        }
        assert!(strong.decision_function(&x) > weak.decision_function(&x));
    }

    #[test]
    fn unseen_features_are_neutral() {
        let lr = SparseLogisticRegression::new(0.1, 0.0);
        assert_eq!(lr.predict_proba(&[(99, 1.0)]), 0.5);
        assert_eq!(lr.decision_function(&[]), 0.0);
    }

    #[test]
    fn fit_runs_epochs() {
        let mut lr = SparseLogisticRegression::new(0.3, 0.0);
        let data = vec![(vec![(0u64, 1.0)], true), (vec![(1u64, 1.0)], false)];
        lr.fit(&data, 50);
        assert_eq!(lr.updates(), 100);
        assert!(lr.predict_proba(&[(0, 1.0)]) > 0.8);
    }

    #[test]
    fn hash_feature_is_stable_and_namespaced() {
        assert_eq!(hash_feature("a", "x"), hash_feature("a", "x"));
        assert_ne!(hash_feature("a", "x"), hash_feature("b", "x"));
        assert_ne!(hash_feature("a", "x"), hash_feature("a", "y"));
    }
}
