#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Machine-learning substrate for the *Know Your Phish* reproduction.
//!
//! The paper (Section IV-C) classifies webpages with **Gradient
//! Boosting** (Friedman 2002): an ensemble of shallow regression trees
//! fitted iteratively to the gradient of a logistic loss, producing a
//! confidence value in `[0, 1]` that is compared against a discrimination
//! threshold (0.7 in the paper, favouring the *legitimate* class).
//!
//! The crate provides everything the reproduction needs and nothing more:
//!
//! - [`Dataset`] — a dense feature matrix with binary labels,
//! - [`GradientBoosting`] — stochastic gradient boosting with
//!   histogram-binned exact splits and Newton leaf values,
//! - [`SparseLogisticRegression`] — the online linear baseline used by the
//!   Ma-et-al.-style comparison system,
//! - [`metrics`] — precision/recall/F1/FPR, ROC, AUC and P-R curves,
//! - [`cv`] — stratified k-fold cross-validation.
//!
//! # Examples
//!
//! ```
//! use kyp_ml::{Dataset, GradientBoosting, GbmParams};
//!
//! // A linearly separable toy problem.
//! let mut data = Dataset::new(2);
//! for i in 0..200 {
//!     let v = i as f64 / 100.0;
//!     data.push_row(&[v, -v], v > 1.0);
//! }
//! let model = GradientBoosting::fit(&data, &GbmParams::default());
//! assert!(model.predict_proba(&[1.8, -1.8]) > 0.7);
//! assert!(model.predict_proba(&[0.2, -0.2]) < 0.3);
//! ```

mod dataset;
mod flat;
mod gbm;
mod logreg;
mod tree;

pub mod cv;
pub mod metrics;

pub use dataset::Dataset;
pub use flat::FlatModel;
pub use gbm::{GbmParams, GradientBoosting};
pub use logreg::{hash_feature, SparseLogisticRegression};
pub use tree::RegressionTree;
