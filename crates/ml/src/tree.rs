//! Histogram-binned regression trees — the base learners of the gradient
//! boosting model.
//!
//! Features are pre-binned into at most [`MAX_BINS`] quantile bins once per
//! training run; split search then costs `O(features × rows)` per node
//! instead of requiring per-node sorts. Leaf values are Newton steps
//! `-ΣG / (ΣH + λ)`, so the same tree code serves any twice-differentiable
//! loss (the booster uses the logistic loss).

use crate::Dataset;
use kyp_exec::Pool;
use serde::{Deserialize, Serialize};

/// Maximum number of histogram bins per feature.
pub(crate) const MAX_BINS: usize = 64;

/// Below this `rows × columns` volume a node's split search stays serial:
/// spawning scoped workers costs more than scanning the histograms.
const PAR_SPLIT_MIN_CELLS: usize = 1 << 15;

/// Parameters controlling a single tree fit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct TreeParams {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    pub min_child_weight: f64,
    pub lambda: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 4,
            min_samples_leaf: 5,
            min_child_weight: 1e-3,
            lambda: 1.0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Node {
    Split {
        feature: usize,
        /// Raw-value threshold: `x <= threshold` goes left.
        threshold: f64,
        left: usize,
        right: usize,
        /// Total gain contributed by this split (for feature importance).
        gain: f64,
    },
    Leaf {
        value: f64,
    },
}

/// A fitted regression tree.
///
/// Produced by the gradient booster; can also be fitted standalone on a
/// squared-error objective via [`RegressionTree::fit`].
///
/// # Examples
///
/// ```
/// use kyp_ml::{Dataset, RegressionTree};
/// let mut d = Dataset::new(1);
/// for i in 0..100 {
///     let x = i as f64;
///     d.push_row(&[x], false);
/// }
/// let targets: Vec<f64> = (0..100).map(|i| if i < 50 { -1.0 } else { 1.0 }).collect();
/// let tree = RegressionTree::fit(&d, &targets, 3);
/// assert!(tree.predict(&[10.0]) < 0.0);
/// assert!(tree.predict(&[90.0]) > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a standalone squared-error regression tree of depth
    /// `max_depth` to `targets`.
    ///
    /// # Panics
    ///
    /// Panics when `targets.len() != data.len()` or the dataset is empty.
    pub fn fit(data: &Dataset, targets: &[f64], max_depth: usize) -> Self {
        assert_eq!(data.len(), targets.len());
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let binned = BinnedMatrix::build(data);
        // Squared error: g = -target (at f = 0), h = 1 → leaf = mean(target).
        let grads: Vec<f64> = targets.iter().map(|t| -t).collect();
        let hess = vec![1.0; targets.len()];
        let params = TreeParams {
            max_depth,
            lambda: 0.0,
            ..TreeParams::default()
        };
        let mut rows: Vec<u32> = (0..data.len() as u32).collect();
        Self::fit_with_grad(
            &binned,
            &grads,
            &hess,
            &mut rows,
            &params,
            None,
            &kyp_exec::pool(),
        )
    }

    /// Fits a tree to gradients/hessians over the given row set.
    /// `columns` optionally restricts the features considered; `pool`
    /// parallelises the per-feature histogram scan on large nodes (the
    /// chosen split is bit-identical at any thread count).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fit_with_grad(
        binned: &BinnedMatrix,
        grads: &[f64],
        hess: &[f64],
        rows: &mut [u32],
        params: &TreeParams,
        columns: Option<&[usize]>,
        pool: &Pool,
    ) -> Self {
        let mut tree = RegressionTree { nodes: Vec::new() };
        let all_columns: Vec<usize>;
        let cols = if let Some(c) = columns {
            c
        } else {
            all_columns = (0..binned.n_features).collect();
            &all_columns
        };
        tree.build(binned, grads, hess, rows, params, cols, 0, pool);
        tree
    }

    /// Recursively builds a subtree over `rows`, returning its node index.
    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        binned: &BinnedMatrix,
        grads: &[f64],
        hess: &[f64],
        rows: &mut [u32],
        params: &TreeParams,
        cols: &[usize],
        depth: usize,
        pool: &Pool,
    ) -> usize {
        let (g_total, h_total) = rows.iter().fold((0.0, 0.0), |(g, h), &r| {
            (g + grads[r as usize], h + hess[r as usize])
        });
        let leaf_value = -g_total / (h_total + params.lambda);

        if depth >= params.max_depth || rows.len() < 2 * params.min_samples_leaf {
            return self.push(Node::Leaf { value: leaf_value });
        }

        let parent_score = g_total * g_total / (h_total + params.lambda);

        // Per-column histogram scan, returning the column's best
        // `(bin, gain)` candidate. Each column accumulates over `rows` in
        // the same order whatever thread runs it, so candidates — and the
        // reduction below — are bit-identical at any thread count.
        let row_view: &[u32] = rows;
        let scan_col = |f: usize| -> Option<(usize, usize, f64)> {
            let n_bins = binned.thresholds[f].len() + 1;
            if n_bins < 2 {
                return None;
            }
            let mut hist_g = [0.0f64; MAX_BINS];
            let mut hist_h = [0.0f64; MAX_BINS];
            let mut hist_n = [0u32; MAX_BINS];
            for &r in row_view {
                let b = binned.bin(r as usize, f) as usize;
                hist_g[b] += grads[r as usize];
                hist_h[b] += hess[r as usize];
                hist_n[b] += 1;
            }
            let (mut gl, mut hl, mut nl) = (0.0, 0.0, 0u32);
            let mut best: Option<(usize, f64)> = None; // (bin, gain)
                                                       // A split at bin b sends bins 0..=b left.
            for b in 0..n_bins - 1 {
                gl += hist_g[b];
                hl += hist_h[b];
                nl += hist_n[b];
                let nr = row_view.len() as u32 - nl;
                if (nl as usize) < params.min_samples_leaf
                    || (nr as usize) < params.min_samples_leaf
                {
                    continue;
                }
                let (gr, hr) = (g_total - gl, h_total - hl);
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let gain =
                    gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda) - parent_score;
                if gain > best.map_or(1e-12, |(_, g)| g) {
                    best = Some((b, gain));
                }
            }
            best.map(|(b, g)| (f, b, g))
        };

        let candidates: Vec<Option<(usize, usize, f64)>> =
            if pool.threads() > 1 && rows.len().saturating_mul(cols.len()) >= PAR_SPLIT_MIN_CELLS {
                pool.par_map(cols, |&f| scan_col(f))
            } else {
                cols.iter().map(|&f| scan_col(f)).collect()
            };

        // Reduce in column order with the same strict-`>` rule the serial
        // scan used, so exact gain ties resolve to the earliest column.
        let mut best: Option<(usize, usize, f64)> = None; // (feature, bin, gain)
        for cand in candidates.into_iter().flatten() {
            if cand.2 > best.map_or(1e-12, |(_, _, g)| g) {
                best = Some(cand);
            }
        }

        let Some((feature, bin, gain)) = best else {
            return self.push(Node::Leaf { value: leaf_value });
        };

        // Partition rows: bin <= split bin goes left.
        let mid = partition(rows, |r| binned.bin(r as usize, feature) as usize <= bin);
        debug_assert!(mid > 0 && mid < rows.len());
        let threshold = binned.thresholds[feature][bin];

        let node_idx = self.push(Node::Split {
            feature,
            threshold,
            left: usize::MAX,
            right: usize::MAX,
            gain,
        });
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.build(
            binned,
            grads,
            hess,
            left_rows,
            params,
            cols,
            depth + 1,
            pool,
        );
        let right = self.build(
            binned,
            grads,
            hess,
            right_rows,
            params,
            cols,
            depth + 1,
            pool,
        );
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_idx]
        {
            *l = left;
            *r = right;
        }
        node_idx
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Structural validation for trees deserialized from untrusted
    /// artifacts: every child reference must stay in range, every node
    /// must be reachable at most once (no cycles, no shared subtrees),
    /// split features must fit `n_features` and thresholds be finite.
    /// Trees built by [`RegressionTree::fit`] satisfy this by
    /// construction; [`predict`](Self::predict) and the flat compiler
    /// index nodes unchecked on the strength of it.
    pub(crate) fn validate(&self, n_features: usize) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("tree has no nodes".to_owned());
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            match seen.get_mut(idx) {
                None => {
                    return Err(format!(
                        "node reference {idx} is out of range ({} nodes)",
                        self.nodes.len()
                    ));
                }
                Some(visited) if *visited => {
                    return Err(format!(
                        "node {idx} is referenced twice (cycle or shared subtree)"
                    ));
                }
                Some(visited) => *visited = true,
            }
            if let Some(Node::Split {
                feature,
                threshold,
                left,
                right,
                ..
            }) = self.nodes.get(idx)
            {
                if *feature >= n_features {
                    return Err(format!(
                        "split feature {feature} is out of range ({n_features} features)"
                    ));
                }
                if !threshold.is_finite() {
                    return Err(format!("split threshold {threshold} is not finite"));
                }
                stack.push(*left);
                stack.push(*right);
            }
        }
        Ok(())
    }

    /// Predicts the tree's output for a raw feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            // kyp-lint: allow(P02) — fitted trees reference in-range children by construction; untrusted ones pass `validate` first
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    // kyp-lint: allow(P02) — feature indices are bounded by `validate` / the fit that built the tree
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Adds `scale ×` this tree's prediction for every row of `binned` to
    /// `out`, traversing bin indices instead of re-comparing raw values.
    ///
    /// Exactly equivalent to `out[i] += scale * predict(data.row(i))` for
    /// the dataset `binned` was built from: each split's threshold is a
    /// value copied verbatim out of `binned.thresholds`, so resolving it
    /// back to its bin index `b` gives `bin(row, f) <= b  ⟺
    /// row[f] <= threshold`. Avoids the per-row `partition_point`
    /// re-binning the boosting loop otherwise pays every round, and fans
    /// the traversal out over `pool`.
    pub(crate) fn add_predictions_binned(
        &self,
        binned: &BinnedMatrix,
        scale: f64,
        out: &mut [f64],
        pool: &Pool,
    ) {
        debug_assert_eq!(out.len(), binned.n_rows());
        let split_bins: Vec<u8> = self
            .nodes
            .iter()
            .map(|node| match node {
                Node::Leaf { .. } => 0,
                Node::Split {
                    feature, threshold, ..
                } => {
                    let th = &binned.thresholds[*feature];
                    let b = th.partition_point(|t| *t < *threshold);
                    debug_assert!(b < th.len() && th[b] == *threshold);
                    b as u8
                }
            })
            .collect();
        pool.par_chunks_mut(out, |offset, chunk| {
            for (k, r) in chunk.iter_mut().enumerate() {
                let row = offset + k;
                let mut idx = 0;
                loop {
                    match &self.nodes[idx] {
                        Node::Leaf { value } => {
                            *r += scale * value;
                            break;
                        }
                        Node::Split {
                            feature,
                            left,
                            right,
                            ..
                        } => {
                            idx = if binned.bin(row, *feature) <= split_bins[idx] {
                                *left
                            } else {
                                *right
                            };
                        }
                    }
                }
            }
        });
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The tree's nodes, for compilation into a flat layout.
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Adds each split's gain to `importance[feature]`.
    pub(crate) fn accumulate_importance(&self, importance: &mut [f64]) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                importance[*feature] += gain.max(0.0);
            }
        }
    }
}

/// Stable-order in-place partition; returns the number of elements
/// satisfying the predicate (moved to the front).
fn partition<F: Fn(u32) -> bool>(rows: &mut [u32], pred: F) -> usize {
    // Simple two-buffer approach preserving relative order.
    let mut left = Vec::with_capacity(rows.len());
    let mut right = Vec::with_capacity(rows.len());
    for &r in rows.iter() {
        if pred(r) {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    let mid = left.len();
    rows[..mid].copy_from_slice(&left);
    rows[mid..].copy_from_slice(&right);
    mid
}

/// A dataset pre-binned into quantile bins.
#[derive(Debug, Clone)]
pub(crate) struct BinnedMatrix {
    pub n_features: usize,
    /// Row-major bin indices.
    bins: Vec<u8>,
    /// Per feature: sorted candidate thresholds; bin `b` holds values
    /// `thresholds[b-1] < x <= thresholds[b]` (bin `len` holds the rest).
    pub thresholds: Vec<Vec<f64>>,
}

impl BinnedMatrix {
    pub fn build(data: &Dataset) -> Self {
        let n = data.len();
        let f_count = data.n_features();
        let mut thresholds = Vec::with_capacity(f_count);
        let mut col = Vec::with_capacity(n);
        for f in 0..f_count {
            col.clear();
            col.extend((0..n).map(|i| data.row(i)[f]));
            col.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            col.dedup();
            let distinct = col.len();
            let mut th: Vec<f64> = Vec::new();
            if distinct > 1 {
                if distinct <= MAX_BINS {
                    // Midpoints between consecutive distinct values.
                    th.extend(col.windows(2).map(|w| f64::midpoint(w[0], w[1])));
                } else {
                    // Quantile cuts.
                    for q in 1..MAX_BINS {
                        let idx = q * (distinct - 1) / MAX_BINS;
                        let cut = f64::midpoint(col[idx], col[idx + 1]);
                        if th.last() != Some(&cut) {
                            th.push(cut);
                        }
                    }
                }
            }
            thresholds.push(th);
        }
        let mut bins = vec![0u8; n * f_count];
        for i in 0..n {
            let row = data.row(i);
            for f in 0..f_count {
                let b = thresholds[f].partition_point(|t| row[f] > *t);
                bins[i * f_count + f] = b as u8;
            }
        }
        BinnedMatrix {
            n_features: f_count,
            bins,
            thresholds,
        }
    }

    #[inline]
    pub fn bin(&self, row: usize, feature: usize) -> u8 {
        self.bins[row * self.n_features + feature]
    }

    /// Number of binned rows.
    pub fn n_rows(&self) -> usize {
        self.bins.len().checked_div(self.n_features).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Dataset, Vec<f64>) {
        let mut d = Dataset::new(2);
        let mut t = Vec::new();
        for i in 0..200 {
            let x = i as f64 / 10.0;
            d.push_row(&[x, 0.0], false);
            t.push(if x < 10.0 { -2.0 } else { 3.0 });
        }
        (d, t)
    }

    #[test]
    fn fits_step_function() {
        let (d, t) = step_data();
        let tree = RegressionTree::fit(&d, &t, 2);
        assert!((tree.predict(&[2.0, 0.0]) - -2.0).abs() < 1e-9);
        assert!((tree.predict(&[15.0, 0.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_is_single_leaf_mean() {
        let (d, t) = step_data();
        let tree = RegressionTree::fit(&d, &t, 0);
        assert_eq!(tree.node_count(), 1);
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        assert!((tree.predict(&[5.0, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn constant_feature_never_split() {
        let mut d = Dataset::new(1);
        let mut t = Vec::new();
        for i in 0..50 {
            d.push_row(&[7.0], false);
            t.push(i as f64);
        }
        let tree = RegressionTree::fit(&d, &t, 3);
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn interaction_learned_at_depth_two() {
        // target = a + (a AND b): the second-level split on b is only
        // useful inside the a=1 branch.
        let mut d = Dataset::new(2);
        let mut t = Vec::new();
        for i in 0..400 {
            let a = f64::from(i % 2 == 0);
            let b = f64::from((i / 2) % 2 == 0);
            d.push_row(&[a, b], false);
            t.push(a + if a > 0.5 && b > 0.5 { 1.0 } else { 0.0 });
        }
        let deep = RegressionTree::fit(&d, &t, 2);
        assert!((deep.predict(&[1.0, 1.0]) - 2.0).abs() < 1e-9);
        assert!((deep.predict(&[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!(deep.predict(&[0.0, 1.0]).abs() < 1e-9);
    }

    #[test]
    fn binning_many_distinct_values() {
        let mut d = Dataset::new(1);
        for i in 0..10_000 {
            d.push_row(&[i as f64], false);
        }
        let binned = BinnedMatrix::build(&d);
        assert!(binned.thresholds[0].len() <= MAX_BINS - 1 + 1);
        // Bins must be monotone in the value.
        let b_lo = binned.bin(10, 0);
        let b_hi = binned.bin(9_990, 0);
        assert!(b_lo < b_hi);
    }

    #[test]
    fn partition_preserves_predicate() {
        let mut rows: Vec<u32> = (0..100).collect();
        let mid = partition(&mut rows, |r| r % 3 == 0);
        assert!(rows[..mid].iter().all(|r| r % 3 == 0));
        assert!(rows[mid..].iter().all(|r| r % 3 != 0));
        assert_eq!(mid, 34);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let d = Dataset::new(1);
        let _ = RegressionTree::fit(&d, &[], 2);
    }

    /// The boosting loop's binned raw-score update must be a drop-in for
    /// re-traversing raw feature vectors: same tree, same data, same
    /// bits.
    #[test]
    fn binned_prediction_matches_raw_traversal() {
        let mut d = Dataset::new(3);
        let mut t = Vec::new();
        for i in 0..500 {
            let x = (i % 97) as f64 * 0.31;
            let y = ((i * 7) % 13) as f64 - 6.0;
            d.push_row(&[x, y, x * y], false);
            t.push(if x + y > 10.0 { 1.5 } else { -0.5 });
        }
        let binned = BinnedMatrix::build(&d);
        let tree = RegressionTree::fit(&d, &t, 4);
        for pool in [Pool::new(1), Pool::new(4)] {
            let mut accumulated = vec![0.25; d.len()];
            tree.add_predictions_binned(&binned, 0.1, &mut accumulated, &pool);
            for (i, acc) in accumulated.iter().enumerate() {
                let want = 0.25 + 0.1 * tree.predict(d.row(i));
                assert_eq!(
                    acc.to_bits(),
                    want.to_bits(),
                    "row {i} diverges ({} threads)",
                    pool.threads()
                );
            }
        }
    }

    /// The parallel per-column split search must choose the same tree as
    /// the serial scan, bit for bit.
    #[test]
    fn parallel_split_search_builds_identical_tree() {
        // 6000 × 8 = 48k cells: above PAR_SPLIT_MIN_CELLS, so the root
        // node takes the parallel scan path on multi-thread pools.
        let mut d = Dataset::new(8);
        let mut t = Vec::new();
        for i in 0..6000 {
            let row: Vec<f64> = (0..8).map(|f| ((i * (f + 3)) % 101) as f64).collect();
            t.push(row[2] - row[5] * 0.5);
            d.push_row(&row, false);
        }
        let binned = BinnedMatrix::build(&d);
        let grads: Vec<f64> = t.iter().map(|v| -v).collect();
        let hess = vec![1.0; t.len()];
        let params = TreeParams {
            max_depth: 5,
            ..TreeParams::default()
        };
        let fit = |threads: usize| {
            let mut rows: Vec<u32> = (0..d.len() as u32).collect();
            RegressionTree::fit_with_grad(
                &binned,
                &grads,
                &hess,
                &mut rows,
                &params,
                None,
                &Pool::new(threads),
            )
        };
        let serial = fit(1);
        for threads in [2, 8] {
            let par = fit(threads);
            assert_eq!(serial.node_count(), par.node_count());
            for i in 0..d.len() {
                assert_eq!(
                    serial.predict(d.row(i)).to_bits(),
                    par.predict(d.row(i)).to_bits()
                );
            }
        }
    }

    #[test]
    fn n_rows_reported() {
        let mut d = Dataset::new(2);
        d.push_row(&[1.0, 2.0], true);
        d.push_row(&[3.0, 4.0], false);
        let binned = BinnedMatrix::build(&d);
        assert_eq!(binned.n_rows(), 2);
    }

    #[test]
    fn importance_accumulates_on_split_feature() {
        let (d, t) = step_data();
        let tree = RegressionTree::fit(&d, &t, 2);
        let mut imp = vec![0.0; 2];
        tree.accumulate_importance(&mut imp);
        assert!(imp[0] > 0.0, "informative feature gains importance");
        assert_eq!(imp[1], 0.0, "constant feature gains none");
    }
}
