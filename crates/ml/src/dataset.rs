use serde::{Deserialize, Serialize};

/// A dense, row-major feature matrix with binary labels.
///
/// Labels follow the paper's convention: `true` = phishing, `false` =
/// legitimate.
///
/// # Examples
///
/// ```
/// use kyp_ml::Dataset;
/// let mut d = Dataset::new(3);
/// d.push_row(&[1.0, 2.0, 3.0], true);
/// d.push_row(&[4.0, 5.0, 6.0], false);
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.row(1), &[4.0, 5.0, 6.0]);
/// assert_eq!(d.positives(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    n_features: usize,
    x: Vec<f64>,
    y: Vec<bool>,
}

impl Dataset {
    /// Creates an empty dataset with `n_features` columns.
    pub fn new(n_features: usize) -> Self {
        Dataset {
            n_features,
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Creates an empty dataset with capacity for `rows` rows.
    pub fn with_capacity(n_features: usize, rows: usize) -> Self {
        Dataset {
            n_features,
            x: Vec::with_capacity(n_features * rows),
            y: Vec::with_capacity(rows),
        }
    }

    /// Appends one example.
    ///
    /// # Panics
    ///
    /// Panics when `features.len() != n_features`.
    pub fn push_row(&mut self, features: &[f64], label: bool) {
        assert_eq!(
            features.len(),
            self.n_features,
            "expected {} features, got {}",
            self.n_features,
            features.len()
        );
        self.x.extend_from_slice(features);
        self.y.push(label);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The feature vector of example `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.n_features..(i + 1) * self.n_features]
    }

    /// The label of example `i` (`true` = phishing).
    pub fn label(&self, i: usize) -> bool {
        self.y[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.y
    }

    /// Count of positive (phishing) examples.
    pub fn positives(&self) -> usize {
        self.y.iter().filter(|&&l| l).count()
    }

    /// Count of negative (legitimate) examples.
    pub fn negatives(&self) -> usize {
        self.len() - self.positives()
    }

    /// A new dataset containing only the given feature columns, in the
    /// given order (used for the per-feature-set evaluation of Table VII).
    pub fn select_features(&self, columns: &[usize]) -> Dataset {
        let mut out = Dataset::with_capacity(columns.len(), self.len());
        let mut buf = vec![0.0; columns.len()];
        for i in 0..self.len() {
            let row = self.row(i);
            for (k, &c) in columns.iter().enumerate() {
                buf[k] = row[c];
            }
            out.push_row(&buf, self.y[i]);
        }
        out
    }

    /// A new dataset containing only the given example rows.
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let mut out = Dataset::with_capacity(self.n_features, rows.len());
        for &i in rows {
            out.push_row(self.row(i), self.y[i]);
        }
        out
    }

    /// Appends a whole flat row-major block of examples at once — the
    /// shape feature-store blocks and `extract_batch_flat` produce — in
    /// one memcpy instead of one `push_row` per example.
    ///
    /// # Panics
    ///
    /// Panics when `rows.len() != labels.len() * n_features`.
    pub fn push_flat_rows(&mut self, rows: &[f64], labels: &[bool]) {
        assert_eq!(
            rows.len(),
            labels.len() * self.n_features,
            "expected {} values for {} rows of {} features, got {}",
            labels.len() * self.n_features,
            labels.len(),
            self.n_features,
            rows.len()
        );
        self.x.extend_from_slice(rows);
        self.y.extend_from_slice(labels);
    }

    /// Appends every example of `other`.
    ///
    /// # Panics
    ///
    /// Panics when feature counts differ.
    pub fn append(&mut self, other: &Dataset) {
        assert_eq!(self.n_features, other.n_features);
        self.x.extend_from_slice(&other.x);
        self.y.extend_from_slice(&other.y);
    }

    /// Iterates over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], bool)> + '_ {
        (0..self.len()).map(move |i| (self.row(i), self.y[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(2);
        d.push_row(&[1.0, 10.0], true);
        d.push_row(&[2.0, 20.0], false);
        d.push_row(&[3.0, 30.0], true);
        d
    }

    #[test]
    fn push_and_access() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(2), &[3.0, 30.0]);
        assert!(d.label(0));
        assert!(!d.label(1));
        assert_eq!(d.positives(), 2);
        assert_eq!(d.negatives(), 1);
    }

    #[test]
    #[should_panic(expected = "expected 2 features")]
    fn wrong_width_panics() {
        let mut d = Dataset::new(2);
        d.push_row(&[1.0], true);
    }

    #[test]
    fn select_features_reorders() {
        let d = sample();
        let s = d.select_features(&[1, 0]);
        assert_eq!(s.row(0), &[10.0, 1.0]);
        assert_eq!(s.labels(), d.labels());
    }

    #[test]
    fn select_rows_subsets() {
        let d = sample();
        let s = d.select_rows(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[3.0, 30.0]);
        assert!(s.label(1));
    }

    #[test]
    fn push_flat_rows_matches_push_row() {
        let mut flat = Dataset::new(2);
        flat.push_flat_rows(&[1.0, 10.0, 2.0, 20.0, 3.0, 30.0], &[true, false, true]);
        let by_row = sample();
        assert_eq!(flat.len(), by_row.len());
        for i in 0..flat.len() {
            assert_eq!(flat.row(i), by_row.row(i));
            assert_eq!(flat.label(i), by_row.label(i));
        }
    }

    #[test]
    #[should_panic(expected = "expected 4 values")]
    fn push_flat_rows_shape_mismatch_panics() {
        let mut d = Dataset::new(2);
        d.push_flat_rows(&[1.0, 2.0, 3.0], &[true, false]);
    }

    #[test]
    fn append_concatenates() {
        let mut a = sample();
        let b = sample();
        a.append(&b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.row(5), &[3.0, 30.0]);
    }

    #[test]
    fn iter_yields_all() {
        let d = sample();
        let rows: Vec<_> = d.iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], (&[2.0, 20.0][..], false));
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(4);
        assert!(d.is_empty());
        assert_eq!(d.positives(), 0);
    }
}
