//! Property tests: the compiled [`FlatModel`] must be a bit-identical
//! drop-in for the boxed-enum tree walk, for *any* fitted ensemble.
//!
//! Random datasets (seeded, deterministic) are fitted with varied
//! hyper-parameters; every row of every model must score to the same
//! `f64::to_bits` through `FlatModel::predict_batch`,
//! `FlatModel::predict_proba` and the reference
//! `GradientBoosting::predict_proba`.

use kyp_ml::{Dataset, GbmParams, GradientBoosting};

/// SplitMix64: a tiny deterministic generator for test data.
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A random dataset with a learnable (noisy linear) labeling and a few
/// adversarial columns: a constant, a duplicated feature, and ties.
fn random_dataset(rng: &mut SplitMix, rows: usize, features: usize) -> Dataset {
    let mut d = Dataset::new(features);
    let mut row = vec![0.0; features];
    for _ in 0..rows {
        for (f, v) in row.iter_mut().enumerate() {
            *v = match f % 4 {
                0 => rng.next_f64(),
                1 => (rng.next_u64() % 5) as f64, // heavy ties
                2 => 7.25,                        // constant column
                _ => rng.next_f64() * 100.0 - 50.0,
            };
        }
        let signal: f64 = row.iter().step_by(4).sum();
        let label = signal + rng.next_f64() * 0.5 > 0.5 * (features as f64 / 4.0).ceil();
        d.push_row(&row, label);
    }
    // Guarantee both classes.
    d.push_row(&vec![0.0; features], false);
    d.push_row(&vec![1.0; features], true);
    d
}

#[test]
fn flat_model_is_bit_identical_on_random_ensembles() {
    let mut rng = SplitMix(0x6b79_705f_666c_6174); // "kyp_flat"
    let configs = [
        (
            60,
            4,
            GbmParams {
                n_trees: 12,
                max_depth: 2,
                ..GbmParams::default()
            },
        ),
        (
            200,
            8,
            GbmParams {
                n_trees: 25,
                max_depth: 5,
                subsample: 0.6,
                ..GbmParams::default()
            },
        ),
        (
            120,
            3,
            GbmParams {
                n_trees: 8,
                max_depth: 0,
                ..GbmParams::default()
            },
        ),
        (
            300,
            12,
            GbmParams {
                n_trees: 40,
                colsample: 0.5,
                seed: 9,
                ..GbmParams::default()
            },
        ),
    ];
    for (round, (rows, features, params)) in configs.into_iter().enumerate() {
        let data = random_dataset(&mut rng, rows, features);
        let model = GradientBoosting::fit(&data, &params);
        let flat = model.compile();
        assert_eq!(flat.n_trees(), model.n_trees(), "round {round}");

        let all_rows: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i).to_vec()).collect();
        let batch = flat.predict_batch(&all_rows);
        assert_eq!(batch.len(), all_rows.len());
        for (i, row) in all_rows.iter().enumerate() {
            let reference = model.predict_proba(row);
            assert_eq!(
                flat.predict_proba(row).to_bits(),
                reference.to_bits(),
                "round {round} row {i}: pointwise flat walk diverged"
            );
            assert_eq!(
                batch[i].to_bits(),
                reference.to_bits(),
                "round {round} row {i}: batch-major walk diverged"
            );
            assert_eq!(
                flat.decision_function(row).to_bits(),
                model.decision_function(row).to_bits(),
                "round {round} row {i}: raw score diverged"
            );
        }
    }
}

#[test]
fn flat_model_matches_on_out_of_distribution_probes() {
    // Probes far outside the training range exercise every extreme path
    // of the threshold comparisons.
    let mut rng = SplitMix(7);
    let data = random_dataset(&mut rng, 150, 6);
    let model = GradientBoosting::fit(
        &data,
        &GbmParams {
            n_trees: 20,
            ..GbmParams::default()
        },
    );
    let flat = model.compile();
    let probes: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            (0..6)
                .map(|f| ((i * 7 + f) as f64 - 200.0) * 13.7)
                .collect()
        })
        .collect();
    let batch = flat.predict_batch(&probes);
    for (i, p) in probes.iter().enumerate() {
        assert_eq!(batch[i].to_bits(), model.predict_proba(p).to_bits(), "{i}");
    }
}

#[test]
fn predict_dataset_routes_through_flat_identically() {
    let mut rng = SplitMix(99);
    let data = random_dataset(&mut rng, 250, 5);
    let model = GradientBoosting::fit(&data, &GbmParams::default());
    let scores = model.predict_dataset(&data);
    for (i, s) in scores.iter().enumerate() {
        assert_eq!(
            s.to_bits(),
            model.predict_proba(data.row(i)).to_bits(),
            "{i}"
        );
    }
}
