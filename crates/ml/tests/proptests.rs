//! Property-based tests for the ML substrate: probability bounds,
//! metric identities and cross-validation integrity on random data.

use kyp_ml::{cv, metrics, Dataset, GbmParams, GradientBoosting, RegressionTree};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    // 2-feature datasets with both classes guaranteed present.
    proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, any::<bool>()), 20..80).prop_map(|rows| {
        let mut d = Dataset::new(2);
        for (a, b, y) in rows {
            d.push_row(&[a, b], y);
        }
        // Force both classes.
        d.push_row(&[0.0, 0.0], true);
        d.push_row(&[1.0, 1.0], false);
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Predicted probabilities always stay in [0, 1], on and off the
    /// training manifold.
    #[test]
    fn gbm_probabilities_bounded(data in dataset_strategy(), probe in proptest::collection::vec(-10.0f64..10.0, 2)) {
        let model = GradientBoosting::fit(&data, &GbmParams { n_trees: 15, ..Default::default() });
        for i in 0..data.len() {
            let p = model.predict_proba(data.row(i));
            prop_assert!((0.0..=1.0).contains(&p));
        }
        let p = model.predict_proba(&probe);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// Feature importances are a distribution (non-negative, sum ≤ 1).
    #[test]
    fn importances_normalised(data in dataset_strategy()) {
        let model = GradientBoosting::fit(&data, &GbmParams { n_trees: 10, ..Default::default() });
        let imp = model.feature_importance();
        prop_assert_eq!(imp.len(), 2);
        prop_assert!(imp.iter().all(|&v| v >= 0.0));
        let sum: f64 = imp.iter().sum();
        prop_assert!(sum <= 1.0 + 1e-9);
    }

    /// A regression tree's prediction is always within the range of its
    /// training targets (piecewise means cannot extrapolate).
    #[test]
    fn tree_predictions_within_target_range(
        targets in proptest::collection::vec(-5.0f64..5.0, 10..60),
        probe in -10.0f64..10.0,
    ) {
        let mut d = Dataset::new(1);
        for (i, _) in targets.iter().enumerate() {
            d.push_row(&[i as f64], false);
        }
        let tree = RegressionTree::fit(&d, &targets, 4);
        let lo = targets.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let pred = tree.predict(&[probe]);
        prop_assert!(pred >= lo - 1e-9 && pred <= hi + 1e-9, "{pred} outside [{lo}, {hi}]");
    }

    /// AUC is antisymmetric under label flip: AUC(s, y) = 1 − AUC(s, ¬y).
    #[test]
    fn auc_label_flip(
        scores in proptest::collection::vec(0.0f64..1.0, 6..50),
    ) {
        let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 3 == 0).collect();
        let flipped: Vec<bool> = labels.iter().map(|l| !l).collect();
        let a = metrics::auc(&scores, &labels);
        let b = metrics::auc(&scores, &flipped);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }

    /// Confusion counts always partition the dataset.
    #[test]
    fn confusion_partitions(
        scores in proptest::collection::vec(0.0f64..1.0, 1..60),
        threshold in 0.0f64..1.0,
    ) {
        let labels: Vec<bool> = scores.iter().map(|s| *s > 0.5).collect();
        let c = metrics::Confusion::at_threshold(&scores, &labels, threshold);
        prop_assert_eq!(c.total(), scores.len());
        prop_assert!((0.0..=1.0).contains(&c.precision()));
        prop_assert!((0.0..=1.0).contains(&c.recall()));
        prop_assert!((0.0..=1.0).contains(&c.fpr()));
        prop_assert!((0.0..=1.0).contains(&c.accuracy()));
    }

    /// Every example lands in exactly one CV test fold.
    #[test]
    fn cv_folds_partition(n_pos in 5usize..30, n_neg in 5usize..30, k in 2usize..6) {
        let mut labels = vec![true; n_pos];
        labels.extend(vec![false; n_neg]);
        let folds = cv::stratified_folds(&labels, k, 1);
        let splits = cv::fold_splits(&folds, k);
        let mut seen = vec![0usize; labels.len()];
        for split in &splits {
            for &i in &split.test {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }
}
