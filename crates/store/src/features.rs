//! Feature-matrix store: labeled f64 rows in checksummed blocks, grouped
//! by bundle.
//!
//! Rows are written as raw little-endian IEEE-754 bit patterns, so the
//! matrix a trainer streams back out of the store is bit-identical to
//! the one the extractor produced at generation time — the property the
//! byte-identical-model guarantee rests on. A block never spans bundles;
//! each block carries the bundle index its rows belong to, so readers
//! can route rows to train/test splits without consulting an index.

use crate::format::{FrameReader, FrameWriter, StoreError, StoreHeader, StoreKind, BLOCK_RECORDS};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Streams labeled feature rows into a store file, flushing a block per
/// [`BLOCK_RECORDS`] rows (or sooner, at a bundle boundary).
#[derive(Debug)]
pub struct FeatureStoreWriter<W: Write> {
    frame: FrameWriter<W>,
    n_features: usize,
    bundle: Option<u32>,
    n_bundles: u32,
    labels: Vec<u8>,
    rows: Vec<u8>,
    payload: Vec<u8>,
}

impl FeatureStoreWriter<BufWriter<File>> {
    /// Creates a feature store at `path` with the given header.
    ///
    /// # Errors
    ///
    /// [`StoreError::KindMismatch`] when `header.kind` is not
    /// [`StoreKind::Features`], [`StoreError::Corrupt`] when the header
    /// declares zero feature columns, plus filesystem failures.
    pub fn create(path: &Path, header: &StoreHeader) -> Result<Self, StoreError> {
        if header.kind != StoreKind::Features {
            return Err(StoreError::KindMismatch {
                found: header.kind,
                expected: StoreKind::Features,
            });
        }
        if header.n_features == 0 {
            return Err(StoreError::Corrupt {
                offset: 0,
                detail: "a feature store needs n_features > 0".to_string(),
            });
        }
        Ok(FeatureStoreWriter {
            n_features: header.n_features as usize,
            n_bundles: header.bundles.len() as u32,
            frame: FrameWriter::create(path, header)?,
            bundle: None,
            labels: Vec::new(),
            rows: Vec::new(),
            payload: Vec::new(),
        })
    }
}

impl<W: Write> FeatureStoreWriter<W> {
    /// Appends `labels.len()` rows (flat row-major `rows`, exactly
    /// `labels.len() * n_features` values) belonging to bundle index
    /// `bundle`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the shapes disagree or `bundle` is
    /// out of range for the header's bundle list.
    pub fn append_rows(
        &mut self,
        bundle: u32,
        rows: &[f64],
        labels: &[bool],
    ) -> Result<(), StoreError> {
        if rows.len() != labels.len() * self.n_features {
            return Err(StoreError::Corrupt {
                offset: 0,
                detail: format!(
                    "shape mismatch: {} values for {} rows of {} features",
                    rows.len(),
                    labels.len(),
                    self.n_features
                ),
            });
        }
        if bundle >= self.n_bundles {
            return Err(StoreError::Corrupt {
                offset: 0,
                detail: format!(
                    "bundle index {bundle} out of range ({} bundles)",
                    self.n_bundles
                ),
            });
        }
        if self.bundle.is_some_and(|b| b != bundle) {
            self.flush_block()?;
        }
        self.bundle = Some(bundle);
        for (i, &label) in labels.iter().enumerate() {
            self.labels.push(u8::from(label));
            for &v in &rows[i * self.n_features..(i + 1) * self.n_features] {
                self.rows.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            if self.labels.len() >= BLOCK_RECORDS {
                self.flush_block()?;
                self.bundle = Some(bundle);
            }
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), StoreError> {
        let n = self.labels.len();
        if n == 0 {
            return Ok(());
        }
        let Some(bundle) = self.bundle else {
            return Ok(());
        };
        self.payload.clear();
        self.payload.extend_from_slice(&bundle.to_le_bytes());
        self.payload.extend_from_slice(&self.labels);
        self.payload.extend_from_slice(&self.rows);
        self.frame.write_block(n as u32, &self.payload)?;
        self.labels.clear();
        self.rows.clear();
        self.bundle = None;
        Ok(())
    }

    /// Flushes any partial block and the underlying file; returns
    /// `(blocks, records, bytes)` written.
    pub fn finish(mut self) -> Result<(u64, u64, u64), StoreError> {
        self.flush_block()?;
        self.frame.finish()
    }
}

/// One decoded block of feature rows.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBlock {
    /// Index into the header's bundle list.
    pub bundle: u32,
    /// Per-row labels (`true` = phishing).
    pub labels: Vec<bool>,
    /// Flat row-major matrix: `labels.len() * n_features` values.
    pub rows: Vec<f64>,
}

/// Streams feature blocks back out of a store file.
#[derive(Debug)]
pub struct FeatureStoreReader<R: Read> {
    frame: FrameReader<R>,
    n_features: usize,
    payload: Vec<u8>,
}

impl FeatureStoreReader<BufReader<File>> {
    /// Opens the feature store at `path`, validating magic, version,
    /// header checksum and kind.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let frame = FrameReader::open(path, StoreKind::Features)?;
        Self::from_frame(frame)
    }
}

impl<R: Read> FeatureStoreReader<R> {
    /// Wraps an already-open frame reader (must hold features).
    pub fn from_frame(frame: FrameReader<R>) -> Result<Self, StoreError> {
        if frame.header().kind != StoreKind::Features {
            return Err(StoreError::KindMismatch {
                found: frame.header().kind,
                expected: StoreKind::Features,
            });
        }
        Ok(FeatureStoreReader {
            n_features: frame.header().n_features as usize,
            frame,
            payload: Vec::new(),
        })
    }

    /// The validated file header.
    pub fn header(&self) -> &StoreHeader {
        self.frame.header()
    }

    /// Feature columns per row.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Decodes the next block, or `None` at a clean EOF.
    pub fn next_block(&mut self) -> Result<Option<FeatureBlock>, StoreError> {
        let offset = self.frame.offset();
        let Some(n) = self.frame.next_block(&mut self.payload)? else {
            return Ok(None);
        };
        let n = n as usize;
        let want = 4 + n + n * self.n_features * 8;
        if self.payload.len() != want {
            return Err(StoreError::Corrupt {
                offset,
                detail: format!(
                    "feature block holds {} bytes, expected {want} for {n} rows",
                    self.payload.len()
                ),
            });
        }
        // Decoded through `get` even though the length was validated
        // above: the bounds live with the accesses, so the two cannot
        // drift apart, and a decode bug surfaces as `Corrupt`, not a
        // panic in a reader entry point.
        let short = |what: &str| StoreError::Corrupt {
            offset,
            detail: format!("feature block ends inside {what}"),
        };
        let bundle = self
            .payload
            .get(..4)
            .and_then(|b| <[u8; 4]>::try_from(b).ok())
            .map(u32::from_le_bytes)
            .ok_or_else(|| short("bundle id"))?;
        if self.frame.header().bundle_name(bundle).is_none() {
            return Err(StoreError::Corrupt {
                offset,
                detail: format!("feature block references unknown bundle {bundle}"),
            });
        }
        let mut labels = Vec::with_capacity(n);
        for &b in self.payload.get(4..4 + n).ok_or_else(|| short("labels"))? {
            match b {
                0 => labels.push(false),
                1 => labels.push(true),
                other => {
                    return Err(StoreError::Corrupt {
                        offset,
                        detail: format!("label byte has invalid value {other}"),
                    })
                }
            }
        }
        let mut rows = Vec::with_capacity(n * self.n_features);
        let row_bytes = self.payload.get(4 + n..).ok_or_else(|| short("rows"))?;
        for chunk in row_bytes.chunks_exact(8) {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            rows.push(f64::from_bits(u64::from_le_bytes(word)));
        }
        Ok(Some(FeatureBlock {
            bundle,
            labels,
            rows,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::WorldStamp;

    fn header(n_features: u32) -> StoreHeader {
        StoreHeader {
            kind: StoreKind::Features,
            stamp: WorldStamp {
                seed: 3,
                phish_train: 1,
                phish_test: 1,
                phish_brand: 1,
                leg_train: 1,
                english_test: 1,
                other_language_test: 1,
                fault_rate: 0.0,
                fault_seed: 0,
            },
            n_features,
            bundles: vec!["leg_train".into(), "phish_train".into()],
            block_records: BLOCK_RECORDS as u32,
        }
    }

    fn writer(bytes: &mut Vec<u8>, n_features: usize) -> FeatureStoreWriter<&mut Vec<u8>> {
        FeatureStoreWriter {
            frame: FrameWriter::new(bytes, &header(n_features as u32)).unwrap(),
            n_features,
            bundle: None,
            n_bundles: 2,
            labels: Vec::new(),
            rows: Vec::new(),
            payload: Vec::new(),
        }
    }

    #[test]
    fn roundtrip_rows_bit_exact() {
        let mut bytes = Vec::new();
        let mut w = writer(&mut bytes, 3);
        // Exotic bit patterns must survive exactly: negative zero,
        // subnormals, infinities and a quiet NaN payload.
        let rows = vec![
            -0.0,
            f64::MIN_POSITIVE / 2.0,
            f64::INFINITY,
            1.0 / 3.0,
            f64::NEG_INFINITY,
            f64::from_bits(0x7ff8_0000_0000_beef),
        ];
        w.append_rows(0, &rows, &[false, true]).unwrap();
        w.append_rows(1, &[1.0, 2.0, 3.0], &[true]).unwrap();
        let (blocks, records, _) = w.finish().unwrap();
        assert_eq!(blocks, 2, "bundle switch must cut a block");
        assert_eq!(records, 3);

        let frame = FrameReader::new(&bytes[..]).unwrap();
        let mut r = FeatureStoreReader::from_frame(frame).unwrap();
        let a = r.next_block().unwrap().unwrap();
        assert_eq!(a.bundle, 0);
        assert_eq!(a.labels, [false, true]);
        let got: Vec<u64> = a.rows.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = rows.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "row bits must round-trip exactly");
        let b = r.next_block().unwrap().unwrap();
        assert_eq!((b.bundle, b.labels.len()), (1, 1));
        assert!(r.next_block().unwrap().is_none());
    }

    #[test]
    fn long_bundle_splits_into_blocks() {
        let mut bytes = Vec::new();
        let mut w = writer(&mut bytes, 2);
        let n = BLOCK_RECORDS + 5;
        let rows: Vec<f64> = (0..n * 2).map(|i| i as f64).collect();
        let labels = vec![true; n];
        w.append_rows(1, &rows, &labels).unwrap();
        let (blocks, records, _) = w.finish().unwrap();
        assert_eq!(blocks, 2);
        assert_eq!(records, n as u64);

        let frame = FrameReader::new(&bytes[..]).unwrap();
        let mut r = FeatureStoreReader::from_frame(frame).unwrap();
        let mut back_rows = Vec::new();
        let mut back_labels = Vec::new();
        while let Some(block) = r.next_block().unwrap() {
            assert_eq!(block.bundle, 1);
            back_rows.extend(block.rows);
            back_labels.extend(block.labels);
        }
        assert_eq!(back_rows, rows);
        assert_eq!(back_labels, labels);
    }

    #[test]
    fn shape_mismatch_is_typed() {
        let mut bytes = Vec::new();
        let mut w = writer(&mut bytes, 2);
        assert!(matches!(
            w.append_rows(0, &[1.0], &[true]),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            w.append_rows(9, &[1.0, 2.0], &[true]),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
