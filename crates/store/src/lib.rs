#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Persistent columnar corpus and feature store for the Know Your Phish
//! reproduction — generate once, train forever.
//!
//! Every experiment used to regenerate the simulated web and re-extract
//! all 212 features in memory, capping corpus size at what fits in RAM.
//! This crate is the durable middle: `kyp gen --store <dir>` streams
//! scraped page bundles *and* their extracted feature matrices to disk,
//! and `kyp train/eval/scan --from-store` stream them back through the
//! flat inference hot path without re-scraping or re-extracting — the
//! generate-once/score-many shape of the paper's captured-corpus
//! evaluation (Section VI).
//!
//! A store directory holds two files sharing one framing
//! (see [`format`]):
//!
//! - `pages.kyps` — [`PageStoreWriter`]/[`PageStoreReader`]: columnar
//!   [`kyp_web::VisitedPage`] blocks;
//! - `features.kypf` — [`FeatureStoreWriter`]/[`FeatureStoreReader`]:
//!   labeled f64 feature rows grouped by bundle, stored as raw IEEE-754
//!   bits so loaded matrices are bit-identical to extracted ones.
//!
//! # Integrity contract
//!
//! Both files open with magic + [`STORE_FORMAT_VERSION`] + a typed
//! [`StoreHeader`] carrying the [`WorldStamp`] (seed and corpus
//! configuration) the content was generated from. Every structure is
//! checksummed (FNV-1a 64): a bit flip anywhere surfaces as
//! [`StoreError::Corrupt`], a torn tail as [`StoreError::Truncated`],
//! and a pages/features pairing from different worlds as
//! [`StoreError::StampMismatch`] — hard errors in the style of
//! `ModelSnapshot`, never a silently wrong corpus.
//!
//! # Determinism contract
//!
//! Writers serialize exactly what they are handed in input order, with
//! no clocks, no entropy and no map iteration, so the same world always
//! produces byte-identical store files — `cmp` across runs and thread
//! counts is part of CI.

pub mod features;
pub mod format;
pub mod inspect;
pub mod pages;

pub use features::{FeatureBlock, FeatureStoreReader, FeatureStoreWriter};
pub use format::{
    fnv1a64, FrameReader, FrameWriter, StoreError, StoreHeader, StoreKind, WorldStamp,
    BLOCK_RECORDS, STORE_FORMAT_VERSION, STORE_MAGIC,
};
pub use inspect::{inspect_dir, inspect_file, DirInspection, FileInspection};
pub use pages::{PageStoreReader, PageStoreWriter};

use std::path::{Path, PathBuf};

/// File name of the page store inside a store directory.
pub const PAGES_FILE: &str = "pages.kyps";

/// File name of the feature store inside a store directory.
pub const FEATURES_FILE: &str = "features.kypf";

/// Path of the page store inside `dir`.
pub fn pages_path(dir: &Path) -> PathBuf {
    dir.join(PAGES_FILE)
}

/// Path of the feature store inside `dir`.
pub fn features_path(dir: &Path) -> PathBuf {
    dir.join(FEATURES_FILE)
}

/// Checks that a page header and a feature header describe the same
/// generated world: equal stamps and equal bundle lists.
///
/// # Errors
///
/// [`StoreError::StampMismatch`] naming the disagreeing part.
pub fn validate_pair(pages: &StoreHeader, features: &StoreHeader) -> Result<(), StoreError> {
    if pages.stamp != features.stamp {
        return Err(StoreError::StampMismatch {
            detail: format!(
                "pages were generated from {:?} but features from {:?}",
                pages.stamp, features.stamp
            ),
        });
    }
    if pages.bundles != features.bundles {
        return Err(StoreError::StampMismatch {
            detail: format!(
                "pages hold bundles {:?} but features hold {:?}",
                pages.bundles, features.bundles
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(kind: StoreKind, seed: u64) -> StoreHeader {
        StoreHeader {
            kind,
            stamp: WorldStamp {
                seed,
                phish_train: 1,
                phish_test: 1,
                phish_brand: 1,
                leg_train: 1,
                english_test: 1,
                other_language_test: 1,
                fault_rate: 0.0,
                fault_seed: 0,
            },
            n_features: 0,
            bundles: vec!["a".into()],
            block_records: BLOCK_RECORDS as u32,
        }
    }

    #[test]
    fn pair_validation() {
        let p = header(StoreKind::Pages, 1);
        let f = header(StoreKind::Features, 1);
        assert!(validate_pair(&p, &f).is_ok());
        let other = header(StoreKind::Features, 2);
        assert!(matches!(
            validate_pair(&p, &other),
            Err(StoreError::StampMismatch { .. })
        ));
        let mut renamed = header(StoreKind::Features, 1);
        renamed.bundles = vec!["b".into()];
        assert!(matches!(
            validate_pair(&p, &renamed),
            Err(StoreError::StampMismatch { .. })
        ));
    }

    #[test]
    fn paths_join() {
        let dir = Path::new("/tmp/store");
        assert!(pages_path(dir).ends_with(PAGES_FILE));
        assert!(features_path(dir).ends_with(FEATURES_FILE));
    }
}
