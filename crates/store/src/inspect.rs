//! Store inspection: header dumps, block counts and full checksum
//! verification for `kyp store inspect`.

use crate::format::{FrameReader, StoreError, StoreHeader};
use crate::{features_path, pages_path, validate_pair};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// What a scan of one store file found.
#[derive(Debug)]
pub struct FileInspection {
    /// The file that was scanned.
    pub path: PathBuf,
    /// Its validated header.
    pub header: StoreHeader,
    /// Blocks whose checksums verified.
    pub blocks: u64,
    /// Records across the verified blocks.
    pub records: u64,
    /// Bytes scanned (header plus verified blocks).
    pub bytes: u64,
    /// The error that stopped the scan, if the file is damaged past the
    /// verified prefix (`None` = the whole file verified clean).
    pub damage: Option<StoreError>,
}

/// Scans one store file front to back, verifying every block checksum.
///
/// Magic, version and header problems are hard errors — there is
/// nothing trustworthy to report about such a file. Damage *after* a
/// valid header is captured in [`FileInspection::damage`] instead, so
/// the operator still sees how much of the file verifies.
///
/// # Errors
///
/// [`StoreError::Io`] when the file cannot be read at all, plus the
/// header-level errors above.
pub fn inspect_file(path: &Path) -> Result<FileInspection, StoreError> {
    let mut frame = FrameReader::open_any(path)?;
    let header = frame.header().clone();
    let mut payload = Vec::new();
    let mut records = 0u64;
    let mut damage = None;
    let mut bytes = frame.offset();
    loop {
        match frame.next_block(&mut payload) {
            Ok(Some(n)) => {
                records += u64::from(n);
                bytes = frame.offset();
            }
            Ok(None) => break,
            Err(e) => {
                damage = Some(e);
                break;
            }
        }
    }
    Ok(FileInspection {
        path: path.to_path_buf(),
        header,
        blocks: frame.blocks_read(),
        records,
        bytes,
        damage,
    })
}

/// What an inspection of a whole store directory found.
#[derive(Debug)]
pub struct DirInspection {
    /// The scanned page store.
    pub pages: FileInspection,
    /// The scanned feature store.
    pub features: FileInspection,
    /// `None` when the two headers agree on stamp and bundles,
    /// otherwise the mismatch.
    pub pair_error: Option<StoreError>,
}

impl DirInspection {
    /// `true` when both files verified clean and their headers pair up.
    pub fn is_clean(&self) -> bool {
        self.pages.damage.is_none() && self.features.damage.is_none() && self.pair_error.is_none()
    }
}

/// Inspects the page and feature files of a store directory.
///
/// # Errors
///
/// Propagates per-file header-level failures from [`inspect_file`].
pub fn inspect_dir(dir: &Path) -> Result<DirInspection, StoreError> {
    let pages = inspect_file(&pages_path(dir))?;
    let features = inspect_file(&features_path(dir))?;
    let pair_error = validate_pair(&pages.header, &features.header).err();
    Ok(DirInspection {
        pages,
        features,
        pair_error,
    })
}

fn render_file(out: &mut String, f: &FileInspection) {
    let h = &f.header;
    let _ = writeln!(out, "{}", f.path.display());
    let _ = writeln!(
        out,
        "  kind: {}   format_version: {}   block_records: {}",
        h.kind.name(),
        crate::STORE_FORMAT_VERSION,
        h.block_records
    );
    let _ = writeln!(
        out,
        "  stamp: seed={} sizes={}/{}/{} brands={} tests={}/{} fault_rate={} fault_seed={}",
        h.stamp.seed,
        h.stamp.phish_train,
        h.stamp.leg_train,
        h.stamp.phish_test,
        h.stamp.phish_brand,
        h.stamp.english_test,
        h.stamp.other_language_test,
        h.stamp.fault_rate,
        h.stamp.fault_seed
    );
    let _ = writeln!(out, "  bundles: {}", h.bundles.join(", "));
    if h.n_features > 0 {
        let _ = writeln!(out, "  n_features: {}", h.n_features);
    }
    let _ = writeln!(
        out,
        "  blocks: {}   records: {}   bytes: {}   checksums: {}",
        f.blocks,
        f.records,
        f.bytes,
        match &f.damage {
            None => "all verified".to_string(),
            Some(e) => format!("DAMAGED after verified prefix — {e}"),
        }
    );
}

impl DirInspection {
    /// Human-readable multi-line summary for `kyp store inspect`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_file(&mut out, &self.pages);
        render_file(&mut out, &self.features);
        match &self.pair_error {
            None => {
                let _ = writeln!(out, "pair: pages and features stamps agree");
            }
            Some(e) => {
                let _ = writeln!(out, "pair: MISMATCH — {e}");
            }
        }
        let _ = writeln!(
            out,
            "status: {}",
            if self.is_clean() { "clean" } else { "DAMAGED" }
        );
        out
    }
}
