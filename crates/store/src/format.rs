//! The shared on-disk framing: magic, version stamp, checksummed json
//! header, then a sequence of length-prefixed checksummed blocks.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic  "KYPSTORE"                                  8 bytes   │
//! │ format_version                               u32 LE 4 bytes  │
//! │ header_len                                   u32 LE 4 bytes  │
//! │ header json  (StoreHeader, serde)            header_len      │
//! │ header checksum  (FNV-1a 64 of header json)  u64 LE 8 bytes  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ block 0: payload_len u32 LE │ record_count u32 LE            │
//! │          payload … payload_len bytes                         │
//! │          checksum  (FNV-1a 64 of payload)    u64 LE 8 bytes  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ block 1: …                                                   │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! There is deliberately no footer: writers append blocks as data
//! streams in and never seek backwards, so a crash mid-write leaves a
//! prefix of valid blocks followed by at most one torn block, which
//! readers surface as [`StoreError::Truncated`] rather than silently
//! accepting a short corpus.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Leading magic bytes of every store file.
pub const STORE_MAGIC: [u8; 8] = *b"KYPSTORE";

/// The store format this build writes and accepts.
///
/// Bump on any change to the framing, the header schema, or the block
/// payload encodings that older readers would misinterpret — mismatches
/// are hard errors in the style of `ModelSnapshot`.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Records per block: bounds writer memory and the unit of checksum
/// verification and streaming reads.
pub const BLOCK_RECORDS: usize = 256;

/// Upper bound accepted for a single block payload; a length field above
/// this is treated as corruption instead of being allocated.
const MAX_BLOCK_LEN: u32 = 1 << 30;

/// What a store file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreKind {
    /// Scraped [`kyp_web::VisitedPage`] bundles, columnar per block.
    Pages,
    /// Extracted feature matrices: labeled f64 rows grouped by bundle.
    Features,
}

impl StoreKind {
    /// Lower-case human name, used in messages and `store inspect`.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Pages => "pages",
            StoreKind::Features => "features",
        }
    }
}

/// The exact world configuration a store was generated from.
///
/// Pages and features written into one store directory must carry the
/// same stamp; training against features extracted from a different
/// world than the pages (or the ranker) would silently skew every
/// downstream number, so [`validate_pair`](crate::validate_pair) makes
/// it a hard [`StoreError::StampMismatch`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldStamp {
    /// Master seed of the simulated web.
    pub seed: u64,
    /// Phishing training-set size.
    pub phish_train: usize,
    /// Phishing test-set size.
    pub phish_test: usize,
    /// Distinct brands targeted by the phishing campaigns.
    pub phish_brand: usize,
    /// Legitimate training-set size.
    pub leg_train: usize,
    /// English legitimate test-set size.
    pub english_test: usize,
    /// Non-English legitimate test-set size.
    pub other_language_test: usize,
    /// Scrape fault-injection rate (0.0 = clean web).
    pub fault_rate: f64,
    /// Seed of the fault plan (meaningful only when `fault_rate > 0`).
    pub fault_seed: u64,
}

/// The typed, versioned header at the front of every store file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreHeader {
    /// What the blocks of this file encode.
    pub kind: StoreKind,
    /// The world configuration the content was generated from.
    pub stamp: WorldStamp,
    /// Feature columns per row (`0` for page stores).
    pub n_features: u32,
    /// Bundle names, in generation order; block payloads reference
    /// bundles by index into this list.
    pub bundles: Vec<String>,
    /// The block record capacity the writer used (informational).
    pub block_records: u32,
}

impl StoreHeader {
    /// The index of `name` in the bundle list.
    pub fn bundle_id(&self, name: &str) -> Option<u32> {
        self.bundles
            .iter()
            .position(|b| b == name)
            .map(|i| i as u32)
    }

    /// The bundle name at index `id`.
    pub fn bundle_name(&self, id: u32) -> Option<&str> {
        self.bundles.get(id as usize).map(String::as_str)
    }
}

/// Why a store file could not be written or read.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with [`STORE_MAGIC`].
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// The version stamped in the file.
        found: u32,
        /// The version this build supports.
        expected: u32,
    },
    /// The file holds a different kind of content than the caller asked
    /// for (e.g. a features file opened as a page store).
    KindMismatch {
        /// The kind stamped in the file header.
        found: StoreKind,
        /// The kind the caller expected.
        expected: StoreKind,
    },
    /// The file ends mid-structure — a torn write or a truncated copy.
    Truncated {
        /// Byte offset at which the structure was cut off.
        offset: u64,
        /// What was being read when the data ran out.
        detail: String,
    },
    /// The bytes are structurally present but wrong: checksum mismatch,
    /// implausible lengths, undecodable payloads.
    Corrupt {
        /// Byte offset of the corrupt structure.
        offset: u64,
        /// What failed to verify or decode.
        detail: String,
    },
    /// Two store files that must describe the same world do not.
    StampMismatch {
        /// Which header fields disagree.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::BadMagic { found } => write!(
                f,
                "not a kyp store file: magic {found:?} (expected {STORE_MAGIC:?})"
            ),
            StoreError::VersionMismatch { found, expected } => write!(
                f,
                "store format version {found} is not supported (this build \
                 reads version {expected}; re-run `kyp gen --store` with a \
                 matching build)"
            ),
            StoreError::KindMismatch { found, expected } => write!(
                f,
                "store holds {} but {} were expected",
                found.name(),
                expected.name()
            ),
            StoreError::Truncated { offset, detail } => {
                write!(f, "store truncated at byte {offset}: {detail}")
            }
            StoreError::Corrupt { offset, detail } => {
                write!(f, "store corrupt at byte {offset}: {detail}")
            }
            StoreError::StampMismatch { detail } => {
                write!(f, "store stamp mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// FNV-1a 64-bit hash — the per-block and header checksum.
///
/// Dependency-free, stable across platforms, and already the hashing
/// idiom of the workspace (fault plans, cluster ring).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes the framing: header up front, then checksummed blocks on
/// demand. Generic over `Write` so tests can frame into a `Vec<u8>`.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    out: W,
    offset: u64,
    blocks: u64,
    records: u64,
}

impl FrameWriter<BufWriter<File>> {
    /// Creates `path` (truncating any previous file) and writes the
    /// header for `header`.
    pub fn create(path: &Path, header: &StoreHeader) -> Result<Self, StoreError> {
        let file = File::create(path)?;
        FrameWriter::new(BufWriter::new(file), header)
    }
}

impl<W: Write> FrameWriter<W> {
    /// Writes magic, version and the checksummed header into `out`.
    pub fn new(mut out: W, header: &StoreHeader) -> Result<Self, StoreError> {
        let json = serde_json::to_string(header)
            .map_err(|e| StoreError::Corrupt {
                offset: 0,
                detail: format!("header failed to serialize: {e}"),
            })?
            .into_bytes();
        let mut head = Vec::with_capacity(16 + json.len() + 8);
        head.extend_from_slice(&STORE_MAGIC);
        put_u32(&mut head, STORE_FORMAT_VERSION);
        put_u32(&mut head, json.len() as u32);
        head.extend_from_slice(&json);
        head.extend_from_slice(&fnv1a64(&json).to_le_bytes());
        out.write_all(&head)?;
        Ok(FrameWriter {
            out,
            offset: head.len() as u64,
            blocks: 0,
            records: 0,
        })
    }

    /// Appends one checksummed block of `record_count` records.
    pub fn write_block(&mut self, record_count: u32, payload: &[u8]) -> Result<(), StoreError> {
        let mut head = [0u8; 8];
        head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        head[4..].copy_from_slice(&record_count.to_le_bytes());
        self.out.write_all(&head)?;
        self.out.write_all(payload)?;
        self.out.write_all(&fnv1a64(payload).to_le_bytes())?;
        self.offset += 8 + payload.len() as u64 + 8;
        self.blocks += 1;
        self.records += u64::from(record_count);
        Ok(())
    }

    /// Flushes and returns `(blocks, records, bytes)` written.
    pub fn finish(mut self) -> Result<(u64, u64, u64), StoreError> {
        self.out.flush()?;
        Ok((self.blocks, self.records, self.offset))
    }
}

/// Reads the framing sequentially: validates magic, version and header
/// once, then yields verified block payloads one at a time so readers
/// never hold more than one block in memory.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    input: R,
    header: StoreHeader,
    offset: u64,
    blocks_read: u64,
}

impl FrameReader<BufReader<File>> {
    /// Opens `path` and validates that it holds `expected` content.
    pub fn open(path: &Path, expected: StoreKind) -> Result<Self, StoreError> {
        let reader = Self::open_any(path)?;
        if reader.header.kind != expected {
            return Err(StoreError::KindMismatch {
                found: reader.header.kind,
                expected,
            });
        }
        Ok(reader)
    }

    /// Opens `path` accepting either kind (used by `store inspect`).
    pub fn open_any(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        FrameReader::new(BufReader::new(file))
    }
}

impl<R: Read> FrameReader<R> {
    /// Validates magic, version and header checksum, parses the header.
    pub fn new(mut input: R) -> Result<Self, StoreError> {
        let mut offset = 0u64;
        let mut magic = [0u8; 8];
        read_exact_at(&mut input, &mut magic, offset, "file magic")?;
        if magic != STORE_MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        offset += 8;
        let mut word = [0u8; 4];
        read_exact_at(&mut input, &mut word, offset, "format version")?;
        let version = u32::from_le_bytes(word);
        if version != STORE_FORMAT_VERSION {
            return Err(StoreError::VersionMismatch {
                found: version,
                expected: STORE_FORMAT_VERSION,
            });
        }
        offset += 4;
        read_exact_at(&mut input, &mut word, offset, "header length")?;
        let header_len = u32::from_le_bytes(word);
        if header_len > MAX_BLOCK_LEN {
            return Err(StoreError::Corrupt {
                offset,
                detail: format!("implausible header length {header_len}"),
            });
        }
        offset += 4;
        let mut json = vec![0u8; header_len as usize];
        read_exact_at(&mut input, &mut json, offset, "header json")?;
        offset += u64::from(header_len);
        let mut sum = [0u8; 8];
        read_exact_at(&mut input, &mut sum, offset, "header checksum")?;
        if u64::from_le_bytes(sum) != fnv1a64(&json) {
            return Err(StoreError::Corrupt {
                offset,
                detail: "header checksum mismatch".to_string(),
            });
        }
        offset += 8;
        let text = std::str::from_utf8(&json).map_err(|e| StoreError::Corrupt {
            offset: 16,
            detail: format!("header json is not utf-8: {e}"),
        })?;
        let header: StoreHeader = serde_json::from_str(text).map_err(|e| StoreError::Corrupt {
            offset: 16,
            detail: format!("header json does not parse: {e}"),
        })?;
        Ok(FrameReader {
            input,
            header,
            offset,
            blocks_read: 0,
        })
    }

    /// The validated file header.
    pub fn header(&self) -> &StoreHeader {
        &self.header
    }

    /// Blocks yielded so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// Current byte offset into the file.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads the next block into `payload`, returning its record count,
    /// or `None` at a clean end of file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the file ends mid-block and
    /// [`StoreError::Corrupt`] on checksum mismatch or an implausible
    /// length field.
    pub fn next_block(&mut self, payload: &mut Vec<u8>) -> Result<Option<u32>, StoreError> {
        let mut head = [0u8; 8];
        match read_head(&mut self.input, &mut head) {
            HeadRead::Eof => return Ok(None),
            HeadRead::Partial(got) => {
                return Err(StoreError::Truncated {
                    offset: self.offset + got as u64,
                    detail: "file ends inside a block header".to_string(),
                });
            }
            HeadRead::Err(e) => return Err(StoreError::Io(e)),
            HeadRead::Full => {}
        }
        let [l0, l1, l2, l3, c0, c1, c2, c3] = head;
        let payload_len = u32::from_le_bytes([l0, l1, l2, l3]);
        let record_count = u32::from_le_bytes([c0, c1, c2, c3]);
        if payload_len > MAX_BLOCK_LEN {
            return Err(StoreError::Corrupt {
                offset: self.offset,
                detail: format!("implausible block length {payload_len}"),
            });
        }
        self.offset += 8;
        payload.resize(payload_len as usize, 0);
        read_exact_at(&mut self.input, payload, self.offset, "block payload")?;
        self.offset += u64::from(payload_len);
        let mut sum = [0u8; 8];
        read_exact_at(&mut self.input, &mut sum, self.offset, "block checksum")?;
        if u64::from_le_bytes(sum) != fnv1a64(payload) {
            return Err(StoreError::Corrupt {
                offset: self.offset,
                detail: format!("block {} checksum mismatch", self.blocks_read),
            });
        }
        self.offset += 8;
        self.blocks_read += 1;
        Ok(Some(record_count))
    }
}

enum HeadRead {
    Full,
    Eof,
    Partial(usize),
    Err(std::io::Error),
}

/// Reads an 8-byte block head, distinguishing a clean EOF (zero bytes)
/// from a torn one (some bytes).
fn read_head<R: Read>(input: &mut R, head: &mut [u8; 8]) -> HeadRead {
    let mut got = 0;
    while got < head.len() {
        // kyp-lint: allow(P02) — the loop guard keeps `got < head.len()`, so the range is in bounds
        match input.read(&mut head[got..]) {
            Ok(0) => {
                return if got == 0 {
                    HeadRead::Eof
                } else {
                    HeadRead::Partial(got)
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return HeadRead::Err(e),
        }
    }
    HeadRead::Full
}

/// `read_exact` that reports a short read as [`StoreError::Truncated`]
/// at `offset` instead of a bare io error.
fn read_exact_at<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    offset: u64,
    what: &str,
) -> Result<(), StoreError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated {
                offset,
                detail: format!("file ends inside {what}"),
            }
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(kind: StoreKind) -> StoreHeader {
        StoreHeader {
            kind,
            stamp: WorldStamp {
                seed: 7,
                phish_train: 10,
                phish_test: 10,
                phish_brand: 3,
                leg_train: 20,
                english_test: 10,
                other_language_test: 5,
                fault_rate: 0.0,
                fault_seed: 0,
            },
            n_features: 0,
            bundles: vec!["a".into(), "b".into()],
            block_records: BLOCK_RECORDS as u32,
        }
    }

    fn frame_bytes(blocks: &[(u32, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = FrameWriter::new(&mut out, &header(StoreKind::Pages)).unwrap();
        for &(n, payload) in blocks {
            w.write_block(n, payload).unwrap();
        }
        w.finish().unwrap();
        out
    }

    #[test]
    fn roundtrip_blocks() {
        let bytes = frame_bytes(&[(2, b"hello"), (1, b""), (3, b"worldly")]);
        let mut r = FrameReader::new(&bytes[..]).unwrap();
        assert_eq!(r.header(), &header(StoreKind::Pages));
        let mut payload = Vec::new();
        assert_eq!(r.next_block(&mut payload).unwrap(), Some(2));
        assert_eq!(payload, b"hello");
        assert_eq!(r.next_block(&mut payload).unwrap(), Some(1));
        assert_eq!(payload, b"");
        assert_eq!(r.next_block(&mut payload).unwrap(), Some(3));
        assert_eq!(payload, b"worldly");
        assert_eq!(r.next_block(&mut payload).unwrap(), None);
        assert_eq!(r.blocks_read(), 3);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = frame_bytes(&[(1, b"x")]);
        bytes[0] = b'X';
        match FrameReader::new(&bytes[..]) {
            Err(StoreError::BadMagic { found }) => assert_eq!(found[0], b'X'),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = frame_bytes(&[(1, b"x")]);
        bytes[8] = 0xFF;
        match FrameReader::new(&bytes[..]) {
            Err(StoreError::VersionMismatch { found, expected }) => {
                assert_eq!(expected, STORE_FORMAT_VERSION);
                assert_ne!(found, STORE_FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn header_bitflip_is_corrupt() {
        let mut bytes = frame_bytes(&[(1, b"x")]);
        bytes[20] ^= 0x01; // inside the header json
        assert!(matches!(
            FrameReader::new(&bytes[..]),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn payload_bitflip_is_corrupt() {
        let bytes = frame_bytes(&[(1, b"payload-data")]);
        let mut flipped = bytes.clone();
        let i = flipped.len() - 12; // inside the payload, before its checksum
        flipped[i] ^= 0x80;
        let mut r = FrameReader::new(&flipped[..]).unwrap();
        let mut payload = Vec::new();
        assert!(matches!(
            r.next_block(&mut payload),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = frame_bytes(&[(1, b"some-payload-bytes")]);
        // Cut inside the final checksum.
        let cut = &bytes[..bytes.len() - 3];
        let mut r = FrameReader::new(cut).unwrap();
        let mut payload = Vec::new();
        assert!(matches!(
            r.next_block(&mut payload),
            Err(StoreError::Truncated { .. })
        ));
        // Cut inside the block head.
        let head_cut = frame_bytes(&[]);
        let mut with_partial_head = head_cut.clone();
        with_partial_head.extend_from_slice(&[1, 2, 3]);
        let mut r = FrameReader::new(&with_partial_head[..]).unwrap();
        assert!(matches!(
            r.next_block(&mut payload),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn kind_check_on_open() {
        let dir = std::env::temp_dir().join("kyp_store_format_kind");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.kyps");
        let w = FrameWriter::create(&path, &header(StoreKind::Pages)).unwrap();
        w.finish().unwrap();
        assert!(FrameReader::open(&path, StoreKind::Pages).is_ok());
        assert!(matches!(
            FrameReader::open(&path, StoreKind::Features),
            Err(StoreError::KindMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
