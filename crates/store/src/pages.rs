//! Columnar page store: streams [`VisitedPage`] bundles to disk in
//! checksummed blocks of [`BLOCK_RECORDS`] records.
//!
//! Within a block each field is stored as a column (all starting URLs,
//! then all landing URLs, …) so sequential readers decode straight-line
//! runs of homogeneous data. URLs are stored as their raw strings —
//! `kyp_url::Url` preserves its input verbatim, so re-parsing on load
//! reproduces the identical struct bit for bit.

use crate::format::{FrameReader, FrameWriter, StoreError, StoreHeader, StoreKind, BLOCK_RECORDS};
use kyp_url::Url;
use kyp_web::VisitedPage;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_urls(counts: &mut Vec<u8>, vals: &mut Vec<u8>, urls: &[Url]) {
    put_u32(counts, urls.len() as u32);
    for u in urls {
        put_str(vals, u.as_str());
    }
}

/// The in-progress column buffers for one block.
#[derive(Debug, Default)]
struct PageColumns {
    n: u32,
    starting: Vec<u8>,
    landing: Vec<u8>,
    chain_counts: Vec<u8>,
    chain_vals: Vec<u8>,
    logged_counts: Vec<u8>,
    logged_vals: Vec<u8>,
    href_counts: Vec<u8>,
    href_vals: Vec<u8>,
    text: Vec<u8>,
    title: Vec<u8>,
    copyright_flags: Vec<u8>,
    copyright_vals: Vec<u8>,
    screenshot: Vec<u8>,
    input: Vec<u8>,
    image: Vec<u8>,
    iframe: Vec<u8>,
}

impl PageColumns {
    fn push(&mut self, page: &VisitedPage) {
        self.n += 1;
        put_str(&mut self.starting, page.starting_url.as_str());
        put_str(&mut self.landing, page.landing_url.as_str());
        put_urls(
            &mut self.chain_counts,
            &mut self.chain_vals,
            &page.redirection_chain,
        );
        put_urls(
            &mut self.logged_counts,
            &mut self.logged_vals,
            &page.logged_links,
        );
        put_urls(&mut self.href_counts, &mut self.href_vals, &page.href_links);
        put_str(&mut self.text, &page.text);
        put_str(&mut self.title, &page.title);
        match &page.copyright {
            Some(c) => {
                self.copyright_flags.push(1);
                put_str(&mut self.copyright_vals, c);
            }
            None => self.copyright_flags.push(0),
        }
        put_str(&mut self.screenshot, &page.screenshot_text);
        put_u32(&mut self.input, page.input_count as u32);
        put_u32(&mut self.image, page.image_count as u32);
        put_u32(&mut self.iframe, page.iframe_count as u32);
    }

    /// Concatenates the columns into `payload` (in decode order) and
    /// resets the buffers for the next block.
    fn drain_into(&mut self, payload: &mut Vec<u8>) -> u32 {
        payload.clear();
        for col in [
            &mut self.starting,
            &mut self.landing,
            &mut self.chain_counts,
            &mut self.chain_vals,
            &mut self.logged_counts,
            &mut self.logged_vals,
            &mut self.href_counts,
            &mut self.href_vals,
            &mut self.text,
            &mut self.title,
            &mut self.copyright_flags,
            &mut self.copyright_vals,
            &mut self.screenshot,
            &mut self.input,
            &mut self.image,
            &mut self.iframe,
        ] {
            payload.extend_from_slice(col);
            col.clear();
        }
        let n = self.n;
        self.n = 0;
        n
    }
}

/// Streams pages into a store file with bounded memory: at most one
/// block of records is buffered before it is flushed as a checksummed
/// columnar block.
#[derive(Debug)]
pub struct PageStoreWriter<W: Write> {
    frame: FrameWriter<W>,
    columns: PageColumns,
    payload: Vec<u8>,
}

impl PageStoreWriter<BufWriter<File>> {
    /// Creates a page store at `path` with the given header.
    ///
    /// # Errors
    ///
    /// [`StoreError::KindMismatch`] when `header.kind` is not
    /// [`StoreKind::Pages`], plus filesystem failures.
    pub fn create(path: &Path, header: &StoreHeader) -> Result<Self, StoreError> {
        if header.kind != StoreKind::Pages {
            return Err(StoreError::KindMismatch {
                found: header.kind,
                expected: StoreKind::Pages,
            });
        }
        Ok(PageStoreWriter {
            frame: FrameWriter::create(path, header)?,
            columns: PageColumns::default(),
            payload: Vec::new(),
        })
    }
}

impl<W: Write> PageStoreWriter<W> {
    /// Appends one page, flushing a block when [`BLOCK_RECORDS`] are
    /// buffered.
    pub fn append(&mut self, page: &VisitedPage) -> Result<(), StoreError> {
        self.columns.push(page);
        if self.columns.n as usize >= BLOCK_RECORDS {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), StoreError> {
        let n = self.columns.drain_into(&mut self.payload);
        if n > 0 {
            self.frame.write_block(n, &self.payload)?;
        }
        Ok(())
    }

    /// Flushes any partial block and the underlying file; returns
    /// `(blocks, records, bytes)` written.
    pub fn finish(mut self) -> Result<(u64, u64, u64), StoreError> {
        self.flush_block()?;
        self.frame.finish()
    }
}

/// A bounds-checked forward cursor over a block payload; every decode
/// error is reported as a detail string the reader maps to
/// [`StoreError::Corrupt`].
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.buf.get(self.pos..end));
        match slice {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(format!(
                "block payload ends inside {what} (at {} of {})",
                self.pos,
                self.buf.len()
            )),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        <[u8; 4]>::try_from(b)
            .map(u32::from_le_bytes)
            .map_err(|_| format!("{what} is not 4 bytes"))
    }

    fn byte(&mut self, what: &str) -> Result<u8, String> {
        self.take(1, what)?
            .first()
            .copied()
            .ok_or_else(|| format!("{what} is empty"))
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("{what} is not utf-8: {e}"))
    }

    fn url(&mut self, what: &str) -> Result<Url, String> {
        let s = self.string(what)?;
        Url::parse(&s).map_err(|e| format!("{what} {s:?} does not parse: {e:?}"))
    }

    fn done(&self, what: &str) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn decode_block(payload: &[u8], n: usize) -> Result<Vec<VisitedPage>, String> {
    let mut cur = Cur::new(payload);
    let starting: Vec<Url> = decode_n(&mut cur, n, |c| c.url("starting_url"))?;
    let landing: Vec<Url> = decode_n(&mut cur, n, |c| c.url("landing_url"))?;
    let chains = decode_url_lists(&mut cur, n, "redirection_chain")?;
    let logged = decode_url_lists(&mut cur, n, "logged_links")?;
    let hrefs = decode_url_lists(&mut cur, n, "href_links")?;
    let text: Vec<String> = decode_n(&mut cur, n, |c| c.string("text"))?;
    let title: Vec<String> = decode_n(&mut cur, n, |c| c.string("title"))?;
    let mut flags = Vec::with_capacity(n);
    for _ in 0..n {
        match cur.byte("copyright flag")? {
            0 => flags.push(false),
            1 => flags.push(true),
            other => return Err(format!("copyright flag has invalid value {other}")),
        }
    }
    let mut copyright = Vec::with_capacity(n);
    for &present in &flags {
        copyright.push(if present {
            Some(cur.string("copyright")?)
        } else {
            None
        });
    }
    let screenshot: Vec<String> = decode_n(&mut cur, n, |c| c.string("screenshot_text"))?;
    let input: Vec<u32> = decode_n(&mut cur, n, |c| c.u32("input_count"))?;
    let image: Vec<u32> = decode_n(&mut cur, n, |c| c.u32("image_count"))?;
    let iframe: Vec<u32> = decode_n(&mut cur, n, |c| c.u32("iframe_count"))?;
    cur.done("page columns")?;

    let mut pages = Vec::with_capacity(n);
    let mut starting = starting.into_iter();
    let mut landing = landing.into_iter();
    let mut chains = chains.into_iter();
    let mut logged = logged.into_iter();
    let mut hrefs = hrefs.into_iter();
    let mut text = text.into_iter();
    let mut title = title.into_iter();
    let mut copyright = copyright.into_iter();
    let mut screenshot = screenshot.into_iter();
    let mut input = input.into_iter();
    let mut image = image.into_iter();
    let mut iframe = iframe.into_iter();
    for _ in 0..n {
        // Every column was decoded with exactly `n` entries above, so
        // the iterators cannot run dry; the defaults are unreachable.
        pages.push(VisitedPage {
            starting_url: starting.next().ok_or("missing starting_url")?,
            landing_url: landing.next().ok_or("missing landing_url")?,
            redirection_chain: chains.next().unwrap_or_default(),
            logged_links: logged.next().unwrap_or_default(),
            href_links: hrefs.next().unwrap_or_default(),
            text: text.next().unwrap_or_default(),
            title: title.next().unwrap_or_default(),
            copyright: copyright.next().unwrap_or_default(),
            screenshot_text: screenshot.next().unwrap_or_default(),
            input_count: input.next().unwrap_or_default() as usize,
            image_count: image.next().unwrap_or_default() as usize,
            iframe_count: iframe.next().unwrap_or_default() as usize,
        });
    }
    Ok(pages)
}

fn decode_n<T>(
    cur: &mut Cur<'_>,
    n: usize,
    mut one: impl FnMut(&mut Cur<'_>) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(one(cur)?);
    }
    Ok(out)
}

fn decode_url_lists(cur: &mut Cur<'_>, n: usize, what: &str) -> Result<Vec<Vec<Url>>, String> {
    let counts: Vec<u32> = decode_n(cur, n, |c| c.u32(what))?;
    let mut lists = Vec::with_capacity(n);
    for &count in &counts {
        let mut list = Vec::with_capacity(count as usize);
        for _ in 0..count {
            list.push(cur.url(what)?);
        }
        lists.push(list);
    }
    Ok(lists)
}

/// Streams page blocks back out of a store file.
#[derive(Debug)]
pub struct PageStoreReader<R: Read> {
    frame: FrameReader<R>,
    payload: Vec<u8>,
}

impl PageStoreReader<BufReader<File>> {
    /// Opens the page store at `path`, validating magic, version, header
    /// checksum and kind.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Ok(PageStoreReader {
            frame: FrameReader::open(path, StoreKind::Pages)?,
            payload: Vec::new(),
        })
    }
}

impl<R: Read> PageStoreReader<R> {
    /// Wraps an already-open frame reader (must hold pages).
    pub fn from_frame(frame: FrameReader<R>) -> Result<Self, StoreError> {
        if frame.header().kind != StoreKind::Pages {
            return Err(StoreError::KindMismatch {
                found: frame.header().kind,
                expected: StoreKind::Pages,
            });
        }
        Ok(PageStoreReader {
            frame,
            payload: Vec::new(),
        })
    }

    /// The validated file header.
    pub fn header(&self) -> &StoreHeader {
        self.frame.header()
    }

    /// Decodes the next block of pages, or `None` at a clean EOF.
    pub fn next_block(&mut self) -> Result<Option<Vec<VisitedPage>>, StoreError> {
        let offset = self.frame.offset();
        let Some(n) = self.frame.next_block(&mut self.payload)? else {
            return Ok(None);
        };
        decode_block(&self.payload, n as usize)
            .map(Some)
            .map_err(|detail| StoreError::Corrupt { offset, detail })
    }

    /// Reads every remaining page into memory (serving-stack loads).
    pub fn read_all(mut self) -> Result<Vec<VisitedPage>, StoreError> {
        let mut pages = Vec::new();
        while let Some(block) = self.next_block()? {
            pages.extend(block);
        }
        Ok(pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::WorldStamp;

    fn header() -> StoreHeader {
        StoreHeader {
            kind: StoreKind::Pages,
            stamp: WorldStamp {
                seed: 1,
                phish_train: 2,
                phish_test: 3,
                phish_brand: 4,
                leg_train: 5,
                english_test: 6,
                other_language_test: 7,
                fault_rate: 0.25,
                fault_seed: 9,
            },
            n_features: 0,
            bundles: vec!["phish_train".into()],
            block_records: BLOCK_RECORDS as u32,
        }
    }

    fn page(i: usize) -> VisitedPage {
        let url = |s: &str| Url::parse(s).unwrap();
        VisitedPage {
            starting_url: url(&format!("http://short.ly/{i}")),
            landing_url: url(&format!("https://site{i}.example.com/login?x={i}#frag")),
            redirection_chain: vec![
                url(&format!("http://short.ly/{i}")),
                url(&format!("https://site{i}.example.com/login?x={i}#frag")),
            ],
            logged_links: vec![url("https://cdn.example.net/lib.js")],
            href_links: if i.is_multiple_of(2) {
                vec![url("https://other.org/a"), url("http://10.0.0.1/b")]
            } else {
                Vec::new()
            },
            text: format!("page body {i} with ünïcode"),
            title: format!("Title {i}"),
            copyright: if i.is_multiple_of(3) {
                Some(format!("© Brand {i}"))
            } else {
                None
            },
            screenshot_text: format!("rendered {i}"),
            input_count: i,
            image_count: i * 2,
            iframe_count: i % 4,
        }
    }

    #[test]
    fn roundtrip_pages_across_blocks() {
        let pages: Vec<VisitedPage> = (0..BLOCK_RECORDS + 17).map(page).collect();
        let mut bytes = Vec::new();
        let mut w = PageStoreWriter {
            frame: FrameWriter::new(&mut bytes, &header()).unwrap(),
            columns: PageColumns::default(),
            payload: Vec::new(),
        };
        for p in &pages {
            w.append(p).unwrap();
        }
        let (blocks, records, _) = w.finish().unwrap();
        assert_eq!(blocks, 2);
        assert_eq!(records, pages.len() as u64);

        let frame = FrameReader::new(&bytes[..]).unwrap();
        let mut r = PageStoreReader::from_frame(frame).unwrap();
        let mut back = Vec::new();
        while let Some(block) = r.next_block().unwrap() {
            back.extend(block);
        }
        assert_eq!(back, pages, "pages must round-trip exactly");
    }

    #[test]
    fn corrupt_url_surfaces_as_typed_error() {
        let mut bytes = Vec::new();
        let mut w = PageStoreWriter {
            frame: FrameWriter::new(&mut bytes, &header()).unwrap(),
            columns: PageColumns::default(),
            payload: Vec::new(),
        };
        w.append(&page(0)).unwrap();
        w.finish().unwrap();
        // Rewrite the stored block with a payload whose first string has
        // a length larger than the payload: structurally corrupt but
        // with a valid checksum, exercising the decoder's bounds checks.
        let mut forged = Vec::new();
        let mut fw = FrameWriter::new(&mut forged, &header()).unwrap();
        fw.write_block(1, &[0xFF, 0xFF, 0xFF, 0x7F, b'x']).unwrap();
        fw.finish().unwrap();
        let frame = FrameReader::new(&forged[..]).unwrap();
        let mut r = PageStoreReader::from_frame(frame).unwrap();
        assert!(matches!(r.next_block(), Err(StoreError::Corrupt { .. })));
    }
}
