//! Thread-invariant executor counters.
//!
//! The pool deliberately exposes only aggregates that are identical at
//! any thread count: fan-out calls and the items they dealt out. Chunk
//! counts, worker counts and scheduling details vary with `KYP_THREADS`
//! and must never leak into observability output — the determinism suite
//! compares `metrics.json` byte-for-byte across thread counts.
//!
//! The counters are process-wide relaxed atomics: plain additions, so
//! the merged totals are independent of which worker incremented first.

use std::sync::atomic::{AtomicU64, Ordering};

static PAR_CALLS: AtomicU64 = AtomicU64::new(0);
static PAR_ITEMS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide executor counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Fan-out calls made ([`Pool::par_map_index`](crate::Pool::par_map_index)
    /// and the primitives built on it, plus
    /// [`Pool::par_chunks_mut`](crate::Pool::par_chunks_mut)).
    pub par_calls: u64,
    /// Total items those calls dealt out.
    pub par_items: u64,
}

pub(crate) fn record_par(items: usize) {
    PAR_CALLS.fetch_add(1, Ordering::Relaxed);
    PAR_ITEMS.fetch_add(items as u64, Ordering::Relaxed);
}

/// The executor counters accumulated since process start (or the last
/// [`reset_stats`]).
pub fn stats() -> ExecStats {
    ExecStats {
        par_calls: PAR_CALLS.load(Ordering::Relaxed),
        par_items: PAR_ITEMS.load(Ordering::Relaxed),
    }
}

/// Zeroes the executor counters (test isolation; callers exporting
/// per-run metrics snapshot before/after instead).
pub fn reset_stats() {
    PAR_CALLS.store(0, Ordering::Relaxed);
    PAR_ITEMS.store(0, Ordering::Relaxed);
}

impl ExecStats {
    /// Exports the snapshot into `registry` as gauges (`exec.par_calls`,
    /// `exec.par_items`). Only thread-invariant values are exported, so
    /// the rendered json is byte-identical at any thread count.
    pub fn export_into(&self, registry: &mut kyp_obs::MetricsRegistry) {
        registry.set_gauge("exec.par_calls", self.par_calls.cast_signed());
        registry.set_gauge("exec.par_items", self.par_items.cast_signed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_thread_invariant() {
        // Not reset-based (other tests run concurrently); measure deltas
        // of a serial and a parallel run of the same workload.
        let before = stats();
        crate::Pool::new(1).par_map_index(100, |i| i);
        let mid = stats();
        crate::Pool::new(8).par_map_index(100, |i| i);
        let after = stats();
        let serial = (
            mid.par_calls - before.par_calls,
            mid.par_items - before.par_items,
        );
        let parallel = (
            after.par_calls - mid.par_calls,
            after.par_items - mid.par_items,
        );
        assert_eq!(serial, parallel);
        assert_eq!(serial.1, 100);
    }

    #[test]
    fn export_writes_gauges() {
        let mut registry = kyp_obs::MetricsRegistry::new();
        ExecStats {
            par_calls: 3,
            par_items: 42,
        }
        .export_into(&mut registry);
        assert_eq!(registry.gauge("exec.par_calls"), 3);
        assert_eq!(registry.gauge("exec.par_items"), 42);
    }
}
