#![deny(missing_debug_implementations)]

//! Deterministic parallel execution for the *Know Your Phish* workspace.
//!
//! Every hot path of the reproduction — batch scraping, feature
//! extraction, gradient-boosting fits, dataset scoring, cross-validation
//! folds — is embarrassingly parallel over rows, columns or folds, but the
//! workspace is vendored and offline, so pulling in rayon is not an
//! option. This crate provides the minimal substitute on plain `std`:
//!
//! - [`Pool`] — a lightweight scoped thread pool (a thread *count* plus
//!   `std::thread::scope` spawning; threads are not kept alive between
//!   calls, which keeps the crate dependency- and unsafe-free),
//! - [`Pool::par_map`] / [`Pool::par_map_index`] — order-preserving
//!   chunked map: results come back indexed exactly as the input,
//! - [`Pool::par_chunks`] / [`Pool::par_chunks_mut`] — chunk-level
//!   fan-out over (mutable) slices,
//! - a process-wide default pool sized from `KYP_THREADS`, `set_threads`,
//!   or the machine's available parallelism, in that order.
//!
//! # Determinism contract
//!
//! Callers pass *pure* per-item functions; the pool guarantees the
//! assembled output is in input order regardless of which worker computed
//! which chunk. Under that discipline a computation produces bit-identical
//! results at **any** thread count — the property the repo's determinism
//! suite (`tests/determinism.rs`) enforces for training, classification
//! and cross-validation.
//!
//! # Examples
//!
//! ```
//! let pool = kyp_exec::Pool::new(4);
//! let doubled = pool.par_map(&[1, 2, 3, 4, 5], |x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
//! ```

mod stats;
pub use stats::{reset_stats, stats, ExecStats};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Chunks handed out per worker thread; >1 so uneven per-item costs
/// load-balance instead of serialising on the slowest chunk.
const CHUNKS_PER_THREAD: usize = 4;

/// Process-wide default thread count. `0` means "not yet resolved".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the default thread count for every subsequent [`pool`] call.
///
/// `0` resets to auto-detection (`KYP_THREADS`, then available
/// parallelism). Values are clamped to at least 1 thread.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::SeqCst);
}

/// The thread count the default pool will use.
///
/// Resolution order: [`set_threads`] override → `KYP_THREADS` environment
/// variable → `std::thread::available_parallelism()` → 1.
pub fn current_threads() -> usize {
    let n = GLOBAL_THREADS.load(Ordering::SeqCst);
    if n > 0 {
        return n;
    }
    let resolved = std::env::var("KYP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZero::get));
    resolved
}

/// The process-wide default pool (see [`current_threads`]).
pub fn pool() -> Pool {
    Pool::new(current_threads())
}

/// A scoped thread pool: a thread count plus order-preserving fan-out
/// primitives built on `std::thread::scope`.
///
/// Cheap to construct and `Copy`-sized; keeping one around merely pins a
/// thread count. With `threads == 1` every primitive degrades to the plain
/// serial loop with zero spawning overhead, which is what the determinism
/// tests force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool running `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `0..n`, returning results in index order.
    ///
    /// Work is dealt out in contiguous chunks through an atomic cursor;
    /// each worker appends `(chunk_start, results)` pairs which are
    /// reassembled by start index, so the output is identical to the
    /// serial `(0..n).map(f).collect()` whatever the thread count.
    ///
    /// # Panics
    ///
    /// A panic in `f` propagates to the caller once all workers have
    /// stopped (the panic payload of the first panicking worker).
    pub fn par_map_index<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        stats::record_par(n);
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let chunk = n.div_ceil(workers * CHUNKS_PER_THREAD).max(1);
        let cursor = AtomicUsize::new(0);
        let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());

        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        return;
                    }
                    let end = (start + chunk).min(n);
                    let out: Vec<R> = (start..end).map(&f).collect();
                    parts
                        .lock()
                        .expect("worker poisoned parts")
                        .push((start, out));
                });
            }
        });

        let mut parts = parts.into_inner().expect("worker poisoned parts");
        parts.sort_unstable_by_key(|(start, _)| *start);
        let mut result = Vec::with_capacity(n);
        for (_, mut part) in parts {
            result.append(&mut part);
        }
        debug_assert_eq!(result.len(), n);
        result
    }

    /// Maps `f` over the items of a slice, preserving input order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_index(items.len(), |i| f(&items[i]))
    }

    /// Applies `f` to consecutive chunks of at most `chunk_size` items,
    /// returning one result per chunk in slice order. `f` receives the
    /// chunk index and the chunk.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_size == 0`; panics in `f` propagate.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let n_chunks = items.len().div_ceil(chunk_size);
        self.par_map_index(n_chunks, |c| {
            let start = c * chunk_size;
            let end = (start + chunk_size).min(items.len());
            f(c, &items[start..end])
        })
    }

    /// Splits `items` into one contiguous chunk per worker and runs
    /// `f(chunk_start_offset, chunk)` on each concurrently. The chunks are
    /// disjoint, so mutation is race-free by construction.
    ///
    /// # Panics
    ///
    /// Panics in `f` propagate.
    pub fn par_chunks_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        stats::record_par(items.len());
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            f(0, items);
            return;
        }
        let chunk = n.div_ceil(workers);
        thread::scope(|scope| {
            for (c, slice) in items.chunks_mut(chunk).enumerate() {
                let f = &f;
                scope.spawn(move || f(c * chunk, slice));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_empty_input() {
        let pool = Pool::new(8);
        let out: Vec<i32> = pool.par_map(&[] as &[i32], |x| *x);
        assert!(out.is_empty());
        let out: Vec<usize> = pool.par_map_index(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_orders_more_items_than_threads() {
        let pool = Pool::new(3);
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let parallel = pool.par_map(&items, |x| x * x + 1);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn par_map_matches_at_every_thread_count() {
        for threads in [1, 2, 5, 16] {
            let pool = Pool::new(threads);
            let got = pool.par_map_index(257, |i| i as u64 * 3);
            let want: Vec<u64> = (0..257).map(|i| i as u64 * 3).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_propagates_worker_panic() {
        let pool = Pool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_index(100, |i| {
                assert!(i != 37, "worker exploded");
                i
            })
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
    }

    #[test]
    fn par_map_visits_every_index_once() {
        let pool = Pool::new(7);
        let visits = AtomicU64::new(0);
        let out = pool.par_map_index(500, |i| {
            visits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(visits.load(Ordering::Relaxed), 500);
        assert_eq!(out, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_slice_in_order() {
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..103).collect();
        let sums = pool.par_chunks(&items, 10, |c, chunk| {
            (c, chunk.iter().copied().sum::<u32>())
        });
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.last().unwrap().1, 100 + 101 + 102);
        let total: u32 = sums.iter().map(|(_, s)| s).sum();
        assert_eq!(total, items.iter().sum::<u32>());
        for (i, (c, _)) in sums.iter().enumerate() {
            assert_eq!(i, *c);
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn par_chunks_rejects_zero_chunk() {
        Pool::new(2).par_chunks(&[1, 2, 3], 0, |_, _| ());
    }

    #[test]
    fn par_chunks_mut_mutates_disjointly() {
        let pool = Pool::new(4);
        let mut values = vec![0u64; 1001];
        pool.par_chunks_mut(&mut values, |offset, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (offset + k) as u64;
            }
        });
        let want: Vec<u64> = (0..1001).collect();
        assert_eq!(values, want);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.par_map_index(5, |i| i * 2), vec![0, 2, 4, 6, 8]);
        let mut v = vec![1, 2, 3];
        pool.par_chunks_mut(&mut v, |_, chunk| {
            for x in chunk.iter_mut() {
                *x += 10;
            }
        });
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn pool_clamps_zero_threads() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn global_override_wins() {
        set_threads(3);
        assert_eq!(current_threads(), 3);
        assert_eq!(pool().threads(), 3);
        set_threads(0); // reset to auto-detection
        assert!(current_threads() >= 1);
    }
}
