//! Seeded workload generation: deterministic request traces for driving a
//! scoring service.
//!
//! A [`WorkloadConfig`] plus a URL pool fully determines the trace — which
//! URLs arrive, in what order, how often one repeats, and when each
//! arrives on the virtual clock. The same config always yields the same
//! trace, so cached-vs-uncached and any-thread-count comparisons replay
//! identical inputs.

use crate::protocol::ServeRequest;
use kyp_web::FaultPlan;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How request arrivals are spaced on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// One request every `gap_ms` virtual milliseconds.
    Steady {
        /// Gap between consecutive arrivals.
        gap_ms: u64,
    },
    /// Tight bursts separated by idle gaps — the shape that exercises
    /// admission control and batching.
    Bursty {
        /// Requests per burst (clamped ≥ 1).
        burst: usize,
        /// Gap between arrivals inside a burst.
        burst_gap_ms: u64,
        /// Gap between the end of one burst and the start of the next.
        idle_gap_ms: u64,
    },
}

impl Default for ArrivalPattern {
    fn default() -> Self {
        ArrivalPattern::Steady { gap_ms: 10 }
    }
}

/// Full specification of a deterministic request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Seed for URL selection and duplicate decisions.
    pub seed: u64,
    /// Requests to generate.
    pub requests: usize,
    /// Probability in `[0, 1]` that a request repeats an already-seen URL.
    pub duplicate_rate: f64,
    /// Arrival spacing.
    pub arrival: ArrivalPattern,
    /// Seed of the fault plan overlaying the trace (see
    /// [`WorkloadConfig::fault_plan`]).
    pub fault_seed: u64,
    /// Fault probability in `[0, 1]`; 0 disables the fault plan.
    pub fault_rate: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 2015,
            requests: 1_000,
            duplicate_rate: 0.2,
            arrival: ArrivalPattern::default(),
            fault_seed: 2015,
            fault_rate: 0.0,
        }
    }
}

impl WorkloadConfig {
    /// The fault plan this workload asks the world to run under, or
    /// `None` for a fault-free run.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if self.fault_rate > 0.0 {
            Some(FaultPlan::new(self.fault_seed, self.fault_rate))
        } else {
            None
        }
    }
}

/// Generates the request trace for `config` over a URL `pool`.
///
/// URLs are drawn from a seeded shuffle of the pool; with probability
/// `duplicate_rate` a request instead repeats a uniformly-chosen
/// already-issued URL. Once the pool is exhausted every further request is
/// a repeat. Ids are `0..requests` and arrivals are non-decreasing.
///
/// # Panics
///
/// Panics if `pool` is empty and `config.requests > 0`.
pub fn generate(config: &WorkloadConfig, pool: &[String]) -> Vec<ServeRequest> {
    assert!(
        pool.is_empty() == (config.requests == 0) || !pool.is_empty(),
        "cannot generate a non-empty trace from an empty url pool"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut order: Vec<&String> = pool.iter().collect();
    order.shuffle(&mut rng);
    let mut next_fresh = 0usize;
    let mut seen: Vec<&String> = Vec::new();
    let mut trace = Vec::with_capacity(config.requests);
    let mut arrival_ms = 0u64;
    for id in 0..config.requests as u64 {
        let repeat = !seen.is_empty()
            && (next_fresh >= order.len() || rng.gen_bool(config.duplicate_rate.clamp(0.0, 1.0)));
        let url = if repeat {
            // kyp-lint: allow(P01) — `repeat` is only true when seen is non-empty
            *seen.choose(&mut rng).expect("seen is non-empty")
        } else {
            let fresh = order[next_fresh];
            next_fresh += 1;
            seen.push(fresh);
            fresh
        };
        trace.push(ServeRequest {
            id,
            url: url.clone(),
            arrival_ms,
        });
        arrival_ms = arrival_ms.saturating_add(gap_after(&config.arrival, id));
    }
    trace
}

/// Virtual gap between arrival `index` and the next one.
fn gap_after(pattern: &ArrivalPattern, index: u64) -> u64 {
    match *pattern {
        ArrivalPattern::Steady { gap_ms } => gap_ms,
        ArrivalPattern::Bursty {
            burst,
            burst_gap_ms,
            idle_gap_ms,
        } => {
            let burst = burst.max(1) as u64;
            if (index + 1).is_multiple_of(burst) {
                idle_gap_ms
            } else {
                burst_gap_ms
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("http://site{i}.example.com/"))
            .collect()
    }

    #[test]
    fn same_config_same_trace() {
        let config = WorkloadConfig {
            requests: 200,
            duplicate_rate: 0.3,
            ..WorkloadConfig::default()
        };
        let p = pool(100);
        assert_eq!(generate(&config, &p), generate(&config, &p));
    }

    #[test]
    fn different_seed_different_trace() {
        let p = pool(100);
        let a = generate(
            &WorkloadConfig {
                requests: 50,
                ..WorkloadConfig::default()
            },
            &p,
        );
        let b = generate(
            &WorkloadConfig {
                requests: 50,
                seed: 99,
                ..WorkloadConfig::default()
            },
            &p,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn duplicate_rate_produces_repeats() {
        let config = WorkloadConfig {
            requests: 500,
            duplicate_rate: 0.5,
            ..WorkloadConfig::default()
        };
        let trace = generate(&config, &pool(1_000));
        let unique: std::collections::HashSet<&str> =
            trace.iter().map(|r| r.url.as_str()).collect();
        assert!(unique.len() < trace.len(), "expected some repeats");
        // Roughly half the requests should be fresh draws.
        assert!(unique.len() > trace.len() / 4);
    }

    #[test]
    fn zero_duplicate_rate_never_repeats_while_pool_lasts() {
        let config = WorkloadConfig {
            requests: 80,
            duplicate_rate: 0.0,
            ..WorkloadConfig::default()
        };
        let trace = generate(&config, &pool(100));
        let unique: std::collections::HashSet<&str> =
            trace.iter().map(|r| r.url.as_str()).collect();
        assert_eq!(unique.len(), trace.len());
    }

    #[test]
    fn exhausted_pool_falls_back_to_repeats() {
        let config = WorkloadConfig {
            requests: 30,
            duplicate_rate: 0.0,
            ..WorkloadConfig::default()
        };
        let trace = generate(&config, &pool(5));
        assert_eq!(trace.len(), 30);
        let unique: std::collections::HashSet<&str> =
            trace.iter().map(|r| r.url.as_str()).collect();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn steady_arrivals_are_evenly_spaced() {
        let config = WorkloadConfig {
            requests: 5,
            duplicate_rate: 0.0,
            arrival: ArrivalPattern::Steady { gap_ms: 25 },
            ..WorkloadConfig::default()
        };
        let trace = generate(&config, &pool(10));
        let arrivals: Vec<u64> = trace.iter().map(|r| r.arrival_ms).collect();
        assert_eq!(arrivals, vec![0, 25, 50, 75, 100]);
    }

    #[test]
    fn bursty_arrivals_cluster() {
        let config = WorkloadConfig {
            requests: 6,
            duplicate_rate: 0.0,
            arrival: ArrivalPattern::Bursty {
                burst: 3,
                burst_gap_ms: 1,
                idle_gap_ms: 100,
            },
            ..WorkloadConfig::default()
        };
        let trace = generate(&config, &pool(10));
        let arrivals: Vec<u64> = trace.iter().map(|r| r.arrival_ms).collect();
        assert_eq!(arrivals, vec![0, 1, 2, 102, 103, 104]);
    }

    #[test]
    fn ids_are_sequential() {
        let trace = generate(
            &WorkloadConfig {
                requests: 10,
                ..WorkloadConfig::default()
            },
            &pool(10),
        );
        for (i, req) in trace.iter().enumerate() {
            assert_eq!(req.id, i as u64);
        }
    }

    #[test]
    fn fault_plan_gated_on_rate() {
        let mut config = WorkloadConfig::default();
        assert!(config.fault_plan().is_none());
        config.fault_rate = 0.25;
        assert!(config.fault_plan().is_some());
    }
}
