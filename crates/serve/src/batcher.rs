//! Micro-batching policy: when does the queue flush into the scorer?
//!
//! Single-page scoring wastes the parallel classification path; unbounded
//! coalescing wastes latency. The micro-batcher takes the standard middle
//! road: flush as soon as `max_batch` requests have coalesced, or when the
//! oldest queued request has waited `max_delay_ms` on the virtual clock —
//! whichever comes first — and never before the scorer is free.

use crate::protocol::ServeRequest;
use crate::queue::AdmissionQueue;
use serde::{Deserialize, Serialize};

/// Flush policy of a [`MicroBatcher`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum requests per batch (clamped ≥ 1).
    pub max_batch: usize,
    /// Longest the oldest queued request may wait before a flush is
    /// forced, in virtual milliseconds.
    pub max_delay_ms: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_delay_ms: 25,
        }
    }
}

/// Batch accounting over one batcher's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchCounters {
    /// Batches flushed.
    pub batches: u64,
    /// Requests flushed across all batches.
    pub requests: u64,
    /// Largest batch flushed.
    pub max_size: u64,
    /// Batches flushed because they reached `max_batch`.
    pub full_flushes: u64,
    /// Batches flushed because the oldest request hit `max_delay_ms`.
    pub deadline_flushes: u64,
}

impl BatchCounters {
    /// Mean requests per batch (0.0 before the first flush).
    pub fn mean_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// Decides flush instants and cuts batches off an [`AdmissionQueue`].
#[derive(Debug, Clone)]
pub struct MicroBatcher {
    policy: BatchPolicy,
    counters: BatchCounters,
}

impl MicroBatcher {
    /// A batcher with the given policy.
    pub fn new(policy: BatchPolicy) -> Self {
        MicroBatcher {
            policy: BatchPolicy {
                max_batch: policy.max_batch.max(1),
                ..policy
            },
            counters: BatchCounters::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Batch accounting so far.
    pub fn counters(&self) -> BatchCounters {
        self.counters
    }

    /// The earliest virtual instant the queue's current contents must
    /// flush, given the scorer is busy until `free_at_ms` — `None` while
    /// the queue is empty.
    ///
    /// A full batch flushes as soon as its newest member has arrived (a
    /// batch cannot flush before it is complete); a partial batch waits
    /// for the oldest request's deadline. Neither flushes before the
    /// scorer frees.
    pub fn due_at(&self, queue: &AdmissionQueue<ServeRequest>, free_at_ms: u64) -> Option<u64> {
        let oldest = queue.front()?;
        let due = if queue.len() >= self.policy.max_batch {
            // Always present (length checked above); `?` keeps the
            // no-panic contract (kyp-lint P01) without an expect.
            let newest_in_batch = queue.peek(self.policy.max_batch - 1)?;
            free_at_ms.max(newest_in_batch.arrival_ms)
        } else {
            free_at_ms.max(oldest.arrival_ms.saturating_add(self.policy.max_delay_ms))
        };
        Some(due)
    }

    /// Cuts the next batch off the queue front and records why it
    /// flushed. Call only when [`MicroBatcher::due_at`] says a flush is
    /// due; an empty queue yields an empty batch.
    pub fn take(&mut self, queue: &mut AdmissionQueue<ServeRequest>) -> Vec<ServeRequest> {
        let was_full = queue.len() >= self.policy.max_batch;
        let batch = queue.take_batch(self.policy.max_batch);
        if batch.is_empty() {
            return batch;
        }
        self.counters.batches += 1;
        self.counters.requests += batch.len() as u64;
        self.counters.max_size = self.counters.max_size.max(batch.len() as u64);
        if was_full {
            self.counters.full_flushes += 1;
        } else {
            self.counters.deadline_flushes += 1;
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_ms: u64) -> ServeRequest {
        ServeRequest {
            id,
            url: format!("http://h{id}.example.com/"),
            arrival_ms,
        }
    }

    #[test]
    fn empty_queue_has_no_flush() {
        let b = MicroBatcher::new(BatchPolicy::default());
        let q: AdmissionQueue<ServeRequest> = AdmissionQueue::new(8);
        assert_eq!(b.due_at(&q, 0), None);
    }

    #[test]
    fn partial_batch_waits_for_the_deadline() {
        let b = MicroBatcher::new(BatchPolicy {
            max_batch: 4,
            max_delay_ms: 25,
        });
        let mut q = AdmissionQueue::new(8);
        q.offer(req(1, 100)).unwrap();
        q.offer(req(2, 110)).unwrap();
        // Oldest arrived at 100 → due at 125, scorer free.
        assert_eq!(b.due_at(&q, 0), Some(125));
        // A busy scorer postpones past the deadline.
        assert_eq!(b.due_at(&q, 300), Some(300));
    }

    #[test]
    fn full_batch_flushes_as_soon_as_the_scorer_frees() {
        let b = MicroBatcher::new(BatchPolicy {
            max_batch: 2,
            max_delay_ms: 1_000,
        });
        let mut q = AdmissionQueue::new(8);
        q.offer(req(1, 100)).unwrap();
        q.offer(req(2, 101)).unwrap();
        assert_eq!(b.due_at(&q, 0), Some(101), "full once the newest arrives");
        assert_eq!(b.due_at(&q, 400), Some(400), "full but scorer busy");
    }

    #[test]
    fn take_records_flush_causes_and_sizes() {
        let mut b = MicroBatcher::new(BatchPolicy {
            max_batch: 2,
            max_delay_ms: 10,
        });
        let mut q = AdmissionQueue::new(8);
        for i in 0..3 {
            q.offer(req(i, i)).unwrap();
        }
        let first = b.take(&mut q);
        assert_eq!(first.len(), 2, "cut at max_batch");
        let second = b.take(&mut q);
        assert_eq!(second.len(), 1);
        let c = b.counters();
        assert_eq!((c.batches, c.requests, c.max_size), (2, 3, 2));
        assert_eq!((c.full_flushes, c.deadline_flushes), (1, 1));
        assert!((c.mean_size() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn max_batch_clamped_to_one() {
        let mut b = MicroBatcher::new(BatchPolicy {
            max_batch: 0,
            max_delay_ms: 5,
        });
        let mut q = AdmissionQueue::new(4);
        q.offer(req(1, 0)).unwrap();
        q.offer(req(2, 0)).unwrap();
        assert_eq!(b.take(&mut q).len(), 1);
    }
}
