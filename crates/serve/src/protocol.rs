//! The service's newline-delimited json line protocol.
//!
//! One [`ServeRequest`] in, one [`ServeResponse`] out, both a single json
//! object per line. `kyp serve` speaks exactly this over stdin/stdout; the
//! library API exchanges the same types directly.

use kyp_obs::VerdictStage;
use serde::{Deserialize, Serialize};

/// One scoring request.
///
/// `arrival_ms` places the request on the service's virtual timeline;
/// arrivals must be non-decreasing (the service clamps regressions to the
/// previous arrival). `id` is echoed back so callers can correlate
/// out-of-band.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The URL to score.
    pub url: String,
    /// Arrival time on the service's virtual clock, in milliseconds.
    pub arrival_ms: u64,
}

/// What the service concluded about one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeOutcome {
    /// The pipeline produced a verdict.
    Verdict {
        /// Verdict kind: `legitimate`, `confirmed_legitimate`, `phish`
        /// or `suspicious`.
        kind: String,
        /// Detector confidence.
        score: f64,
        /// Ranked target mlds (phish verdicts only).
        targets: Vec<String>,
    },
    /// The page could not be fetched at all.
    Unfetchable {
        /// Terminal failure cause, e.g. `not_found`, `circuit_open`.
        cause: String,
    },
    /// Admission control rejected the request.
    Shed {
        /// Why it was rejected, e.g. `queue_full`.
        reason: String,
    },
}

impl ServeOutcome {
    /// Maps a pipeline verdict onto the wire outcome.
    pub fn from_verdict(verdict: &kyp_core::PipelineVerdict) -> Self {
        use kyp_core::PipelineVerdict;
        match verdict {
            PipelineVerdict::Legitimate { score } => ServeOutcome::Verdict {
                kind: "legitimate".to_owned(),
                score: *score,
                targets: Vec::new(),
            },
            PipelineVerdict::ConfirmedLegitimate { score, .. } => ServeOutcome::Verdict {
                kind: "confirmed_legitimate".to_owned(),
                score: *score,
                targets: Vec::new(),
            },
            PipelineVerdict::Phish { score, candidates } => ServeOutcome::Verdict {
                kind: "phish".to_owned(),
                score: *score,
                targets: candidates.iter().map(|c| c.mld.clone()).collect(),
            },
            PipelineVerdict::Suspicious { score } => ServeOutcome::Verdict {
                kind: "suspicious".to_owned(),
                score: *score,
                targets: Vec::new(),
            },
        }
    }
}

/// Where the response's verdict came from, cache-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheState {
    /// Served from a fresh verdict-cache entry.
    Hit,
    /// Classified and inserted into the cache.
    Miss,
    /// The cache is disabled for this service.
    Disabled,
    /// The request never reached classification (shed / unfetchable).
    Skipped,
}

/// One scored (or rejected) request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The request's correlation id.
    pub id: u64,
    /// The request's URL, echoed back.
    pub url: String,
    /// What the service concluded.
    pub outcome: ServeOutcome,
    /// Verdict-cache involvement.
    pub cache: CacheState,
    /// Whether the page was only partially captured.
    pub degraded: bool,
    /// Virtual milliseconds from arrival to completion (0 for shed).
    pub latency_ms: u64,
    /// Completion time on the service's virtual clock.
    pub completed_ms: u64,
    /// Which cascade stage decided the verdict. A verdict-cache hit keeps
    /// the stage that originally *decided* it ([`VerdictStage::Full`] —
    /// the serve cache only stores full-pipeline verdicts), so cache-on
    /// and cache-off runs stay byte-identical.
    pub stage: VerdictStage,
}

// Hand-written (de)serialization: the stage field is serialized only when
// it differs from [`VerdictStage::Full`], so every pre-cascade output —
// and every cascade-off run — keeps its exact bytes.
impl Serialize for ServeResponse {
    fn to_json_value(&self) -> serde::Value {
        let mut fields = vec![
            ("id".to_owned(), self.id.to_json_value()),
            ("url".to_owned(), self.url.to_json_value()),
            ("outcome".to_owned(), self.outcome.to_json_value()),
            ("cache".to_owned(), self.cache.to_json_value()),
            ("degraded".to_owned(), self.degraded.to_json_value()),
            ("latency_ms".to_owned(), self.latency_ms.to_json_value()),
            ("completed_ms".to_owned(), self.completed_ms.to_json_value()),
        ];
        if self.stage != VerdictStage::Full {
            fields.push((
                "stage".to_owned(),
                serde::Value::String(self.stage.name().to_owned()),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for ServeResponse {
    fn from_json_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for struct ServeResponse"))?;
        let field = |name: &str| serde::obj_get(fields, name);
        let stage = match field("stage") {
            serde::Value::Null => VerdictStage::Full,
            v => {
                let name = String::from_json_value(v)
                    .map_err(|e| serde::Error::custom(format!("ServeResponse.stage: {e}")))?;
                VerdictStage::parse(&name).ok_or_else(|| {
                    serde::Error::custom(format!("ServeResponse.stage: unknown stage {name:?}"))
                })?
            }
        };
        Ok(ServeResponse {
            id: Deserialize::from_json_value(field("id"))
                .map_err(|e| serde::Error::custom(format!("ServeResponse.id: {e}")))?,
            url: Deserialize::from_json_value(field("url"))
                .map_err(|e| serde::Error::custom(format!("ServeResponse.url: {e}")))?,
            outcome: Deserialize::from_json_value(field("outcome"))
                .map_err(|e| serde::Error::custom(format!("ServeResponse.outcome: {e}")))?,
            cache: Deserialize::from_json_value(field("cache"))
                .map_err(|e| serde::Error::custom(format!("ServeResponse.cache: {e}")))?,
            degraded: Deserialize::from_json_value(field("degraded"))
                .map_err(|e| serde::Error::custom(format!("ServeResponse.degraded: {e}")))?,
            latency_ms: Deserialize::from_json_value(field("latency_ms"))
                .map_err(|e| serde::Error::custom(format!("ServeResponse.latency_ms: {e}")))?,
            completed_ms: Deserialize::from_json_value(field("completed_ms"))
                .map_err(|e| serde::Error::custom(format!("ServeResponse.completed_ms: {e}")))?,
            stage,
        })
    }
}

impl ServeResponse {
    /// The timing- and cache-independent projection of this response:
    /// request identity plus verdict only.
    ///
    /// Two runs of the same trace must produce byte-identical sequences
    /// of these lines whatever the thread count and whether the verdict
    /// cache is enabled — the determinism contract `kyp-serve` inherits
    /// from the execution layer. (Latency and cache state legitimately
    /// differ between cache-on and cache-off runs, so they are excluded.)
    pub fn verdict_line(&self) -> String {
        // kyp-lint: allow(P01) — serializing a field-only enum is infallible; a Result here would infect the whole protocol surface
        let outcome = serde_json::to_string(&self.outcome).expect("serialize outcome");
        let mut line = format!(
            "{} {} {} degraded={}",
            self.id, self.url, outcome, self.degraded
        );
        if self.stage != VerdictStage::Full {
            line.push_str(" stage=");
            line.push_str(self.stage.name());
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let req = ServeRequest {
            id: 7,
            url: "http://example.com/a".into(),
            arrival_ms: 120,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: ServeRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrips_through_json() {
        let resp = ServeResponse {
            id: 9,
            url: "http://example.com/b".into(),
            outcome: ServeOutcome::Verdict {
                kind: "phish".into(),
                score: 0.93,
                targets: vec!["paypal".into()],
            },
            cache: CacheState::Miss,
            degraded: false,
            latency_ms: 14,
            completed_ms: 210,
            stage: VerdictStage::Full,
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(
            !json.contains("stage"),
            "full-stage responses keep their pre-cascade bytes: {json}"
        );
        let back: ServeResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
        // A URL-only verdict carries its stage on the wire and back.
        let tagged = ServeResponse {
            stage: VerdictStage::UrlOnly,
            ..resp
        };
        let json = serde_json::to_string(&tagged).unwrap();
        assert!(json.contains("\"stage\":\"url_only\""), "{json}");
        let back: ServeResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tagged);
    }

    #[test]
    fn verdict_line_excludes_timing_and_cache_state() {
        let mut resp = ServeResponse {
            id: 1,
            url: "http://x.com/".into(),
            outcome: ServeOutcome::Shed {
                reason: "queue_full".into(),
            },
            cache: CacheState::Skipped,
            degraded: false,
            latency_ms: 5,
            completed_ms: 100,
            stage: VerdictStage::Full,
        };
        let line = resp.verdict_line();
        resp.latency_ms = 99;
        resp.completed_ms = 999;
        resp.cache = CacheState::Hit;
        assert_eq!(line, resp.verdict_line());
        assert!(!line.contains("stage="), "full stage stays invisible");
    }

    #[test]
    fn verdict_line_tags_non_full_stages() {
        let resp = ServeResponse {
            id: 2,
            url: "http://y.com/".into(),
            outcome: ServeOutcome::Verdict {
                kind: "suspicious".into(),
                score: 0.97,
                targets: Vec::new(),
            },
            cache: CacheState::Skipped,
            degraded: false,
            latency_ms: 0,
            completed_ms: 40,
            stage: VerdictStage::UrlOnly,
        };
        assert!(resp.verdict_line().ends_with(" stage=url_only"));
    }
}
