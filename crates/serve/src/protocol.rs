//! The service's newline-delimited json line protocol.
//!
//! One [`ServeRequest`] in, one [`ServeResponse`] out, both a single json
//! object per line. `kyp serve` speaks exactly this over stdin/stdout; the
//! library API exchanges the same types directly.

use serde::{Deserialize, Serialize};

/// One scoring request.
///
/// `arrival_ms` places the request on the service's virtual timeline;
/// arrivals must be non-decreasing (the service clamps regressions to the
/// previous arrival). `id` is echoed back so callers can correlate
/// out-of-band.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The URL to score.
    pub url: String,
    /// Arrival time on the service's virtual clock, in milliseconds.
    pub arrival_ms: u64,
}

/// What the service concluded about one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeOutcome {
    /// The pipeline produced a verdict.
    Verdict {
        /// Verdict kind: `legitimate`, `confirmed_legitimate`, `phish`
        /// or `suspicious`.
        kind: String,
        /// Detector confidence.
        score: f64,
        /// Ranked target mlds (phish verdicts only).
        targets: Vec<String>,
    },
    /// The page could not be fetched at all.
    Unfetchable {
        /// Terminal failure cause, e.g. `not_found`, `circuit_open`.
        cause: String,
    },
    /// Admission control rejected the request.
    Shed {
        /// Why it was rejected, e.g. `queue_full`.
        reason: String,
    },
}

/// Where the response's verdict came from, cache-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheState {
    /// Served from a fresh verdict-cache entry.
    Hit,
    /// Classified and inserted into the cache.
    Miss,
    /// The cache is disabled for this service.
    Disabled,
    /// The request never reached classification (shed / unfetchable).
    Skipped,
}

/// One scored (or rejected) request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeResponse {
    /// The request's correlation id.
    pub id: u64,
    /// The request's URL, echoed back.
    pub url: String,
    /// What the service concluded.
    pub outcome: ServeOutcome,
    /// Verdict-cache involvement.
    pub cache: CacheState,
    /// Whether the page was only partially captured.
    pub degraded: bool,
    /// Virtual milliseconds from arrival to completion (0 for shed).
    pub latency_ms: u64,
    /// Completion time on the service's virtual clock.
    pub completed_ms: u64,
}

impl ServeResponse {
    /// The timing- and cache-independent projection of this response:
    /// request identity plus verdict only.
    ///
    /// Two runs of the same trace must produce byte-identical sequences
    /// of these lines whatever the thread count and whether the verdict
    /// cache is enabled — the determinism contract `kyp-serve` inherits
    /// from the execution layer. (Latency and cache state legitimately
    /// differ between cache-on and cache-off runs, so they are excluded.)
    pub fn verdict_line(&self) -> String {
        // kyp-lint: allow(P01) — serializing a field-only enum is infallible; a Result here would infect the whole protocol surface
        let outcome = serde_json::to_string(&self.outcome).expect("serialize outcome");
        format!(
            "{} {} {} degraded={}",
            self.id, self.url, outcome, self.degraded
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let req = ServeRequest {
            id: 7,
            url: "http://example.com/a".into(),
            arrival_ms: 120,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: ServeRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrips_through_json() {
        let resp = ServeResponse {
            id: 9,
            url: "http://example.com/b".into(),
            outcome: ServeOutcome::Verdict {
                kind: "phish".into(),
                score: 0.93,
                targets: vec!["paypal".into()],
            },
            cache: CacheState::Miss,
            degraded: false,
            latency_ms: 14,
            completed_ms: 210,
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: ServeResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn verdict_line_excludes_timing_and_cache_state() {
        let mut resp = ServeResponse {
            id: 1,
            url: "http://x.com/".into(),
            outcome: ServeOutcome::Shed {
                reason: "queue_full".into(),
            },
            cache: CacheState::Skipped,
            degraded: false,
            latency_ms: 5,
            completed_ms: 100,
        };
        let line = resp.verdict_line();
        resp.latency_ms = 99;
        resp.completed_ms = 999;
        resp.cache = CacheState::Hit;
        assert_eq!(line, resp.verdict_line());
    }
}
