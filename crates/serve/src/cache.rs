//! The verdict cache: an LRU map with per-entry TTL on the service's
//! virtual clock.
//!
//! Keys are canonical landing URLs, so two request URLs redirecting to the
//! same page share one entry. Every structural event — hit, miss,
//! insertion, LRU eviction, TTL expiry — is counted, and because recency
//! and expiry are tracked purely in virtual time the cache behaves
//! identically on every run of the same trace.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Sizing and freshness policy of a [`VerdictCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum live entries; the least recently used entry is evicted to
    /// admit a new key once full. Clamped to at least 1.
    pub capacity: usize,
    /// Virtual milliseconds an entry stays fresh after insertion; stale
    /// entries count as misses and are dropped on access.
    pub ttl_ms: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 4096,
            ttl_ms: 300_000,
        }
    }
}

/// Structural event counts of one cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Lookups served from a fresh entry.
    pub hits: u64,
    /// Lookups that found nothing usable (absent or stale).
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Fresh entries dropped to make room (LRU policy).
    pub evictions: u64,
    /// Stale entries dropped on access (TTL policy).
    pub expirations: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry<V> {
    value: V,
    /// First virtual instant at which the entry is stale.
    expires_at_ms: u64,
    /// Recency stamp; the key of this entry's slot in the LRU index.
    used_seq: u64,
}

/// An LRU + TTL cache over virtual time.
///
/// Recency is a monotonically increasing sequence number bumped on every
/// hit and insertion; the LRU index maps sequence numbers back to keys, so
/// eviction picks the smallest live sequence in `O(log n)`. No wall clock
/// is ever consulted: the caller passes `now_ms` from its own virtual
/// timeline.
///
/// # Examples
///
/// ```
/// use kyp_serve::{CacheConfig, VerdictCache};
///
/// let mut cache = VerdictCache::new(CacheConfig { capacity: 2, ttl_ms: 100 });
/// cache.insert("a".into(), 1, 0);
/// assert_eq!(cache.get("a", 50), Some(1));   // fresh → hit
/// assert_eq!(cache.get("a", 100), None);     // expired → miss
/// ```
#[derive(Debug, Clone)]
pub struct VerdictCache<V> {
    config: CacheConfig,
    entries: HashMap<String, CacheEntry<V>>,
    /// Recency index: `used_seq` → key. Smallest sequence = LRU victim.
    recency: BTreeMap<u64, String>,
    next_seq: u64,
    counters: CacheCounters,
}

impl<V: Clone> VerdictCache<V> {
    /// An empty cache with the given policy.
    pub fn new(config: CacheConfig) -> Self {
        VerdictCache {
            config: CacheConfig {
                capacity: config.capacity.max(1),
                ..config
            },
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            next_seq: 0,
            counters: CacheCounters::default(),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Event counts so far.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Live entries (fresh and stale-but-untouched alike).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key` at virtual time `now_ms`.
    ///
    /// A fresh entry is a hit: its recency is bumped and a clone of the
    /// value returned. A stale entry is dropped (counted as expiration
    /// *and* miss) and `None` returned.
    pub fn get(&mut self, key: &str, now_ms: u64) -> Option<V> {
        match self.entries.get(key) {
            None => {
                self.counters.misses += 1;
                None
            }
            Some(entry) if now_ms >= entry.expires_at_ms => {
                // kyp-lint: allow(P01) — the match arm just observed the key; remove cannot miss
                let entry = self.entries.remove(key).expect("entry just observed");
                self.recency.remove(&entry.used_seq);
                self.counters.expirations += 1;
                self.counters.misses += 1;
                None
            }
            Some(_) => {
                let seq = self.bump_seq();
                // kyp-lint: allow(P01) — re-borrow after bump_seq; the key was just matched Some
                let entry = self.entries.get_mut(key).expect("entry just observed");
                self.recency.remove(&entry.used_seq);
                self.recency.insert(seq, key.to_owned());
                entry.used_seq = seq;
                self.counters.hits += 1;
                Some(entry.value.clone())
            }
        }
    }

    /// Inserts (or replaces) `key` at virtual time `now_ms`, evicting the
    /// least recently used entry when the cache is full.
    pub fn insert(&mut self, key: String, value: V, now_ms: u64) {
        if !self.entries.contains_key(&key) && self.entries.len() >= self.config.capacity {
            // kyp-lint: allow(P01) — capacity ≥ 1 and the cache is full, so the LRU index is non-empty
            let victim_seq = *self.recency.keys().next().expect("full cache has entries");
            // kyp-lint: allow(P01) — victim_seq was read from this index one line up
            let victim_key = self.recency.remove(&victim_seq).expect("indexed key");
            self.entries.remove(&victim_key);
            self.counters.evictions += 1;
        }
        let seq = self.bump_seq();
        if let Some(old) = self.entries.insert(
            key.clone(),
            CacheEntry {
                value,
                expires_at_ms: now_ms.saturating_add(self.config.ttl_ms),
                used_seq: seq,
            },
        ) {
            self.recency.remove(&old.used_seq);
        }
        self.recency.insert(seq, key);
        self.counters.insertions += 1;
    }

    /// Drops every entry, keeping the lifetime counters.
    ///
    /// This is the cold-cache restart seam: a crashed node loses its
    /// cache shard but not its accounting, so post-recovery reports still
    /// describe the whole run. The recency sequence keeps advancing across
    /// the clear — entry lifetimes never alias between incarnations.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
    }

    fn bump_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize, ttl_ms: u64) -> VerdictCache<u32> {
        VerdictCache::new(CacheConfig { capacity, ttl_ms })
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = cache(4, 1_000);
        assert_eq!(c.get("a", 0), None);
        c.insert("a".into(), 7, 0);
        assert_eq!(c.get("a", 10), Some(7));
        assert_eq!(c.get("b", 10), None);
        let k = c.counters();
        assert_eq!((k.hits, k.misses, k.insertions), (1, 2, 1));
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c = cache(4, 100);
        c.insert("a".into(), 1, 50);
        assert_eq!(c.get("a", 149), Some(1), "one tick before expiry");
        assert_eq!(c.get("a", 150), None, "expires exactly at insert+ttl");
        assert_eq!(c.counters().expirations, 1);
        assert_eq!(c.len(), 0, "stale entry is dropped");
        // Re-insert restarts the clock.
        c.insert("a".into(), 2, 200);
        assert_eq!(c.get("a", 299), Some(2));
    }

    #[test]
    fn entry_expiring_exactly_at_now_is_a_miss() {
        // The TTL boundary is half-open: an entry is fresh on
        // [insert, insert + ttl) and stale the instant now == expires_at.
        let mut c = cache(4, 100);
        c.insert("a".into(), 1, 0);
        assert_eq!(c.get("a", 100), None, "now_ms == expires_at_ms is stale");
        let k = c.counters();
        assert_eq!((k.expirations, k.misses, k.hits), (1, 1, 0));
        // Degenerate ttl of 0: stale at the very instant of insertion.
        let mut z = cache(4, 0);
        z.insert("b".into(), 2, 7);
        assert_eq!(z.get("b", 7), None, "zero ttl expires immediately");
        assert_eq!(z.counters().expirations, 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let mut c = cache(4, 1_000);
        c.insert("a".into(), 1, 0);
        c.insert("b".into(), 2, 0);
        assert_eq!(c.get("a", 1), Some(1));
        let before = c.counters();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.counters(), before, "lifetime accounting survives");
        // The cold cache misses, then refills normally.
        assert_eq!(c.get("a", 2), None);
        c.insert("a".into(), 9, 2);
        assert_eq!(c.get("a", 3), Some(9));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(2, 10_000);
        c.insert("a".into(), 1, 0);
        c.insert("b".into(), 2, 1);
        assert_eq!(c.get("a", 2), Some(1)); // "a" is now most recent
        c.insert("c".into(), 3, 3); // evicts "b", the LRU
        assert_eq!(c.get("b", 4), None);
        assert_eq!(c.get("a", 4), Some(1));
        assert_eq!(c.get("c", 4), Some(3));
        assert_eq!(c.counters().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let mut c = cache(2, 10_000);
        c.insert("a".into(), 1, 0);
        c.insert("b".into(), 2, 0);
        c.insert("a".into(), 9, 5);
        assert_eq!(c.counters().evictions, 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a", 6), Some(9));
    }

    #[test]
    fn capacity_clamped_to_one() {
        let mut c = cache(0, 1_000);
        c.insert("a".into(), 1, 0);
        c.insert("b".into(), 2, 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.counters().evictions, 1);
        assert_eq!(c.get("b", 1), Some(2));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut c = cache(3, 500);
            let mut log = Vec::new();
            for (i, key) in ["a", "b", "a", "c", "d", "b", "a"].iter().enumerate() {
                let t = i as u64 * 100;
                if c.get(key, t).is_none() {
                    c.insert((*key).to_owned(), i as u32, t);
                }
                log.push(format!("{key}@{t}:{:?}", c.counters()));
            }
            log
        };
        assert_eq!(run(), run());
    }
}
