//! The scoring service: admission, batching, caching and accounting wired
//! around a warm [`Pipeline`].
//!
//! # Event model
//!
//! The service is a deterministic discrete-event loop over a virtual
//! clock. Each pushed request is one arrival event; before it is admitted,
//! every batch flush that falls due at or before its arrival instant is
//! executed, in due order. A flush cuts up to `max_batch` requests off the
//! queue, scores them (cache, then pipeline for the misses) and completes
//! them all at `flush + batch_overhead_ms + service_cost_ms × batch_len`.
//! The scorer is busy until that completion, so flushes serialize.
//!
//! # Determinism contract
//!
//! Two properties combine so the verdict stream is byte-identical across
//! thread counts *and* across cache-on/cache-off runs of the same trace:
//!
//! - **Fetch once.** The service memoizes every fetch by canonical
//!   request URL, so each unique URL hits the page source exactly once
//!   per run whatever the duplicate rate. Stateful sources (fault plans,
//!   circuit breakers, retry clocks) therefore see the same fetch
//!   sequence whether or not the verdict cache later absorbs repeats.
//! - **Pure classification.** A verdict is a pure function of the
//!   captured page, so a cached verdict equals the verdict recomputation
//!   would produce.
//!
//! The virtual cost model is deliberately cache-independent: hits and
//! misses cost the same *virtual* time, so queueing, shedding and batch
//! boundaries are identical in both runs. The cache's benefit is real
//! (wall-clock) time — hits skip feature extraction and both model
//! stages — which is exactly what the serving benchmark measures.

use crate::batcher::{BatchPolicy, MicroBatcher};
use crate::cache::{CacheConfig, VerdictCache};
use crate::protocol::{CacheState, ServeOutcome, ServeRequest, ServeResponse};
use crate::queue::AdmissionQueue;
use crate::source::{canonical_key, canonical_url, PageSource};
use crate::stats::{CascadeCounters, LatencyHistogram, ServeReport};
use kyp_core::{CascadeClassifier, CascadeDecision, Pipeline, PipelineVerdict};
use kyp_obs::{CascadeOutcome, VerdictStage};
use kyp_web::{FailureCause, ScrapedPage};
use std::collections::HashMap;

/// Shed reason reported when the admission queue is full.
pub const SHED_QUEUE_FULL: &str = "queue_full";

/// Tuning of a [`ScoringService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Admission queue depth; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Micro-batching policy.
    pub batch: BatchPolicy,
    /// Verdict cache policy; `None` disables the cache.
    pub cache: Option<CacheConfig>,
    /// Virtual milliseconds of scoring work per request in a batch.
    pub service_cost_ms: u64,
    /// Virtual milliseconds of fixed overhead per batch flush.
    pub batch_overhead_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            batch: BatchPolicy::default(),
            cache: Some(CacheConfig::default()),
            service_cost_ms: 8,
            batch_overhead_ms: 2,
        }
    }
}

/// A memoized fetch: the page plus the canonical landing URL it settled
/// on (the verdict-cache key).
#[derive(Debug, Clone)]
struct StoredScrape {
    page: ScrapedPage,
    landing_key: String,
}

/// How one batched request resolves before response assembly.
enum Slot {
    Unfetchable(FailureCause),
    Cached(PipelineVerdict, bool),
    /// Index into the flush's to-classify vector.
    Pending(usize),
}

/// A long-lived online scoring service over a warm pipeline.
///
/// Generic over [`PageSource`] so the same loop serves a live simulated
/// web or a stored page capture. Drive it with [`ScoringService::push`]
/// per request (arrivals must be non-decreasing; regressions are clamped),
/// then [`ScoringService::finish`] to drain, or hand it a whole trace via
/// [`ScoringService::run_trace`].
#[derive(Debug)]
pub struct ScoringService<S> {
    pipeline: Pipeline,
    source: S,
    config: ServeConfig,
    cache: Option<VerdictCache<(PipelineVerdict, bool)>>,
    cascade: Option<CascadeClassifier>,
    cascade_counters: CascadeCounters,
    queue: AdmissionQueue<ServeRequest>,
    batcher: MicroBatcher,
    latency: LatencyHistogram,
    page_store: HashMap<String, Result<StoredScrape, FailureCause>>,
    busy_until_ms: u64,
    last_arrival_ms: u64,
    first_arrival_ms: Option<u64>,
    last_event_ms: u64,
    answered: u64,
    unfetchable: u64,
    degraded: u64,
}

impl<S: PageSource> ScoringService<S> {
    /// A fresh service scoring pages from `source` with `pipeline`.
    pub fn new(pipeline: Pipeline, source: S, config: ServeConfig) -> Self {
        let cache = config.cache.clone().map(VerdictCache::new);
        let queue = AdmissionQueue::new(config.queue_capacity);
        let batcher = MicroBatcher::new(config.batch.clone());
        ScoringService {
            pipeline,
            source,
            config,
            cache,
            cascade: None,
            cascade_counters: CascadeCounters::default(),
            queue,
            batcher,
            latency: LatencyHistogram::new(),
            page_store: HashMap::new(),
            busy_until_ms: 0,
            last_arrival_ms: 0,
            first_arrival_ms: None,
            last_event_ms: 0,
            answered: 0,
            unfetchable: 0,
            degraded: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Installs the URL-only cascade pre-filter in front of admission:
    /// requests whose URL score falls outside the cascade's uncertainty
    /// band are answered immediately at their arrival instant — no queue,
    /// no batch, no fetch, no cache — tagged [`VerdictStage::UrlOnly`].
    pub fn with_cascade(mut self, cascade: CascadeClassifier) -> Self {
        self.cascade = Some(cascade);
        self
    }

    /// The installed cascade pre-filter, if any.
    pub fn cascade(&self) -> Option<&CascadeClassifier> {
        self.cascade.as_ref()
    }

    /// Feeds one arrival into the service, returning every response that
    /// completes up to (and including) this arrival instant — batch
    /// flushes that fell due in the meantime, plus an immediate shed
    /// response if admission rejects the request.
    pub fn push(&mut self, request: ServeRequest) -> Vec<ServeResponse> {
        self.push_observed(request, &mut kyp_obs::NoopObserver)
    }

    /// Like [`ScoringService::push`], reporting shed, cache, batch and
    /// classification events to `obs`. The observer only watches; the
    /// responses are identical to the unobserved call.
    pub fn push_observed(
        &mut self,
        request: ServeRequest,
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> Vec<ServeResponse> {
        let arrival = request.arrival_ms.max(self.last_arrival_ms);
        self.last_arrival_ms = arrival;
        self.first_arrival_ms.get_or_insert(arrival);
        self.last_event_ms = self.last_event_ms.max(arrival);

        let mut out = Vec::new();
        while let Some(due) = self.batcher.due_at(&self.queue, self.busy_until_ms) {
            if due > arrival {
                break;
            }
            self.flush_at(due, &mut out, obs);
        }

        // Stage one: the URL-only pre-filter. A final verdict answers at
        // the arrival instant and never touches queue, batcher, fetch or
        // cache — the whole point of the cascade. Prescreening is a pure
        // function of the URL string, so this branch is deterministic at
        // any thread count.
        if let Some(cascade) = &self.cascade {
            let decision = cascade.prescreen(&request.url);
            self.cascade_counters.screened += 1;
            obs.clock(arrival);
            match decision {
                CascadeDecision::Final(verdict) => {
                    self.cascade_counters.url_only += 1;
                    self.answered += 1;
                    self.latency.record(0);
                    obs.cascade_prescreen(CascadeOutcome::UrlOnlyFinal);
                    obs.verdict_stage(VerdictStage::UrlOnly);
                    out.push(ServeResponse {
                        id: request.id,
                        url: request.url,
                        outcome: verdict_outcome(&verdict.verdict),
                        cache: CacheState::Skipped,
                        degraded: false,
                        latency_ms: 0,
                        completed_ms: arrival,
                        stage: VerdictStage::UrlOnly,
                    });
                    return out;
                }
                CascadeDecision::Uncertain { .. } => {
                    self.cascade_counters.fallthrough += 1;
                    obs.cascade_prescreen(CascadeOutcome::Fallthrough);
                }
                CascadeDecision::Unscorable => {
                    self.cascade_counters.unscorable += 1;
                    obs.cascade_prescreen(CascadeOutcome::Unscorable);
                }
            }
        }

        let request = ServeRequest {
            arrival_ms: arrival,
            ..request
        };
        if let Err(rejected) = self.queue.offer(request) {
            obs.clock(arrival);
            obs.shed();
            obs.verdict_stage(VerdictStage::Shed);
            out.push(ServeResponse {
                id: rejected.id,
                url: rejected.url,
                outcome: ServeOutcome::Shed {
                    reason: SHED_QUEUE_FULL.to_owned(),
                },
                cache: CacheState::Skipped,
                degraded: false,
                latency_ms: 0,
                completed_ms: arrival,
                stage: VerdictStage::Full,
            });
        }
        out
    }

    /// The next virtual instant a batch flush falls due, or `None` while
    /// the queue is empty.
    ///
    /// This is the scheduling seam an external event loop (the cluster
    /// router) uses to interleave this service's flushes with its own
    /// events instead of calling [`ScoringService::finish`] blind.
    pub fn next_due(&self) -> Option<u64> {
        self.batcher.due_at(&self.queue, self.busy_until_ms)
    }

    /// Advances the service's virtual clock to `now_ms` without feeding an
    /// arrival: executes every batch flush due at or before `now_ms`, in
    /// due order, and returns the responses.
    ///
    /// Note that a flush *starting* at or before `now_ms` may *complete*
    /// after it (completion = flush + overhead + per-request cost); the
    /// caller sees those completions in the returned responses' timestamps
    /// and decides how to sequence them against its own events.
    pub fn advance_to(&mut self, now_ms: u64) -> Vec<ServeResponse> {
        self.advance_to_observed(now_ms, &mut kyp_obs::NoopObserver)
    }

    /// Like [`ScoringService::advance_to`], reporting events to `obs`.
    pub fn advance_to_observed(
        &mut self,
        now_ms: u64,
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> Vec<ServeResponse> {
        let mut out = Vec::new();
        while let Some(due) = self.batcher.due_at(&self.queue, self.busy_until_ms) {
            if due > now_ms {
                break;
            }
            self.flush_at(due, &mut out, obs);
        }
        out
    }

    /// Removes and returns every queued (admitted, not yet flushed)
    /// request, in FIFO order. Queue counters do not move — draining is
    /// not shedding; the caller owns what happens to the requests next.
    ///
    /// This is the crash seam: when a simulated node dies, the router
    /// drains nothing (the queue contents are simply lost with the node)
    /// but an orderly shutdown hands the backlog back for re-dispatch.
    pub fn drain_queue(&mut self) -> Vec<ServeRequest> {
        let n = self.queue.len();
        self.queue.take_batch(n)
    }

    /// Restarts the service cold after a simulated crash: the queue, the
    /// verdict-cache entries and the fetch memo are dropped and the scorer
    /// is immediately free, but every lifetime counter — admission, cache,
    /// batch, latency, answered/unfetchable/degraded — survives, so the
    /// end-of-run [`ServeReport`] still accounts for the whole lifetime
    /// across incarnations. The virtual clock is not rewound: arrivals
    /// after the restart continue the same monotone timeline.
    pub fn restart(&mut self) {
        let n = self.queue.len();
        let _ = self.queue.take_batch(n);
        if let Some(cache) = self.cache.as_mut() {
            cache.clear();
        }
        self.page_store.clear();
        self.busy_until_ms = 0;
    }

    /// Current admission-queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Admission-queue capacity in force.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Drains the queue, flushing every remaining batch in due order, and
    /// returns the responses.
    pub fn finish(&mut self) -> Vec<ServeResponse> {
        self.finish_observed(&mut kyp_obs::NoopObserver)
    }

    /// Like [`ScoringService::finish`], reporting events to `obs`.
    pub fn finish_observed(
        &mut self,
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> Vec<ServeResponse> {
        let mut out = Vec::new();
        while let Some(due) = self.batcher.due_at(&self.queue, self.busy_until_ms) {
            self.flush_at(due, &mut out, obs);
        }
        out
    }

    /// Runs a whole trace through the service: pushes every request in
    /// order, drains, and returns all responses (in completion order,
    /// shed responses at their arrival instant).
    pub fn run_trace(&mut self, trace: &[ServeRequest]) -> Vec<ServeResponse> {
        self.run_trace_observed(trace, &mut kyp_obs::NoopObserver)
    }

    /// Like [`ScoringService::run_trace`], reporting events to `obs`.
    ///
    /// The service is single-threaded at the event-loop level (only
    /// classification fans out, and that stage records/replays), so the
    /// observed stream is byte-identical at any thread count.
    pub fn run_trace_observed(
        &mut self,
        trace: &[ServeRequest],
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> Vec<ServeResponse> {
        let mut out = Vec::new();
        for request in trace {
            out.extend(self.push_observed(request.clone(), obs));
        }
        out.extend(self.finish_observed(obs));
        out
    }

    /// The end-of-run accounting report.
    pub fn report(&self) -> ServeReport {
        let queue = self.queue.counters();
        let first = self.first_arrival_ms.unwrap_or(0);
        let elapsed = self.last_event_ms.saturating_sub(first);
        let throughput = if elapsed > 0 {
            self.answered as f64 / (elapsed as f64 / 1_000.0)
        } else {
            0.0
        };
        // Cascade-final requests never reach the admission queue, so the
        // request total adds them back in.
        let requests = queue.admitted + queue.shed + self.cascade_counters.url_only;
        let shed_ratio = if requests > 0 {
            queue.shed as f64 / requests as f64
        } else {
            0.0
        };
        ServeReport {
            requests,
            answered: self.answered,
            shed: queue.shed,
            shed_ratio,
            unfetchable: self.unfetchable,
            degraded: self.degraded,
            cache_enabled: self.cache.is_some(),
            cache: self
                .cache
                .as_ref()
                .map(super::cache::VerdictCache::counters)
                .unwrap_or_default(),
            cascade_enabled: self.cascade.is_some(),
            cascade: self.cascade_counters,
            queue,
            batches: self.batcher.counters(),
            latency: self.latency.summary(),
            virtual_elapsed_ms: elapsed,
            throughput_per_vsec: throughput,
        }
    }

    /// Exports the end-of-run accounting into `registry`: every
    /// [`ServeReport`] counter as a `serve.report.*` gauge plus the full
    /// latency histogram. All exported values are derived from virtual
    /// time and input-order counts, so the rendered json is
    /// byte-identical at any thread count.
    pub fn export_metrics(&self, registry: &mut kyp_obs::MetricsRegistry) {
        let report = self.report();
        let gauge = |r: &mut kyp_obs::MetricsRegistry, name: &str, v: u64| {
            r.set_gauge(name, v.cast_signed());
        };
        gauge(registry, "serve.report.requests", report.requests);
        gauge(registry, "serve.report.answered", report.answered);
        gauge(registry, "serve.report.shed", report.shed);
        gauge(registry, "serve.report.unfetchable", report.unfetchable);
        gauge(registry, "serve.report.degraded", report.degraded);
        registry.set_gauge(
            "serve.report.cache_enabled",
            i64::from(report.cache_enabled),
        );
        gauge(registry, "serve.report.cache.hits", report.cache.hits);
        gauge(registry, "serve.report.cache.misses", report.cache.misses);
        gauge(
            registry,
            "serve.report.cache.insertions",
            report.cache.insertions,
        );
        gauge(
            registry,
            "serve.report.cache.evictions",
            report.cache.evictions,
        );
        gauge(
            registry,
            "serve.report.cache.expirations",
            report.cache.expirations,
        );
        registry.set_gauge(
            "serve.report.cascade_enabled",
            i64::from(report.cascade_enabled),
        );
        gauge(
            registry,
            "serve.report.cascade.screened",
            report.cascade.screened,
        );
        gauge(
            registry,
            "serve.report.cascade.url_only",
            report.cascade.url_only,
        );
        gauge(
            registry,
            "serve.report.cascade.fallthrough",
            report.cascade.fallthrough,
        );
        gauge(
            registry,
            "serve.report.cascade.unscorable",
            report.cascade.unscorable,
        );
        gauge(
            registry,
            "serve.report.queue.admitted",
            report.queue.admitted,
        );
        gauge(registry, "serve.report.queue.shed", report.queue.shed);
        registry.set_gauge(
            "serve.report.queue.high_water",
            report.queue.high_water.cast_signed(),
        );
        gauge(registry, "serve.report.batches", report.batches.batches);
        gauge(
            registry,
            "serve.report.batches.requests",
            report.batches.requests,
        );
        registry.set_gauge(
            "serve.report.batches.max_size",
            report.batches.max_size.cast_signed(),
        );
        gauge(
            registry,
            "serve.report.batches.full_flushes",
            report.batches.full_flushes,
        );
        gauge(
            registry,
            "serve.report.batches.deadline_flushes",
            report.batches.deadline_flushes,
        );
        gauge(
            registry,
            "serve.report.virtual_elapsed_ms",
            report.virtual_elapsed_ms,
        );
        registry.set_histogram("serve.latency_ms", self.latency.as_histogram().clone());
    }

    /// Executes the batch flush due at virtual instant `flush_ms`.
    fn flush_at(
        &mut self,
        flush_ms: u64,
        out: &mut Vec<ServeResponse>,
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) {
        let batch = self.batcher.take(&mut self.queue);
        if batch.is_empty() {
            return;
        }
        obs.clock(flush_ms);
        obs.batch_flush(batch.len());
        let completion_ms = flush_ms
            .saturating_add(self.config.batch_overhead_ms)
            .saturating_add(self.config.service_cost_ms * batch.len() as u64);
        self.busy_until_ms = completion_ms;
        self.last_event_ms = self.last_event_ms.max(completion_ms);

        // Resolve each request: memoized fetch, then cache lookup; cache
        // misses accumulate into one batch for parallel classification.
        let mut slots = Vec::with_capacity(batch.len());
        let mut to_classify: Vec<(String, ScrapedPage)> = Vec::new();
        let mut pending_keys: Vec<String> = Vec::new();
        for request in &batch {
            let store_key = canonical_url(&request.url).unwrap_or_else(|| request.url.clone());
            // The entry API makes fetch-once memoization a single keyed
            // access: no check-then-get, nothing to expect (kyp-lint P01).
            let source = &mut self.source;
            let stored = self.page_store.entry(store_key).or_insert_with(|| {
                source.fetch(&request.url).map(|page| {
                    let landing_key = canonical_key(&page.visit.landing_url);
                    StoredScrape { page, landing_key }
                })
            });
            let slot = match stored {
                Err(cause) => Slot::Unfetchable(*cause),
                Ok(stored) => {
                    let cached = self
                        .cache
                        .as_mut()
                        .and_then(|c| c.get(&stored.landing_key, flush_ms));
                    if let Some((verdict, degraded)) = cached {
                        obs.cache_hit();
                        Slot::Cached(verdict, degraded)
                    } else {
                        if self.cache.is_some() {
                            obs.cache_miss();
                        }
                        let idx = to_classify.len();
                        to_classify.push((request.url.clone(), stored.page.clone()));
                        pending_keys.push(stored.landing_key.clone());
                        Slot::Pending(idx)
                    }
                }
            };
            slots.push(slot);
        }

        let classified = self.pipeline.classify_scraped_observed(&to_classify, obs);
        if let Some(cache) = self.cache.as_mut() {
            for (key, page) in pending_keys.iter().zip(&classified) {
                cache.insert(
                    key.clone(),
                    (page.verdict.clone(), page.degraded),
                    completion_ms,
                );
            }
        }

        for (request, slot) in batch.into_iter().zip(slots) {
            let latency_ms = completion_ms.saturating_sub(request.arrival_ms);
            let (outcome, cache_state, degraded) = match slot {
                Slot::Unfetchable(cause) => {
                    self.unfetchable += 1;
                    (
                        ServeOutcome::Unfetchable {
                            cause: cause.wire_name().to_owned(),
                        },
                        CacheState::Skipped,
                        false,
                    )
                }
                Slot::Cached(verdict, degraded) => {
                    self.answered += 1;
                    // The wire stage stays Full (the stage that decided
                    // the cached verdict); Cached is metrics provenance.
                    obs.verdict_stage(VerdictStage::Cached);
                    (verdict_outcome(&verdict), CacheState::Hit, degraded)
                }
                Slot::Pending(idx) => {
                    self.answered += 1;
                    obs.verdict_stage(VerdictStage::Full);
                    // kyp-lint: allow(P02) — Pending slots are built from `classified` positions earlier in this function
                    let page = &classified[idx];
                    let state = if self.cache.is_some() {
                        CacheState::Miss
                    } else {
                        CacheState::Disabled
                    };
                    (verdict_outcome(&page.verdict), state, page.degraded)
                }
            };
            if degraded {
                self.degraded += 1;
            }
            self.latency.record(latency_ms);
            out.push(ServeResponse {
                id: request.id,
                url: request.url,
                outcome,
                cache: cache_state,
                degraded,
                latency_ms,
                completed_ms: completion_ms,
                stage: VerdictStage::Full,
            });
        }
    }
}

/// Maps a pipeline verdict onto the wire outcome.
fn verdict_outcome(verdict: &PipelineVerdict) -> ServeOutcome {
    ServeOutcome::from_verdict(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::StoredPages;
    use crate::workload::{generate, ArrivalPattern, WorkloadConfig};
    use kyp_core::{DetectorConfig, FeatureExtractor, PhishDetector, TargetIdentifier};
    use kyp_ml::Dataset;
    use kyp_search::SearchEngine;
    use kyp_web::VisitedPage;
    use std::sync::Arc;

    fn url(s: &str) -> kyp_url::Url {
        kyp_url::Url::parse(s).unwrap()
    }

    fn phish_page(i: usize) -> VisitedPage {
        let u = url(&format!("http://paypal-secure{i}.badhost.example/login"));
        VisitedPage {
            starting_url: u.clone(),
            landing_url: u.clone(),
            redirection_chain: vec![u],
            logged_links: vec![url("http://cdn.badhost.example/kit.js")],
            href_links: vec![url("http://paypal.com/")],
            text: "paypal secure login verify your paypal account password now".into(),
            title: "PayPal Login".into(),
            copyright: Some("paypal".into()),
            screenshot_text: "paypal login".into(),
            input_count: 3,
            image_count: 1,
            iframe_count: 1,
        }
    }

    fn legit_page(i: usize) -> VisitedPage {
        let u = url(&format!("http://mybank{i}.example.com/"));
        VisitedPage {
            starting_url: u.clone(),
            landing_url: u.clone(),
            redirection_chain: vec![u],
            logged_links: vec![url(&format!("http://mybank{i}.example.com/style.css"))],
            href_links: vec![url(&format!("http://mybank{i}.example.com/about"))],
            text: "welcome to our neighborhood bank branch opening hours and news".into(),
            title: "My Bank".into(),
            copyright: Some("mybank".into()),
            screenshot_text: String::new(),
            input_count: 0,
            image_count: 2,
            iframe_count: 0,
        }
    }

    fn pipeline() -> Pipeline {
        let extractor = FeatureExtractor::default();
        let mut data = Dataset::new(kyp_core::features::FEATURE_COUNT);
        for i in 0..40 {
            data.push_row(&extractor.extract(&phish_page(i)), true);
            data.push_row(&extractor.extract(&legit_page(i)), false);
        }
        let detector = PhishDetector::train(&data, &DetectorConfig::default());
        let mut engine = SearchEngine::new();
        engine.index_page(
            "paypal.com",
            "paypal",
            "paypal account login send money online payments paypal",
        );
        engine.index_page(
            "mybank0.example.com",
            "mybank0",
            "welcome neighborhood bank branch news mybank",
        );
        Pipeline::new(extractor, detector, TargetIdentifier::new(Arc::new(engine)))
    }

    fn store(pages: usize) -> (StoredPages, Vec<String>) {
        let mut all = Vec::new();
        let mut urls = Vec::new();
        for i in 0..pages {
            let p = phish_page(i);
            urls.push(p.starting_url.to_string());
            all.push(p);
            let l = legit_page(i);
            urls.push(l.starting_url.to_string());
            all.push(l);
        }
        (StoredPages::new(all), urls)
    }

    fn service(cache: bool) -> ScoringService<StoredPages> {
        let (pages, _) = store(20);
        ScoringService::new(
            pipeline(),
            pages,
            ServeConfig {
                cache: cache.then(CacheConfig::default),
                ..ServeConfig::default()
            },
        )
    }

    fn trace(requests: usize, duplicate_rate: f64) -> Vec<ServeRequest> {
        let (_, urls) = store(20);
        generate(
            &WorkloadConfig {
                requests,
                duplicate_rate,
                ..WorkloadConfig::default()
            },
            &urls,
        )
    }

    #[test]
    fn answers_every_request_of_a_clean_trace() {
        let mut svc = service(true);
        let trace = trace(100, 0.3);
        let responses = svc.run_trace(&trace);
        assert_eq!(responses.len(), 100);
        let report = svc.report();
        assert_eq!(report.requests, 100);
        assert_eq!(report.answered, 100);
        assert_eq!(report.shed, 0);
        assert_eq!(report.unfetchable, 0);
        assert!(report.cache.hits > 0, "duplicates should hit the cache");
        assert!(report.latency.count == 100);
        assert!(report.virtual_elapsed_ms > 0);
        assert!(report.throughput_per_vsec > 0.0);
        // Responses complete in non-decreasing virtual time.
        let times: Vec<u64> = responses.iter().map(|r| r.completed_ms).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cache_on_and_off_produce_identical_verdict_streams() {
        let trace = trace(200, 0.4);
        let mut on = service(true);
        let mut off = service(false);
        let lines_on: Vec<String> = on
            .run_trace(&trace)
            .iter()
            .map(super::super::protocol::ServeResponse::verdict_line)
            .collect();
        let lines_off: Vec<String> = off
            .run_trace(&trace)
            .iter()
            .map(super::super::protocol::ServeResponse::verdict_line)
            .collect();
        assert_eq!(lines_on, lines_off);
        assert!(on.report().cache.hits > 0);
        assert_eq!(off.report().cache.hits, 0);
        // The virtual cost model is cache-independent, so even the timing
        // reports agree on everything but the cache counters.
        let (ron, roff) = (on.report(), off.report());
        assert_eq!(ron.latency, roff.latency);
        assert_eq!(ron.virtual_elapsed_ms, roff.virtual_elapsed_ms);
    }

    #[test]
    fn bursty_overload_sheds_deterministically() {
        let (_, urls) = store(20);
        let trace = generate(
            &WorkloadConfig {
                requests: 120,
                duplicate_rate: 0.2,
                arrival: ArrivalPattern::Bursty {
                    burst: 40,
                    burst_gap_ms: 0,
                    idle_gap_ms: 5,
                },
                ..WorkloadConfig::default()
            },
            &urls,
        );
        let run = || {
            let (pages, _) = store(20);
            let mut svc = ScoringService::new(
                pipeline(),
                pages,
                ServeConfig {
                    queue_capacity: 8,
                    cache: Some(CacheConfig::default()),
                    ..ServeConfig::default()
                },
            );
            let lines: Vec<String> = svc
                .run_trace(&trace)
                .iter()
                .map(super::super::protocol::ServeResponse::verdict_line)
                .collect();
            (lines, svc.report())
        };
        let (lines_a, report_a) = run();
        let (lines_b, report_b) = run();
        assert_eq!(lines_a, lines_b);
        assert_eq!(report_a, report_b);
        assert!(report_a.shed > 0, "overload must shed");
        assert_eq!(report_a.requests, 120);
        assert_eq!(
            report_a.answered + report_a.shed + report_a.unfetchable,
            120
        );
        assert_eq!(report_a.queue.high_water, 8);
    }

    #[test]
    fn unknown_urls_come_back_unfetchable() {
        let mut svc = service(true);
        let responses = svc.run_trace(&[ServeRequest {
            id: 0,
            url: "http://unknown.example.org/".into(),
            arrival_ms: 0,
        }]);
        assert_eq!(responses.len(), 1);
        assert_eq!(
            responses[0].outcome,
            ServeOutcome::Unfetchable {
                cause: "not_found".into()
            }
        );
        assert_eq!(svc.report().unfetchable, 1);
    }

    #[test]
    fn each_unique_url_fetches_once_despite_duplicates() {
        let (pages, urls) = store(4);
        let mut svc = ScoringService::new(pipeline(), pages, ServeConfig::default());
        let trace = generate(
            &WorkloadConfig {
                requests: 64,
                duplicate_rate: 0.8,
                ..WorkloadConfig::default()
            },
            &urls[..4],
        );
        svc.run_trace(&trace);
        assert!(svc.page_store.len() <= 4);
        assert_eq!(svc.report().answered, 64);
    }

    #[test]
    fn advance_to_flushes_only_due_batches() {
        let mut svc = service(false);
        let (_, urls) = store(20);
        // Two arrivals at t=0; max_batch is 8 so the pair waits for the
        // 25 ms deadline of the oldest request.
        for (i, url) in urls.iter().take(2).enumerate() {
            let out = svc.push(ServeRequest {
                id: i as u64,
                url: url.clone(),
                arrival_ms: 0,
            });
            assert!(out.is_empty());
        }
        assert_eq!(svc.next_due(), Some(25));
        assert!(svc.advance_to(24).is_empty(), "not due yet");
        assert_eq!(svc.queue_len(), 2);
        let out = svc.advance_to(25);
        assert_eq!(out.len(), 2, "deadline flush fires at 25");
        assert!(out.iter().all(|r| r.completed_ms > 25));
        assert_eq!(svc.next_due(), None);
        assert_eq!(svc.queue_len(), 0);
    }

    #[test]
    fn drain_queue_returns_backlog_without_shedding() {
        let mut svc = service(false);
        let (_, urls) = store(20);
        for (i, url) in urls.iter().take(3).enumerate() {
            let _ = svc.push(ServeRequest {
                id: i as u64,
                url: url.clone(),
                arrival_ms: 0,
            });
        }
        let before = svc.report().queue;
        let drained = svc.drain_queue();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].id, 0, "FIFO order");
        assert!(svc.queue_len() == 0);
        assert_eq!(svc.report().queue, before, "draining is not shedding");
        assert!(svc.drain_queue().is_empty(), "second drain is a no-op");
    }

    #[test]
    fn restart_clears_state_but_keeps_lifetime_counters() {
        let mut svc = service(true);
        let trace = trace(40, 0.5);
        let _ = svc.run_trace(&trace);
        let before = svc.report();
        assert!(before.answered > 0 && before.cache.hits > 0);
        // Leave a backlog queued, then crash.
        let (_, urls) = store(20);
        let _ = svc.push(ServeRequest {
            id: 999,
            url: urls[0].clone(),
            arrival_ms: 1_000_000,
        });
        svc.restart();
        assert_eq!(svc.queue_len(), 0, "backlog lost with the node");
        assert!(svc.page_store.is_empty(), "fetch memo is cold");
        let after = svc.report();
        assert_eq!(after.answered, before.answered, "accounting survives");
        assert_eq!(after.cache, before.cache, "cache counters survive");
        // The cold cache misses on a key it used to hold.
        let out = svc.run_trace(&[ServeRequest {
            id: 1_000,
            url: urls[0].clone(),
            arrival_ms: 2_000_000,
        }]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cache, CacheState::Miss, "restart emptied the cache");
    }

    #[test]
    fn report_shed_ratio_matches_counts() {
        let mut svc = service(true);
        assert!(svc.report().shed_ratio.abs() < f64::EPSILON, "no requests");
        let trace = trace(100, 0.3);
        let _ = svc.run_trace(&trace);
        let report = svc.report();
        assert_eq!(report.shed, 0);
        assert!(report.shed_ratio.abs() < f64::EPSILON);
        // An overloaded service reports the exact ratio.
        let (_, urls) = store(20);
        let bursty = generate(
            &WorkloadConfig {
                requests: 120,
                duplicate_rate: 0.2,
                arrival: ArrivalPattern::Bursty {
                    burst: 40,
                    burst_gap_ms: 0,
                    idle_gap_ms: 5,
                },
                ..WorkloadConfig::default()
            },
            &urls,
        );
        let (pages, _) = store(20);
        let mut tight = ScoringService::new(
            pipeline(),
            pages,
            ServeConfig {
                queue_capacity: 8,
                ..ServeConfig::default()
            },
        );
        let _ = tight.run_trace(&bursty);
        let r = tight.report();
        assert!(r.shed > 0);
        let expected = r.shed as f64 / r.requests as f64;
        assert!((r.shed_ratio - expected).abs() < 1e-12);
    }

    fn cascade(band: kyp_core::CascadeBand) -> CascadeClassifier {
        let legit: Vec<String> = (0..40)
            .map(|i| legit_page(i).starting_url.to_string())
            .collect();
        let phish: Vec<String> = (0..40)
            .map(|i| phish_page(i).starting_url.to_string())
            .collect();
        let ranker = kyp_web::DomainRanker::from_ranked(["mybank0.example.com"]);
        let detector = kyp_core::cascade::train_url_stage(
            &legit,
            &phish,
            &ranker,
            &kyp_core::DetectorConfig::url_stage(),
        )
        .unwrap();
        CascadeClassifier::new(detector, ranker, band)
    }

    #[test]
    fn cascade_finalises_confident_urls_without_fetching() {
        let band = kyp_core::CascadeBand::new(0.35, 0.65).unwrap();
        let mut svc = service(true).with_cascade(cascade(band));
        let trace = trace(100, 0.0);
        let responses = svc.run_trace(&trace);
        assert_eq!(responses.len(), 100);
        let report = svc.report();
        assert_eq!(report.requests, 100);
        assert_eq!(report.answered, 100);
        assert!(report.cascade_enabled);
        assert_eq!(report.cascade.screened, 100);
        assert!(
            report.cascade.url_only > 50,
            "the URL stage should finalise most of this lexically easy trace: {:?}",
            report.cascade
        );
        assert_eq!(
            report.cascade.url_only + report.cascade.fallthrough + report.cascade.unscorable,
            report.cascade.screened
        );
        // Cascade-final requests never fetch: the memo only holds the
        // fallthroughs.
        assert!(svc.page_store.len() as u64 <= report.cascade.fallthrough);
        for r in &responses {
            if r.stage == kyp_obs::VerdictStage::UrlOnly {
                assert_eq!(r.latency_ms, 0, "URL-stage verdicts answer at arrival");
                assert_eq!(r.cache, CacheState::Skipped);
                assert!(r.verdict_line().ends_with(" stage=url_only"));
            }
        }
    }

    #[test]
    fn forced_full_band_is_byte_identical_to_no_cascade() {
        let trace = trace(150, 0.3);
        let mut plain = service(true);
        let mut forced = service(true).with_cascade(cascade(kyp_core::CascadeBand::FORCED_FULL));
        let lines_plain: Vec<String> = plain
            .run_trace(&trace)
            .iter()
            .map(ServeResponse::verdict_line)
            .collect();
        let lines_forced: Vec<String> = forced
            .run_trace(&trace)
            .iter()
            .map(ServeResponse::verdict_line)
            .collect();
        assert_eq!(lines_plain, lines_forced);
        let report = forced.report();
        assert_eq!(report.cascade.url_only, 0, "band 0,1 never finalises");
        assert_eq!(report.cascade.fallthrough, 150);
    }

    #[test]
    fn regressive_arrivals_are_clamped_monotone() {
        let mut svc = service(false);
        let (_, urls) = store(20);
        let mut out = svc.push(ServeRequest {
            id: 0,
            url: urls[0].clone(),
            arrival_ms: 500,
        });
        out.extend(svc.push(ServeRequest {
            id: 1,
            url: urls[1].clone(),
            arrival_ms: 100, // regresses; clamped to 500
        }));
        out.extend(svc.finish());
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.completed_ms > 500));
    }
}
