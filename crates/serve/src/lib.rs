#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Deterministic online scoring service over the Know Your Phish
//! pipeline.
//!
//! The batch pipeline answers "how good is the classifier?"; this crate
//! answers "what does it take to run it as a service?". A
//! [`ScoringService`] wraps a warm [`kyp_core::Pipeline`] with the three
//! mechanisms a production scorer needs, all simulated on a virtual clock
//! so every run is bit-reproducible:
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!  requests ──────▶  │ AdmissionQueue (bounded; sheds when full)  │
//!                    └──────────────┬─────────────────────────────┘
//!                                   │ MicroBatcher: flush on max_batch
//!                                   ▼            or max_delay_ms
//!                    ┌────────────────────────────────────────────┐
//!                    │ VerdictCache (LRU + TTL, landing-URL key)  │
//!                    │   hit ──────────────▶ response             │
//!                    │   miss ─▶ Pipeline::classify_scraped ─▶ …  │
//!                    └──────────────┬─────────────────────────────┘
//!                                   ▼
//!                    ServeStats: latency histogram, throughput,
//!                    cache / queue / batch counters → ServeReport
//! ```
//!
//! # Determinism contract
//!
//! For one seeded trace (see [`workload`]), the stream of
//! [`ServeResponse::verdict_line`] projections is byte-identical:
//!
//! - at **any thread count** — batch classification fans out over
//!   [`kyp_exec`] with order-preserving joins;
//! - with the **cache on or off** — fetches are memoized per unique URL
//!   (stateful fault plans see the same fetch sequence either way) and
//!   verdicts are pure functions of the fetched page;
//! - under a **fault plan** — all retry/breaker timing is virtual.
//!
//! The cache's payoff is wall-clock time only: hits skip feature
//! extraction and both model stages, which `exp_serve_throughput`
//! measures as real pages/second.

pub mod batcher;
pub mod cache;
pub mod protocol;
pub mod queue;
pub mod service;
pub mod source;
pub mod stats;
pub mod workload;

pub use batcher::{BatchCounters, BatchPolicy, MicroBatcher};
pub use cache::{CacheConfig, CacheCounters, VerdictCache};
pub use protocol::{CacheState, ServeOutcome, ServeRequest, ServeResponse};
pub use queue::{AdmissionQueue, QueueCounters};
pub use service::{ScoringService, ServeConfig, SHED_QUEUE_FULL};
pub use source::{canonical_key, canonical_url, PageSource, ScraperSource, StoredPages};
pub use stats::{
    CascadeCounters, LatencyHistogram, LatencySummary, ServeReport, LATENCY_BUCKET_BOUNDS_MS,
};
pub use workload::{generate, ArrivalPattern, WorkloadConfig};
