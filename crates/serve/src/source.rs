//! Where scored pages come from: a live scraper or a stored capture.
//!
//! The service is generic over [`PageSource`] so the same scoring loop
//! runs against a simulated web (tests, benchmarks — via
//! [`ScraperSource`]) or against a previously captured page set (the CLI,
//! whose jsonl bundles carry visited pages but no raw HTML — via
//! [`StoredPages`]).

use kyp_url::Url;
use kyp_web::{
    FailureCause, ResilientBrowser, ScrapedPage, SourceAvailability, VisitedPage, World,
};
use std::collections::HashMap;

/// A provider of scraped pages keyed by request URL.
pub trait PageSource {
    /// Fetches `url`, returning the scraped page or the terminal failure
    /// cause. Implementations must be deterministic: the same sequence of
    /// calls yields the same sequence of results.
    fn fetch(&mut self, url: &str) -> Result<ScrapedPage, FailureCause>;
}

/// The canonical cache/store key of a URL: `{fqdn-or-host}/{path}` —
/// scheme-, port- and query-insensitive, mirroring how the simulated web
/// itself keys pages. `None` when the URL does not parse.
pub fn canonical_url(url: &str) -> Option<String> {
    Url::parse(url).ok().map(|u| canonical_key(&u))
}

/// [`canonical_url`] for an already-parsed URL.
pub fn canonical_key(u: &Url) -> String {
    let host = u.fqdn_str().unwrap_or_else(|| u.host().to_string());
    format!("{host}{}", u.path())
}

/// A [`PageSource`] that scrapes live from a [`World`] through the
/// resilient browser (retries, backoff, circuit breaking).
#[derive(Debug)]
pub struct ScraperSource<'w, W: World> {
    browser: ResilientBrowser<'w, W>,
}

impl<'w, W: World> ScraperSource<'w, W> {
    /// A source scraping `world` with the default retry policy.
    pub fn new(world: &'w W) -> Self {
        ScraperSource {
            browser: ResilientBrowser::new(world),
        }
    }

    /// A source wrapping an explicitly configured browser.
    pub fn with_browser(browser: ResilientBrowser<'w, W>) -> Self {
        ScraperSource { browser }
    }
}

impl<W: World> PageSource for ScraperSource<'_, W> {
    fn fetch(&mut self, url: &str) -> Result<ScrapedPage, FailureCause> {
        self.browser.scrape(url).map_err(|f| f.cause)
    }
}

/// A [`PageSource`] over previously captured pages, keyed by the
/// canonical form of each page's starting URL.
///
/// Captured pages carry no raw HTML, so a world cannot be rebuilt from
/// them — but a full [`VisitedPage`] is exactly what classification
/// needs. Lookups that miss the store report [`FailureCause::NotFound`];
/// unparsable URLs report [`FailureCause::BadUrl`].
#[derive(Debug, Clone)]
pub struct StoredPages {
    pages: HashMap<String, VisitedPage>,
}

impl StoredPages {
    /// A store over `pages`, indexed by canonical starting URL. Later
    /// duplicates of a key win.
    pub fn new(items: impl IntoIterator<Item = VisitedPage>) -> Self {
        let pages = items
            .into_iter()
            .map(|p| (canonical_key(&p.starting_url), p))
            .collect();
        StoredPages { pages }
    }

    /// A store streamed out of a `kyp gen --store` directory's page
    /// file, indexed exactly like [`StoredPages::new`] over the pages in
    /// stored (generation) order — so a store-backed service sees the
    /// same map as one built from the jsonl bundles.
    ///
    /// # Errors
    ///
    /// Propagates every [`kyp_store::StoreError`] as a rendered string:
    /// missing or unreadable files, bad magic, version or kind
    /// mismatches, checksum failures and truncation.
    pub fn from_store_dir(dir: &std::path::Path) -> Result<Self, String> {
        let path = kyp_store::pages_path(dir);
        let reader = kyp_store::PageStoreReader::open(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        let pages = reader
            .read_all()
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Ok(Self::new(pages))
    }

    /// Stored pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

impl PageSource for StoredPages {
    fn fetch(&mut self, url: &str) -> Result<ScrapedPage, FailureCause> {
        let key = canonical_url(url).ok_or(FailureCause::BadUrl)?;
        let visit = self.pages.get(&key).ok_or(FailureCause::NotFound)?;
        Ok(ScrapedPage {
            visit: visit.clone(),
            availability: SourceAvailability::FULL,
            attempts: 1,
            elapsed_ms: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(starting_url: &str, title: &str) -> VisitedPage {
        let url = Url::parse(starting_url).unwrap();
        VisitedPage {
            starting_url: url.clone(),
            landing_url: url.clone(),
            redirection_chain: vec![url],
            logged_links: Vec::new(),
            href_links: Vec::new(),
            text: format!("text of {title}"),
            title: title.to_owned(),
            copyright: None,
            screenshot_text: String::new(),
            input_count: 0,
            image_count: 0,
            iframe_count: 0,
        }
    }

    #[test]
    fn canonical_url_drops_scheme_and_query() {
        let a = canonical_url("http://www.example.com/login?next=/home").unwrap();
        let b = canonical_url("https://www.example.com/login").unwrap();
        assert_eq!(a, b);
        assert!(canonical_url("not a url ://").is_none());
    }

    #[test]
    fn stored_pages_hit_and_miss() {
        let mut store = StoredPages::new(vec![page("http://a.example.com/x", "A")]);
        assert_eq!(store.len(), 1);
        let hit = store.fetch("https://a.example.com/x?utm=1").unwrap();
        assert_eq!(hit.visit.title, "A");
        assert_eq!(hit.availability, SourceAvailability::FULL);
        assert_eq!(
            store.fetch("http://missing.example.com/").unwrap_err(),
            FailureCause::NotFound
        );
        assert_eq!(
            store.fetch("not a url ://").unwrap_err(),
            FailureCause::BadUrl
        );
    }
}
