//! Latency accounting: a fixed-bucket histogram with percentile summaries,
//! and the service's serializable run report.
//!
//! The histogram is a thin façade over [`kyp_obs::Histogram`] pinned to
//! the power-of-two bucket layout, so the serving layer's percentile
//! semantics are exactly the observability layer's: bucket upper bounds
//! (an over-estimate never exceeding 2× the true value), clamped to the
//! exact maximum observed so no percentile overshoots it.

use crate::batcher::BatchCounters;
use crate::cache::CacheCounters;
use crate::queue::QueueCounters;
use serde::{Deserialize, Serialize};

/// Upper bounds (inclusive) of the histogram's regular buckets, in ms.
/// Values above the last bound land in the overflow bucket. Identical to
/// [`kyp_obs::POW2_BUCKET_BOUNDS`].
pub const LATENCY_BUCKET_BOUNDS_MS: [u64; 17] = kyp_obs::POW2_BUCKET_BOUNDS;

/// A fixed-bucket latency histogram over virtual milliseconds.
///
/// # Examples
///
/// ```
/// use kyp_serve::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [1, 2, 3, 9, 120] {
///     h.record(ms);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.percentile(0.50), 4);   // 3 rounds up to its bucket bound
/// assert_eq!(h.percentile(0.99), 120); // bucket bound 128, clamped to max
/// assert_eq!(h.max_ms(), 120);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    inner: kyp_obs::Histogram,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            inner: kyp_obs::Histogram::pow2(),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, ms: u64) {
        self.inner.record(ms);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Largest observation recorded (0 when empty).
    pub fn max_ms(&self) -> u64 {
        self.inner.max()
    }

    /// Mean observation (0.0 when empty).
    pub fn mean_ms(&self) -> f64 {
        self.inner.mean()
    }

    /// The value at quantile `p` in `(0, 1]`, as the upper bound of the
    /// bucket holding the rank-`ceil(p·n)` observation — clamped to the
    /// exact maximum observed, so no percentile ever exceeds
    /// [`LatencyHistogram::max_ms`]. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        self.inner.percentile(p)
    }

    /// The underlying observability histogram (for registry export).
    pub fn as_histogram(&self) -> &kyp_obs::Histogram {
        &self.inner
    }

    /// The standard percentile summary of this histogram.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.inner.count(),
            mean_ms: self.inner.mean(),
            p50_ms: self.inner.percentile(0.50),
            p90_ms: self.inner.percentile(0.90),
            p99_ms: self.inner.percentile(0.99),
            max_ms: self.inner.max(),
        }
    }
}

/// Serializable percentile summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Observations summarized.
    pub count: u64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median (bucket upper bound).
    pub p50_ms: u64,
    /// 90th percentile (bucket upper bound).
    pub p90_ms: u64,
    /// 99th percentile (bucket upper bound).
    pub p99_ms: u64,
    /// Exact maximum observed.
    pub max_ms: u64,
}

/// Event counts of the URL-only cascade pre-filter. All zero when the
/// cascade is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CascadeCounters {
    /// Requests the URL stage prescreened (every arrival when enabled).
    pub screened: u64,
    /// Requests finalised by the URL stage — each one a scrape avoided.
    pub url_only: u64,
    /// Requests whose URL score fell inside the uncertainty band.
    pub fallthrough: u64,
    /// Requests whose URL did not parse (the full pipeline decides).
    pub unscorable: u64,
}

/// Serializable end-of-run report of a scoring service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests pushed at the service (admitted + shed).
    pub requests: u64,
    /// Requests answered with a pipeline verdict.
    pub answered: u64,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// `shed / requests` in `[0, 1]` (0.0 when no requests arrived) — the
    /// first number to read in an overload report. Sustained ratios above
    /// 0.5 mean the configuration, not the load, is the problem.
    #[serde(default)]
    pub shed_ratio: f64,
    /// Requests whose page could not be fetched.
    pub unfetchable: u64,
    /// Answered requests served from a degraded (partial) capture.
    pub degraded: u64,
    /// Whether the verdict cache was enabled.
    pub cache_enabled: bool,
    /// Verdict-cache event counts.
    pub cache: CacheCounters,
    /// Whether the URL-only cascade pre-filter was enabled.
    pub cascade_enabled: bool,
    /// Cascade pre-filter event counts.
    pub cascade: CascadeCounters,
    /// Admission-queue event counts.
    pub queue: QueueCounters,
    /// Micro-batcher event counts.
    pub batches: BatchCounters,
    /// Latency percentiles over answered + unfetchable requests.
    pub latency: LatencySummary,
    /// Virtual span of the run: last completion minus first arrival.
    pub virtual_elapsed_ms: u64,
    /// Answered requests per virtual second.
    pub throughput_per_vsec: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max_ms(), 0);
        assert!(h.mean_ms() == 0.0);
    }

    #[test]
    fn percentiles_on_known_inputs() {
        let mut h = LatencyHistogram::new();
        // 100 observations: 1..=100 ms.
        for ms in 1..=100 {
            h.record(ms);
        }
        assert_eq!(h.count(), 100);
        // Rank 50 is 50 ms → bucket (32, 64].
        assert_eq!(h.percentile(0.50), 64);
        // Rank 90 is 90 ms → bucket (64, 128], clamped to the exact max.
        assert_eq!(h.percentile(0.90), 100);
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(h.max_ms(), 100);
        assert!((h.mean_ms() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_observation_dominates_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(7);
        assert_eq!(h.percentile(0.01), 7, "bucket bound 8 clamps to max");
        assert_eq!(h.percentile(0.50), 7);
        assert_eq!(h.percentile(1.0), 7);
    }

    #[test]
    fn overflow_bucket_reports_exact_max() {
        let mut h = LatencyHistogram::new();
        h.record(1);
        h.record(1_000_000);
        assert_eq!(h.percentile(0.99), 1_000_000);
        assert_eq!(h.percentile(0.50), 1);
        assert_eq!(h.max_ms(), 1_000_000);
    }

    #[test]
    fn boundary_values_land_in_their_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        // Ranks: 0→bucket ≤1, 1→bucket ≤1, 2→bucket ≤2.
        assert_eq!(h.percentile(1.0 / 3.0), 1);
        assert_eq!(h.percentile(2.0 / 3.0), 1);
        assert_eq!(h.percentile(1.0), 2);
    }

    #[test]
    fn summary_mirrors_percentile_calls() {
        let mut h = LatencyHistogram::new();
        for ms in [3, 5, 9, 17, 200] {
            h.record(ms);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.p50_ms, h.percentile(0.5));
        assert_eq!(s.p90_ms, h.percentile(0.9));
        assert_eq!(s.p99_ms, h.percentile(0.99));
        assert_eq!(s.max_ms, 200);
        let json = serde_json::to_string(&s).unwrap();
        let back: LatencySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
