//! Bounded admission with explicit backpressure.
//!
//! A production scoring service cannot queue unboundedly: past a depth
//! limit, latency guarantees are already lost and every further request
//! only makes the backlog worse. [`AdmissionQueue`] therefore *sheds*
//! (rejects immediately, with an explicit verdict the caller can surface)
//! instead of buffering once full — load shedding as admission control.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Admission accounting over one queue's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueCounters {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests rejected because the queue was full.
    pub shed: u64,
    /// Deepest the queue ever got.
    pub high_water: u64,
}

/// A bounded FIFO queue that sheds on overflow.
///
/// # Examples
///
/// ```
/// use kyp_serve::AdmissionQueue;
///
/// let mut q = AdmissionQueue::new(2);
/// assert!(q.offer(1).is_ok());
/// assert!(q.offer(2).is_ok());
/// assert_eq!(q.offer(3), Err(3), "full queue sheds, returning the item");
/// assert_eq!(q.take_batch(8), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    counters: QueueCounters,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue holding at most `capacity` items (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            items: VecDeque::new(),
            capacity: capacity.max(1),
            counters: QueueCounters::default(),
        }
    }

    /// The configured depth limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Admission accounting so far.
    pub fn counters(&self) -> QueueCounters {
        self.counters
    }

    /// The oldest queued item, if any.
    ///
    /// A pure read: no counter moves. Only [`AdmissionQueue::offer`]
    /// touches `admitted`/`shed`/`high_water`.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// The item at position `idx` from the front (0 = oldest), if any.
    ///
    /// Like [`AdmissionQueue::front`], a pure read — counters never move
    /// on peeks, however often the batcher probes the queue.
    pub fn peek(&self, idx: usize) -> Option<&T> {
        self.items.get(idx)
    }

    /// Attempts to admit `item`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` — handing the item back — when the queue is at
    /// capacity; the rejection is tallied as shed.
    pub fn offer(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.counters.shed += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.counters.admitted += 1;
        self.counters.high_water = self.counters.high_water.max(self.items.len() as u64);
        Ok(())
    }

    /// Removes and returns up to `n` items from the front, in FIFO order.
    ///
    /// `take_batch(0)` is a guaranteed no-op: it returns an empty vector
    /// and leaves the queue — depth, order and counters — untouched.
    /// Draining any `n` moves no counters either (`admitted`, `shed` and
    /// `high_water` are admission-side accounting only), so callers may
    /// probe and drain freely without perturbing the report.
    pub fn take_batch(&mut self, n: usize) -> Vec<T> {
        let k = n.min(self.items.len());
        self.items.drain(..k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = AdmissionQueue::new(10);
        for i in 0..5 {
            q.offer(i).unwrap();
        }
        assert_eq!(q.take_batch(3), vec![0, 1, 2]);
        assert_eq!(q.take_batch(10), vec![3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn sheds_when_full_and_counts() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.offer("a").is_ok());
        assert!(q.offer("b").is_ok());
        assert_eq!(q.offer("c"), Err("c"));
        assert_eq!(q.offer("d"), Err("d"));
        let c = q.counters();
        assert_eq!((c.admitted, c.shed, c.high_water), (2, 2, 2));
        // Draining frees capacity again.
        let _ = q.take_batch(1);
        assert!(q.offer("e").is_ok());
        assert_eq!(q.counters().admitted, 3);
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut q = AdmissionQueue::new(8);
        for i in 0..6 {
            q.offer(i).unwrap();
        }
        let _ = q.take_batch(6);
        q.offer(9).unwrap();
        assert_eq!(q.counters().high_water, 6);
    }

    #[test]
    fn take_batch_zero_is_a_noop() {
        let mut q = AdmissionQueue::new(4);
        for i in 0..3 {
            q.offer(i).unwrap();
        }
        let before = q.counters();
        assert_eq!(q.take_batch(0), Vec::<i32>::new());
        assert_eq!(q.len(), 3, "depth untouched");
        assert_eq!(q.front(), Some(&0), "order untouched");
        assert_eq!(q.counters(), before, "counters untouched");
        // Still a no-op on an empty queue.
        let mut empty: AdmissionQueue<i32> = AdmissionQueue::new(4);
        assert!(empty.take_batch(0).is_empty());
        assert_eq!(empty.counters(), QueueCounters::default());
    }

    #[test]
    fn reads_never_move_counters() {
        let mut q = AdmissionQueue::new(4);
        for i in 0..3 {
            q.offer(i).unwrap();
        }
        let before = q.counters();
        // Peeks at every position (including out of range), front, len,
        // emptiness — all pure reads.
        for idx in 0..10 {
            let _ = q.peek(idx);
        }
        assert_eq!(q.peek(1), Some(&1));
        assert_eq!(q.peek(99), None);
        let _ = q.front();
        let _ = q.len();
        let _ = q.is_empty();
        assert_eq!(q.counters(), before);
        // Draining (any n) is also counter-neutral: admission-side
        // accounting only moves on offer().
        let _ = q.take_batch(2);
        assert_eq!(q.counters(), before);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.offer(1).is_ok());
        assert_eq!(q.offer(2), Err(2));
    }
}
