use kyp_url::Url;
use std::collections::HashMap;

/// Virtual milliseconds a healthy fetch costs on [`WebWorld`].
pub(crate) const NOMINAL_FETCH_MS: u64 = 40;

/// A served page plus any delivery defects observed while loading it.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchedPage {
    /// The page content as received (possibly cut off or corrupted).
    pub page: Page,
    /// The HTML stream ended before the server finished sending.
    pub truncated: bool,
    /// The renderer failed to capture a screenshot of the page.
    pub screenshot_missing: bool,
}

impl FetchedPage {
    /// A defect-free fetch of `page`.
    pub fn clean(page: Page) -> Self {
        FetchedPage {
            page,
            truncated: false,
            screenshot_missing: false,
        }
    }
}

/// Outcome of fetching a single URL, as a network stack would report it.
#[derive(Debug, Clone, PartialEq)]
pub enum Fetch {
    /// A page was served.
    Page(FetchedPage),
    /// An HTTP redirect to the given (possibly relative) target.
    Redirect(String),
    /// Nothing is hosted at the URL.
    NotFound,
    /// The connection failed mid-flight (reset, DNS hiccup, 5xx).
    Transient,
    /// The server accepted the connection but never answered.
    TimedOut,
}

/// One fetch outcome with its cost on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchResult {
    /// What came back.
    pub outcome: Fetch,
    /// Virtual milliseconds the fetch took (timeouts cost the most).
    pub cost_ms: u64,
}

/// Anything a [`Browser`](crate::Browser) can fetch URLs from.
///
/// [`WebWorld`] is the reliable implementation; fault-injecting wrappers
/// like [`FlakyWorld`](crate::FlakyWorld) implement the same trait, so the
/// whole visit machinery runs unchanged over an unreliable web.
pub trait World {
    /// Fetches one URL. Implementations must be deterministic given their
    /// construction-time seed and the sequence of calls — no wall clock,
    /// no global RNG.
    fn fetch(&self, url: &Url) -> FetchResult;
}

impl World for WebWorld {
    fn fetch(&self, url: &Url) -> FetchResult {
        let outcome = match self.lookup(url) {
            Some(Entry::Page(p)) => Fetch::Page(FetchedPage::clean(p.clone())),
            Some(Entry::Redirect(t)) => Fetch::Redirect(t.clone()),
            None => Fetch::NotFound,
        };
        FetchResult {
            outcome,
            cost_ms: NOMINAL_FETCH_MS,
        }
    }
}

/// A page hosted in the simulated web.
///
/// `rendered_text` stands in for a screenshot: it is what optical
/// character recognition would read off the loaded page. For ordinary
/// pages it defaults to the HTML's visible text; image-based pages (a
/// documented evasion technique, Section VII-C) can carry text that exists
/// *only* in the rendering and not in the HTML.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// The HTML source served for this URL.
    pub html: String,
    /// Text visible on the rendered page (screenshot proxy). When `None`,
    /// the browser derives it from the HTML body text.
    pub rendered_text: Option<String>,
}

impl Page {
    /// Creates a page whose rendering matches its HTML text.
    pub fn new(html: impl Into<String>) -> Self {
        Page {
            html: html.into(),
            rendered_text: None,
        }
    }

    /// Creates a page with explicit rendered text (image-based pages).
    pub fn with_rendered_text(html: impl Into<String>, rendered: impl Into<String>) -> Self {
        Page {
            html: html.into(),
            rendered_text: Some(rendered.into()),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Entry {
    Page(Page),
    Redirect(String),
}

/// The simulated web: a set of URLs hosting pages or redirects.
///
/// Lookup ignores scheme and query so that `http://x/a`, `https://x/a`
/// and `https://x/a?utm=1` address the same resource, like a typical web
/// server would.
#[derive(Debug, Clone, Default)]
pub struct WebWorld {
    entries: HashMap<String, Entry>,
}

impl WebWorld {
    /// Creates an empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalised lookup key of a URL: `host/path`.
    pub(crate) fn key_of(url: &Url) -> String {
        let host = match url.fqdn() {
            Some(f) => f.to_string(),
            None => url.host().to_string(),
        };
        format!("{host}/{}", url.path())
    }

    /// Parses `url` and returns its key, or `None` for unparsable URLs.
    fn key_str(url: &str) -> Option<String> {
        Url::parse(url).ok().map(|u| Self::key_of(&u))
    }

    /// Hosts a page at `url`.
    ///
    /// # Panics
    ///
    /// Panics when `url` does not parse — world construction is
    /// programmer-controlled, so a bad URL is a bug in the generator.
    pub fn add_page(&mut self, url: &str, page: Page) {
        let key = Self::key_str(url).unwrap_or_else(|| panic!("invalid url {url:?}"));
        self.entries.insert(key, Entry::Page(page));
    }

    /// Hosts a redirect from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics when `from` does not parse.
    pub fn add_redirect(&mut self, from: &str, to: &str) {
        let key = Self::key_str(from).unwrap_or_else(|| panic!("invalid url {from:?}"));
        self.entries.insert(key, Entry::Redirect(to.to_owned()));
    }

    /// Resolves a URL to a page or redirect target.
    pub(crate) fn lookup(&self, url: &Url) -> Option<&Entry> {
        self.entries.get(&Self::key_of(url))
    }

    /// Number of hosted entries (pages + redirects).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is hosted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch_outcome(w: &WebWorld, url: &str) -> Fetch {
        w.fetch(&Url::parse(url).unwrap()).outcome
    }

    #[test]
    fn lookup_ignores_scheme_and_query() {
        let mut w = WebWorld::new();
        w.add_page("http://example.com/a", Page::new("<body>x</body>"));
        for probe in [
            "https://example.com/a",
            "http://example.com/a?q=1",
            "example.com/a",
        ] {
            assert!(
                matches!(fetch_outcome(&w, probe), Fetch::Page(_)),
                "probe {probe}"
            );
        }
        assert_eq!(fetch_outcome(&w, "http://example.com/b"), Fetch::NotFound);
    }

    #[test]
    fn redirect_entries() {
        let mut w = WebWorld::new();
        w.add_redirect("http://a.com/", "https://b.com/");
        assert_eq!(
            fetch_outcome(&w, "http://a.com/"),
            Fetch::Redirect("https://b.com/".into())
        );
    }

    #[test]
    fn ip_hosts_supported() {
        let mut w = WebWorld::new();
        w.add_page("http://10.1.2.3/login", Page::new("<body>login</body>"));
        assert!(matches!(
            fetch_outcome(&w, "http://10.1.2.3/login"),
            Fetch::Page(_)
        ));
    }

    #[test]
    fn fetches_are_clean_and_cost_nominal_latency() {
        let mut w = WebWorld::new();
        w.add_page("http://example.com/", Page::new("<body>x</body>"));
        let r = w.fetch(&Url::parse("http://example.com/").unwrap());
        assert_eq!(r.cost_ms, NOMINAL_FETCH_MS);
        match r.outcome {
            Fetch::Page(fp) => assert!(!fp.truncated && !fp.screenshot_missing),
            o => panic!("unexpected outcome {o:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid url")]
    fn bad_url_panics() {
        WebWorld::new().add_page("http://", Page::new(""));
    }

    #[test]
    fn len_and_overwrite() {
        let mut w = WebWorld::new();
        assert!(w.is_empty());
        w.add_page("http://x.com/", Page::new("a"));
        w.add_page("https://x.com/", Page::new("b"));
        assert_eq!(w.len(), 1, "same key overwrites");
    }

    #[test]
    fn rendered_text_variants() {
        let p = Page::new("<body>hi</body>");
        assert_eq!(p.rendered_text, None);
        let q = Page::with_rendered_text("<body><img src='x'></body>", "Bank login");
        assert_eq!(q.rendered_text.as_deref(), Some("Bank login"));
    }
}
