//! A local domain-popularity ranking — the reproduction's substitute for
//! the paper's "fixed, previously downloaded list of the Alexa top million
//! domain names" (Section IV-B, URL feature #9).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Rank assigned to domains absent from the list (the paper's default
/// value of 1,000,001).
pub const UNRANKED: u32 = 1_000_001;

/// A popularity ranking over registered domain names.
///
/// # Examples
///
/// ```
/// use kyp_web::{DomainRanker, UNRANKED};
///
/// let ranker = DomainRanker::from_ranked(["bigbank.com", "news.fr"]);
/// assert_eq!(ranker.rank("bigbank.com"), 1);
/// assert_eq!(ranker.rank("news.fr"), 2);
/// assert_eq!(ranker.rank("evil-phish.tk"), UNRANKED);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomainRanker {
    ranks: HashMap<String, u32>,
}

impl DomainRanker {
    /// Creates an empty ranking (every domain unranked).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a ranking from RDNs ordered most-popular-first; ranks start
    /// at 1. Duplicate RDNs keep their first (best) rank.
    pub fn from_ranked<I, S>(rdns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut ranks = HashMap::new();
        for (i, rdn) in rdns.into_iter().enumerate() {
            ranks.entry(rdn.into()).or_insert(i as u32 + 1);
        }
        DomainRanker { ranks }
    }

    /// Inserts or updates one domain's rank.
    pub fn insert(&mut self, rdn: impl Into<String>, rank: u32) {
        self.ranks.insert(rdn.into(), rank);
    }

    /// The rank of an RDN, or [`UNRANKED`] when absent.
    pub fn rank(&self, rdn: &str) -> u32 {
        self.ranks.get(rdn).copied().unwrap_or(UNRANKED)
    }

    /// `true` when the RDN appears in the list (the paper reports 43.5% of
    /// its legitimate test URLs are in the Alexa top 1M).
    pub fn contains(&self, rdn: &str) -> bool {
        self.ranks.contains_key(rdn)
    }

    /// The `n` best-ranked RDNs, ordered by `(rank, name)`.
    ///
    /// The sort key makes the result independent of hash-map iteration
    /// order, so it is safe to derive features (the cascade's typosquat
    /// distance) from it.
    pub fn top_rdns(&self, n: usize) -> Vec<(u32, String)> {
        let mut pairs: Vec<(u32, String)> = self
            .ranks
            // kyp-lint: allow(D01) — drained pairs are fully sorted by (rank, name) below, so the result is iteration-order independent
            .iter()
            .map(|(rdn, rank)| (*rank, rdn.clone()))
            .collect();
        pairs.sort();
        pairs.truncate(n);
        pairs
    }

    /// Number of ranked domains.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// `true` when no domain is ranked.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_order() {
        let r = DomainRanker::from_ranked(["a.com", "b.com", "c.com"]);
        assert_eq!(r.rank("a.com"), 1);
        assert_eq!(r.rank("c.com"), 3);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn unranked_default() {
        let r = DomainRanker::new();
        assert_eq!(r.rank("whatever.net"), UNRANKED);
        assert!(!r.contains("whatever.net"));
        assert!(r.is_empty());
    }

    #[test]
    fn duplicates_keep_best_rank() {
        let r = DomainRanker::from_ranked(["a.com", "a.com", "b.com"]);
        assert_eq!(r.rank("a.com"), 1);
        assert_eq!(r.rank("b.com"), 3);
    }

    #[test]
    fn top_rdns_sorted_and_capped() {
        let r = DomainRanker::from_ranked(["c.com", "a.com", "b.com"]);
        assert_eq!(
            r.top_rdns(2),
            vec![(1, "c.com".to_owned()), (2, "a.com".to_owned())]
        );
        assert_eq!(r.top_rdns(10).len(), 3);
        // Ties break on the name, not on hash order.
        let mut tied = DomainRanker::new();
        tied.insert("z.com", 7);
        tied.insert("m.com", 7);
        assert_eq!(
            tied.top_rdns(2),
            vec![(7, "m.com".to_owned()), (7, "z.com".to_owned())]
        );
    }

    #[test]
    fn insert_overrides() {
        let mut r = DomainRanker::new();
        r.insert("x.com", 500);
        assert_eq!(r.rank("x.com"), 500);
        r.insert("x.com", 10);
        assert_eq!(r.rank("x.com"), 10);
    }
}
