use kyp_url::Url;
use serde::{Deserialize, Serialize};

/// Which of a visit's data sources were actually captured intact.
///
/// A fault-free visit captures everything ([`SourceAvailability::FULL`]).
/// Degraded visits — truncated HTML streams, failed screenshot capture —
/// clear the corresponding flags so downstream feature extraction can
/// substitute neutral values instead of trusting half-delivered data (see
/// `DataSources::from_partial` in `kyp-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceAvailability {
    /// The full HTML document arrived (false when the stream was cut off).
    pub html: bool,
    /// The logged/HREF link lists are complete (false when truncation may
    /// have cut references off the end of the document).
    pub links: bool,
    /// A screenshot (rendered text) was captured.
    pub screenshot: bool,
}

impl SourceAvailability {
    /// Every source captured intact.
    pub const FULL: SourceAvailability = SourceAvailability {
        html: true,
        links: true,
        screenshot: true,
    };

    /// `true` when any source is missing or incomplete.
    pub fn is_degraded(&self) -> bool {
        *self != Self::FULL
    }
}

impl Default for SourceAvailability {
    fn default() -> Self {
        Self::FULL
    }
}

/// The complete data-source bundle a browser collects while loading a
/// webpage — Section II-C of the paper, and the *only* input of the
/// feature extractor and target identifier.
///
/// This is a passive data structure (all fields public) mirroring the json
/// files the paper's Selenium scraper writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisitedPage {
    /// The URL the user was given (distributed by email, message, ...).
    pub starting_url: Url,
    /// The final URL in the address bar once the page loaded.
    pub landing_url: Url,
    /// Every URL crossed from starting to landing URL (inclusive).
    pub redirection_chain: Vec<Url>,
    /// URLs the browser requested while loading embedded content
    /// (scripts, stylesheets, images, iframes).
    pub logged_links: Vec<Url>,
    /// Outgoing `<a href>` targets, resolved against the landing URL.
    pub href_links: Vec<Url>,
    /// The text rendered between `<body>` tags.
    pub text: String,
    /// The `<title>` content.
    pub title: String,
    /// The copyright notice found in the text, if any.
    pub copyright: Option<String>,
    /// Text visible on the rendered page — the screenshot stand-in that
    /// the simulated OCR reads (Section V-A, *OCR prominent terms*).
    pub screenshot_text: String,
    /// Count of user-data input fields (feature set f5).
    pub input_count: usize,
    /// Count of images (feature set f5).
    pub image_count: usize,
    /// Count of iframes (feature set f5).
    pub iframe_count: usize,
}

impl VisitedPage {
    /// The RDNs the page owner is assumed to control: every RDN appearing
    /// in the redirection chain (Section III-A, *Control*).
    ///
    /// IP-hosted steps contribute their host string.
    pub fn controlled_rdns(&self) -> Vec<String> {
        let mut rdns: Vec<String> = Vec::new();
        for url in &self.redirection_chain {
            let rdn = url.rdn().unwrap_or_else(|| url.host().to_string());
            if !rdns.contains(&rdn) {
                rdns.push(rdn);
            }
        }
        rdns
    }

    /// Splits `links` into (internal, external) against the controlled
    /// RDN set (Section III-A).
    ///
    /// A link is internal when it shares an RDN with any redirection-chain
    /// step ([`Url::same_rdn`]) — the same predicate as matching against
    /// [`VisitedPage::controlled_rdns`], but computed without building a
    /// single RDN string (deduplicating the chain is irrelevant under
    /// `any`).
    pub fn split_links<'a>(&self, links: &'a [Url]) -> (Vec<&'a Url>, Vec<&'a Url>) {
        links
            .iter()
            .partition(|u| self.redirection_chain.iter().any(|c| c.same_rdn(u)))
    }

    /// Internal and external logged links.
    pub fn logged_split(&self) -> (Vec<&Url>, Vec<&Url>) {
        self.split_links(&self.logged_links)
    }

    /// Internal and external HREF links.
    pub fn href_split(&self) -> (Vec<&Url>, Vec<&Url>) {
        self.split_links(&self.href_links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    pub(crate) fn sample() -> VisitedPage {
        VisitedPage {
            starting_url: url("http://short.ly/x"),
            landing_url: url("https://landing.example.com/page"),
            redirection_chain: vec![
                url("http://short.ly/x"),
                url("https://landing.example.com/page"),
            ],
            logged_links: vec![
                url("https://landing.example.com/style.css"),
                url("https://cdn.thirdparty.net/lib.js"),
            ],
            href_links: vec![
                url("https://landing.example.com/about"),
                url("https://other.org/x"),
                url("http://short.ly/y"),
            ],
            text: "welcome to the page".into(),
            title: "Example".into(),
            copyright: None,
            screenshot_text: "welcome to the page".into(),
            input_count: 1,
            image_count: 2,
            iframe_count: 0,
        }
    }

    #[test]
    fn controlled_rdns_from_chain() {
        let v = sample();
        assert_eq!(v.controlled_rdns(), ["short.ly", "example.com"]);
    }

    #[test]
    fn logged_links_split() {
        let v = sample();
        let (int, ext) = v.logged_split();
        assert_eq!(int.len(), 1);
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].rdn().as_deref(), Some("thirdparty.net"));
    }

    #[test]
    fn href_links_split_includes_redirector() {
        let v = sample();
        let (int, ext) = v.href_split();
        // landing.example.com/about and short.ly/y are both internal
        // because both RDNs appear in the redirection chain.
        assert_eq!(int.len(), 2);
        assert_eq!(ext.len(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let v = sample();
        let json = serde_json::to_string(&v).unwrap();
        let back: VisitedPage = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn ip_chain_controlled() {
        let mut v = sample();
        v.redirection_chain = vec![url("http://10.0.0.1/a")];
        assert_eq!(v.controlled_rdns(), ["10.0.0.1"]);
    }
}
