//! Deterministic fault injection for the simulated web.
//!
//! [`FlakyWorld`] wraps a [`WebWorld`] and disturbs a seeded fraction of
//! fetches with the failure modes a live scraper meets: connection resets,
//! server timeouts, HTML streams cut off mid-transfer, corrupted markup,
//! redirect hops that stop answering, and renderer screenshot failures.
//!
//! Every decision derives from a hash of `(seed, url, attempt)` — there is
//! no wall clock and no global RNG — so a given seed reproduces the exact
//! same fault schedule fetch-for-fetch. A URL that fails transiently on
//! attempt *n* may succeed on attempt *n + 1*, which is what gives the
//! retrying scraper in [`crate::ResilientBrowser`] something to win
//! against.

use crate::world::{Fetch, FetchResult, FetchedPage, WebWorld, World};
use kyp_url::Url;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The connection drops before a response arrives.
    Transient,
    /// The server never answers; the fetch burns its timeout budget.
    Timeout,
    /// The HTML stream is cut off partway through the document.
    TruncateHtml,
    /// A window of the HTML is overwritten with garbage bytes.
    GarbleHtml,
    /// A redirect hop stops answering (only fires on redirect entries).
    DropRedirect,
    /// The page loads but the renderer produces no screenshot.
    DropScreenshot,
}

impl FaultKind {
    /// Every kind, in the order used for weighted selection.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Transient,
        FaultKind::Timeout,
        FaultKind::TruncateHtml,
        FaultKind::GarbleHtml,
        FaultKind::DropRedirect,
        FaultKind::DropScreenshot,
    ];
}

/// Seeded description of which faults to inject and how often.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the per-fetch fault decisions.
    pub seed: u64,
    /// Probability in `[0, 1]` that any single fetch is disturbed.
    pub fault_rate: f64,
    /// Failure modes eligible for injection (uniformly chosen).
    pub kinds: Vec<FaultKind>,
    /// Virtual cost of a fetch that answers (cleanly or not).
    pub latency_ms: u64,
    /// Virtual cost charged by a timed-out fetch.
    pub timeout_ms: u64,
}

impl FaultPlan {
    /// A plan injecting every [`FaultKind`] at `fault_rate`.
    pub fn new(seed: u64, fault_rate: f64) -> Self {
        FaultPlan {
            seed,
            fault_rate,
            kinds: FaultKind::ALL.to_vec(),
            latency_ms: 40,
            timeout_ms: 5_000,
        }
    }

    /// A plan restricted to the given failure modes.
    ///
    /// # Panics
    ///
    /// Panics when `kinds` is empty — a plan that faults into nothing is a
    /// configuration bug.
    pub fn only(seed: u64, fault_rate: f64, kinds: &[FaultKind]) -> Self {
        assert!(!kinds.is_empty(), "fault plan needs at least one kind");
        FaultPlan {
            kinds: kinds.to_vec(),
            ..FaultPlan::new(seed, fault_rate)
        }
    }

    /// The fault this plan injects on attempt `attempt` of `key`, if any.
    ///
    /// A pure function of `(seed, key, attempt)` — no clock, no interior
    /// state — so any layer that names its trials can reuse one plan as a
    /// deterministic failure schedule: [`FlakyWorld`] keys by URL and
    /// fetch attempt, `kyp-cluster` keys by node id and incarnation.
    pub fn decide(&self, key: &str, attempt: u32) -> Option<FaultKind> {
        let h = mix(self.seed ^ stable_hash(key.as_bytes()), u64::from(attempt));
        if unit_f64(h) >= self.fault_rate {
            return None;
        }
        let idx = (mix(h, 0x9E37_79B9_7F4A_7C15) % self.kinds.len() as u64) as usize;
        Some(self.kinds[idx])
    }
}

/// A [`WebWorld`] wrapper that injects the faults of a [`FaultPlan`].
///
/// Interior state tracks how many times each URL has been fetched, so the
/// fault decision for a URL's *n*-th attempt is a pure function of
/// `(seed, url, n)` — deterministic across runs, yet different across
/// retries.
///
/// # Examples
///
/// ```
/// use kyp_web::{Browser, FaultKind, FaultPlan, FlakyWorld, Page, WebWorld};
///
/// let mut world = WebWorld::new();
/// world.add_page("http://example.com/", Page::new("<body>ok</body>"));
/// // Fault every fetch with a connection reset:
/// let flaky = FlakyWorld::new(&world, FaultPlan::only(7, 1.0, &[FaultKind::Transient]));
/// assert!(Browser::new(&flaky).visit("http://example.com/").is_err());
/// ```
#[derive(Debug)]
pub struct FlakyWorld<'w> {
    inner: &'w WebWorld,
    plan: FaultPlan,
    // Ordered map (kyp-lint D01): `total_fetches` sums the values.
    attempts: RefCell<BTreeMap<String, u32>>,
}

impl<'w> FlakyWorld<'w> {
    /// Wraps `inner`, disturbing fetches per `plan`.
    pub fn new(inner: &'w WebWorld, plan: FaultPlan) -> Self {
        FlakyWorld {
            inner,
            plan,
            attempts: RefCell::new(BTreeMap::new()),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// How many times `url` has been fetched so far.
    pub fn attempts_for(&self, url: &Url) -> u32 {
        self.attempts
            .borrow()
            .get(&WebWorld::key_of(url))
            .copied()
            .unwrap_or(0)
    }

    /// Total fetches served (across all URLs).
    pub fn total_fetches(&self) -> u64 {
        self.attempts.borrow().values().map(|&n| u64::from(n)).sum()
    }

    /// The fault injected on attempt `attempt` of `url`, if any.
    fn decide(&self, key: &str, attempt: u32) -> Option<FaultKind> {
        self.plan.decide(key, attempt)
    }
}

impl World for FlakyWorld<'_> {
    fn fetch(&self, url: &Url) -> FetchResult {
        let key = WebWorld::key_of(url);
        let attempt = {
            let mut map = self.attempts.borrow_mut();
            let n = map.entry(key.clone()).or_insert(0);
            *n += 1;
            *n
        };
        let clean = |outcome| FetchResult {
            outcome,
            cost_ms: self.plan.latency_ms,
        };
        // The underlying truth, before any disturbance.
        let truth = self.inner.fetch(url).outcome;
        let Some(fault) = self.decide(&key, attempt) else {
            return clean(truth);
        };
        let h = mix(
            self.plan.seed ^ stable_hash(key.as_bytes()),
            u64::from(attempt) | 1 << 32,
        );
        match (fault, truth) {
            (FaultKind::Transient, _) => clean(Fetch::Transient),
            (FaultKind::Timeout, _) => FetchResult {
                outcome: Fetch::TimedOut,
                cost_ms: self.plan.timeout_ms,
            },
            (FaultKind::TruncateHtml, Fetch::Page(fp)) => {
                let cut = truncate_fraction(&fp.page.html, 0.2 + 0.6 * unit_f64(h));
                clean(Fetch::Page(FetchedPage {
                    page: crate::Page {
                        html: cut,
                        rendered_text: fp.page.rendered_text,
                    },
                    truncated: true,
                    screenshot_missing: fp.screenshot_missing,
                }))
            }
            (FaultKind::GarbleHtml, Fetch::Page(fp)) => {
                let garbled = garble(&fp.page.html, h);
                clean(Fetch::Page(FetchedPage {
                    page: crate::Page {
                        html: garbled,
                        rendered_text: fp.page.rendered_text,
                    },
                    ..fp
                }))
            }
            (FaultKind::DropRedirect, Fetch::Redirect(_)) => clean(Fetch::Transient),
            (FaultKind::DropScreenshot, Fetch::Page(fp)) => clean(Fetch::Page(FetchedPage {
                screenshot_missing: true,
                ..fp
            })),
            // A content fault on a non-page entry degenerates to the truth:
            // there is no HTML to truncate on a redirect, and nothing at
            // all on a missing URL.
            (_, truth) => clean(truth),
        }
    }
}

/// Cuts `html` to roughly `fraction` of its bytes, on a char boundary.
fn truncate_fraction(html: &str, fraction: f64) -> String {
    let target = (html.len() as f64 * fraction) as usize;
    let mut cut = target.min(html.len());
    while cut > 0 && !html.is_char_boundary(cut) {
        cut -= 1;
    }
    html[..cut].to_owned()
}

/// Overwrites a hash-chosen window of `html` with junk bytes — the kind of
/// corruption a flaky proxy or interrupted gzip stream produces.
fn garble(html: &str, h: u64) -> String {
    if html.is_empty() {
        return String::new();
    }
    let start_target = (mix(h, 1) % html.len() as u64) as usize;
    let len_target = 8 + (mix(h, 2) % 56) as usize;
    let mut start = start_target.min(html.len());
    while start > 0 && !html.is_char_boundary(start) {
        start -= 1;
    }
    let mut end = (start + len_target).min(html.len());
    while end < html.len() && !html.is_char_boundary(end) {
        end += 1;
    }
    let junk: String = (0..end - start)
        .map(|i| {
            // Printable junk with markup metacharacters mixed in, so the
            // parser's tolerance is genuinely exercised.
            const JUNK: &[u8] = b"<>&\"'=x%#;";
            JUNK[(mix(h, 3 + i as u64) % JUNK.len() as u64) as usize] as char
        })
        .collect();
    format!("{}{}{}", &html[..start], junk, &html[end..])
}

/// FNV-1a over bytes: a stable, dependency-free, platform-independent
/// hash. This is the name-to-u64 primitive every deterministic layer
/// shares — fault schedules here, hash-ring placement in `kyp-cluster` —
/// so placements and fault decisions never vary across builds or runs.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer over `a ⊕ golden·b` — the per-decision hash,
/// shared with the retry policy's deterministic jitter and the cluster
/// layer's seeded draws (uptime spans, virtual-node tokens).
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to `[0, 1)` with 53 bits of precision.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Page;

    fn base_world() -> WebWorld {
        let mut w = WebWorld::new();
        w.add_page(
            "http://site.example.com/a",
            Page::new("<title>T</title><body><p>hello world</p><a href='/x'>x</a></body>"),
        );
        w.add_redirect("http://hop.example.com/r", "http://site.example.com/a");
        w
    }

    fn fetch_outcome(world: &FlakyWorld<'_>, url: &str) -> Fetch {
        world.fetch(&Url::parse(url).unwrap()).outcome
    }

    #[test]
    fn zero_rate_never_faults() {
        let w = base_world();
        let flaky = FlakyWorld::new(&w, FaultPlan::new(1, 0.0));
        for _ in 0..50 {
            match fetch_outcome(&flaky, "http://site.example.com/a") {
                Fetch::Page(fp) => {
                    assert!(!fp.truncated && !fp.screenshot_missing);
                }
                o => panic!("unexpected outcome {o:?}"),
            }
        }
    }

    #[test]
    fn full_rate_always_faults() {
        let w = base_world();
        let flaky = FlakyWorld::new(
            &w,
            FaultPlan::only(2, 1.0, &[FaultKind::Transient, FaultKind::Timeout]),
        );
        for _ in 0..20 {
            match fetch_outcome(&flaky, "http://site.example.com/a") {
                Fetch::Transient | Fetch::TimedOut => {}
                o => panic!("expected a fault, got {o:?}"),
            }
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let w = base_world();
        let run = || {
            let flaky = FlakyWorld::new(&w, FaultPlan::new(42, 0.5));
            (0..30)
                .map(|_| format!("{:?}", fetch_outcome(&flaky, "http://site.example.com/a")))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let w = base_world();
        let run = |seed| {
            let flaky = FlakyWorld::new(&w, FaultPlan::new(seed, 0.5));
            (0..30)
                .map(|_| format!("{:?}", fetch_outcome(&flaky, "http://site.example.com/a")))
                .collect::<Vec<_>>()
        };
        assert_ne!(run(1), run(2), "distinct seeds should disagree somewhere");
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let mut w = WebWorld::new();
        w.add_page(
            "http://u.example.com/",
            Page::new("日本語テキスト".repeat(40)),
        );
        let flaky = FlakyWorld::new(&w, FaultPlan::only(3, 1.0, &[FaultKind::TruncateHtml]));
        for _ in 0..10 {
            match fetch_outcome(&flaky, "http://u.example.com/") {
                Fetch::Page(fp) => {
                    assert!(fp.truncated);
                    assert!(fp.page.html.len() < "日本語テキスト".len() * 40);
                }
                o => panic!("unexpected {o:?}"),
            }
        }
    }

    #[test]
    fn garble_preserves_length_and_utf8() {
        let html = "<body>αβγ test δεζ ".repeat(20);
        for i in 0..50 {
            let g = garble(&html, mix(99, i));
            assert!(!g.is_empty());
            // Valid UTF-8 by construction (String), and same byte length
            // modulo boundary adjustment.
            assert!(g.len() >= html.len() - 4 && g.len() <= html.len() + 4);
        }
    }

    #[test]
    fn timeout_charges_timeout_cost() {
        let w = base_world();
        let flaky = FlakyWorld::new(&w, FaultPlan::only(4, 1.0, &[FaultKind::Timeout]));
        let r = flaky.fetch(&Url::parse("http://site.example.com/a").unwrap());
        assert_eq!(r.outcome, Fetch::TimedOut);
        assert_eq!(r.cost_ms, flaky.plan().timeout_ms);
    }

    #[test]
    fn drop_redirect_only_hits_redirects() {
        let w = base_world();
        let flaky = FlakyWorld::new(&w, FaultPlan::only(5, 1.0, &[FaultKind::DropRedirect]));
        assert_eq!(
            fetch_outcome(&flaky, "http://hop.example.com/r"),
            Fetch::Transient
        );
        // On a page entry the kind degenerates to the clean fetch.
        assert!(matches!(
            fetch_outcome(&flaky, "http://site.example.com/a"),
            Fetch::Page(_)
        ));
    }

    #[test]
    fn attempt_counters_advance() {
        let w = base_world();
        let flaky = FlakyWorld::new(&w, FaultPlan::new(6, 0.3));
        let url = Url::parse("http://site.example.com/a").unwrap();
        assert_eq!(flaky.attempts_for(&url), 0);
        flaky.fetch(&url);
        flaky.fetch(&url);
        assert_eq!(flaky.attempts_for(&url), 2);
        assert_eq!(flaky.total_fetches(), 2);
    }

    #[test]
    fn fault_rate_roughly_honoured() {
        let mut w = WebWorld::new();
        for i in 0..400 {
            w.add_page(
                &format!("http://h{i}.example.com/"),
                Page::new("<body>x</body>"),
            );
        }
        let flaky = FlakyWorld::new(&w, FaultPlan::new(11, 0.3));
        let mut faulted = 0;
        for i in 0..400 {
            match fetch_outcome(&flaky, &format!("http://h{i}.example.com/")) {
                Fetch::Page(fp) if !fp.truncated && !fp.screenshot_missing => {}
                _ => faulted += 1,
            }
        }
        let rate = f64::from(faulted) / 400.0;
        assert!((0.18..0.42).contains(&rate), "observed fault rate {rate}");
    }
}
