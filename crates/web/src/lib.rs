//! A simulated web and browser/scraper for the *Know Your Phish*
//! reproduction.
//!
//! The paper's experimental setup scrapes live webpages with a monitored
//! Firefox (Section VI-A), recording the data sources of Section II-C:
//! starting URL, landing URL, redirection chain, logged links, HTML and a
//! screenshot. Offline, we substitute a deterministic **simulated web**:
//!
//! - [`WebWorld`] hosts pages and redirects addressed by URL,
//! - [`Browser`] "visits" a URL: follows redirects, parses the HTML,
//!   resolves embedded resources (the *logged links*) and outgoing HREF
//!   links, and captures the rendered text in lieu of a screenshot,
//! - [`VisitedPage`] is the resulting data-source bundle — the *only*
//!   interface the detection pipeline sees, exactly as in the paper,
//! - [`ocr::simulate_ocr`] extracts noisy terms from the "screenshot",
//! - [`DomainRanker`] substitutes the paper's local copy of the Alexa
//!   top-1M ranking.
//!
//! # Examples
//!
//! ```
//! use kyp_web::{Browser, Page, WebWorld};
//!
//! let mut world = WebWorld::new();
//! world.add_page(
//!     "https://example.com/",
//!     Page::new("<title>Example</title><body><a href=\"/about\">About</a></body>"),
//! );
//! let browser = Browser::new(&world);
//! let visit = browser.visit("https://example.com/")?;
//! assert_eq!(visit.title, "Example");
//! assert_eq!(visit.href_links.len(), 1);
//! # Ok::<(), kyp_web::VisitError>(())
//! ```

mod browser;
pub mod ocr;
mod ranking;
mod visit;
mod world;

pub use browser::{Browser, VisitError};
pub use ranking::{DomainRanker, UNRANKED};
pub use visit::VisitedPage;
pub use world::{Page, WebWorld};
