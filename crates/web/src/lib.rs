#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! A simulated web and browser/scraper for the *Know Your Phish*
//! reproduction.
//!
//! The paper's experimental setup scrapes live webpages with a monitored
//! Firefox (Section VI-A), recording the data sources of Section II-C:
//! starting URL, landing URL, redirection chain, logged links, HTML and a
//! screenshot. Offline, we substitute a deterministic **simulated web**:
//!
//! - [`WebWorld`] hosts pages and redirects addressed by URL,
//! - [`Browser`] "visits" a URL: follows redirects, parses the HTML,
//!   resolves embedded resources (the *logged links*) and outgoing HREF
//!   links, and captures the rendered text in lieu of a screenshot,
//! - [`VisitedPage`] is the resulting data-source bundle — the *only*
//!   interface the detection pipeline sees, exactly as in the paper,
//! - [`ocr::simulate_ocr`] extracts noisy terms from the "screenshot",
//! - [`DomainRanker`] substitutes the paper's local copy of the Alexa
//!   top-1M ranking.
//!
//! # Fault model and resilience
//!
//! Live scraping fails constantly: connections reset, servers stall, HTML
//! arrives cut off, redirect hops die, renderers miss screenshots. The
//! crate models all of it deterministically:
//!
//! - [`FlakyWorld`] wraps a [`WebWorld`] behind the same [`World`] trait
//!   and injects a seeded [`FaultPlan`] of those failures — every fault
//!   decision is a hash of `(seed, url, attempt)`, never a wall clock;
//! - [`ResilientBrowser`] retries with a [`RetryPolicy`] (bounded
//!   attempts, capped exponential backoff with deterministic jitter, a
//!   per-visit deadline budget) and fails fast on hosts whose
//!   [`CircuitBreaker`] circuit is open;
//! - all waiting happens on a [`VirtualClock`] — runs never sleep and are
//!   bit-reproducible for a given seed;
//! - partially delivered pages surface as successes with
//!   [`SourceAvailability`] flags cleared, so the pipeline can extract
//!   features from what *did* arrive (graceful degradation) instead of
//!   dropping the page.
//!
//! # Examples
//!
//! ```
//! use kyp_web::{Browser, Page, WebWorld};
//!
//! let mut world = WebWorld::new();
//! world.add_page(
//!     "https://example.com/",
//!     Page::new("<title>Example</title><body><a href=\"/about\">About</a></body>"),
//! );
//! let browser = Browser::new(&world);
//! let visit = browser.visit("https://example.com/")?;
//! assert_eq!(visit.title, "Example");
//! assert_eq!(visit.href_links.len(), 1);
//! # Ok::<(), kyp_web::VisitError>(())
//! ```

mod browser;
mod clock;
mod fault;
pub mod ocr;
mod ranking;
mod scraper;
mod visit;
mod world;

pub use browser::{Browser, VisitError, VisitFailure, VisitOutcome};
pub use clock::VirtualClock;
pub use fault::{mix, stable_hash, FaultKind, FaultPlan, FlakyWorld};
pub use ranking::{DomainRanker, UNRANKED};
pub use scraper::{
    BreakerState, CircuitBreaker, FailureCause, ResilientBrowser, RetryPolicy, ScrapeFailure,
    ScrapedPage,
};
pub use visit::{SourceAvailability, VisitedPage};
pub use world::{Fetch, FetchResult, FetchedPage, Page, WebWorld, World};
