use crate::visit::{SourceAvailability, VisitedPage};
use crate::world::{Fetch, WebWorld, World};
use kyp_html::{Document, ParseArena};
use kyp_url::{ParseUrlError, Url};
use std::error::Error;
use std::fmt;

/// Maximum redirects the browser follows before giving up.
const MAX_REDIRECTS: usize = 10;

/// Error returned by [`Browser::visit`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VisitError {
    /// The starting URL (or a redirect target) did not parse.
    BadUrl(ParseUrlError),
    /// No resource is hosted at the URL.
    NotFound(String),
    /// The redirect chain exceeded the browser's limit.
    TooManyRedirects,
    /// A fetch failed transiently (reset connection, flaky DNS, 5xx);
    /// retrying may succeed.
    Transient(String),
    /// A fetch hit its timeout without an answer; retrying may succeed.
    Timeout(String),
    /// The landing page's HTML stream was cut off mid-transfer. The
    /// lenient path ([`Browser::try_visit`]) accepts such pages as
    /// degraded; the strict [`Browser::visit`] reports this error.
    Truncated(String),
}

impl VisitError {
    /// `true` for failures worth retrying (transient by nature).
    pub fn is_retryable(&self) -> bool {
        matches!(self, VisitError::Transient(_) | VisitError::Timeout(_))
    }
}

impl fmt::Display for VisitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisitError::BadUrl(e) => write!(f, "invalid url: {e}"),
            VisitError::NotFound(u) => write!(f, "no resource hosted at {u}"),
            VisitError::TooManyRedirects => write!(f, "redirect chain too long"),
            VisitError::Transient(u) => write!(f, "transient fetch failure at {u}"),
            VisitError::Timeout(u) => write!(f, "fetch timed out at {u}"),
            VisitError::Truncated(u) => write!(f, "html stream truncated at {u}"),
        }
    }
}

impl Error for VisitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VisitError::BadUrl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseUrlError> for VisitError {
    fn from(e: ParseUrlError) -> Self {
        VisitError::BadUrl(e)
    }
}

/// A successful (possibly degraded) lenient visit: the collected data
/// sources, what was captured intact, and the virtual time spent.
#[derive(Debug, Clone, PartialEq)]
pub struct VisitOutcome {
    /// The collected data-source bundle.
    pub visit: VisitedPage,
    /// Which sources were captured intact.
    pub availability: SourceAvailability,
    /// Total fetch cost on the virtual clock, in milliseconds.
    pub cost_ms: u64,
}

/// A failed visit together with the virtual time it burned — retry logic
/// must charge failed attempts against the deadline budget too.
#[derive(Debug, Clone, PartialEq)]
pub struct VisitFailure {
    /// What went wrong.
    pub error: VisitError,
    /// Virtual milliseconds spent before failing.
    pub cost_ms: u64,
}

/// A scripted browser over a [`World`] — the reproduction's analogue of
/// the paper's monitored Selenium/Firefox scraper.
///
/// Generic over the world implementation: [`WebWorld`] (the default) is
/// perfectly reliable, [`FlakyWorld`](crate::FlakyWorld) injects faults.
///
/// # Examples
///
/// See the [crate docs](crate).
#[derive(Debug)]
pub struct Browser<'w, W: World = WebWorld> {
    world: &'w W,
}

// Manual impls: `#[derive]` would needlessly require `W: Clone`.
impl<W: World> Clone for Browser<'_, W> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<W: World> Copy for Browser<'_, W> {}

impl<'w, W: World> Browser<'w, W> {
    /// Creates a browser over a world.
    pub fn new(world: &'w W) -> Self {
        Browser { world }
    }

    /// Visits `starting_url`: follows redirects, loads the landing page,
    /// and collects every Section II-C data source.
    ///
    /// This is the *strict* entry point: any delivery defect is an error.
    /// Use [`Browser::try_visit`] to accept degraded pages.
    ///
    /// # Errors
    ///
    /// - [`VisitError::BadUrl`] when a URL does not parse,
    /// - [`VisitError::NotFound`] when nothing is hosted at the landing URL,
    /// - [`VisitError::TooManyRedirects`] after 10 redirects,
    /// - [`VisitError::Transient`] / [`VisitError::Timeout`] when a fetch
    ///   fails (only on fault-injecting worlds),
    /// - [`VisitError::Truncated`] when the landing HTML was cut off.
    pub fn visit(&self, starting_url: &str) -> Result<VisitedPage, VisitError> {
        let outcome = self.try_visit(starting_url).map_err(|f| f.error)?;
        if !outcome.availability.html {
            return Err(VisitError::Truncated(outcome.visit.landing_url.to_string()));
        }
        Ok(outcome.visit)
    }

    /// Lenient visit: accepts partially delivered pages, reporting what
    /// was captured via [`SourceAvailability`].
    ///
    /// A truncated HTML stream yields a degraded [`VisitOutcome`] (parsed
    /// from the partial document, `html`/`links` flags cleared) instead of
    /// an error; a missing screenshot clears the `screenshot` flag and
    /// leaves `screenshot_text` empty. Hard failures — unreachable or
    /// unparsable URLs, failed fetches — are still errors, with the
    /// virtual time spent attached.
    ///
    /// # Errors
    ///
    /// See [`Browser::visit`]; `Truncated` is never returned here.
    pub fn try_visit(&self, starting_url: &str) -> Result<VisitOutcome, VisitFailure> {
        self.try_visit_in(starting_url, &mut ParseArena::new())
    }

    /// Lenient visit reusing `arena`'s HTML-parse buffers. Identical
    /// output to [`Browser::try_visit`]; meant for batch scrape loops,
    /// where one arena serves thousands of visits without reallocating.
    ///
    /// # Errors
    ///
    /// See [`Browser::try_visit`].
    pub fn try_visit_in(
        &self,
        starting_url: &str,
        arena: &mut ParseArena,
    ) -> Result<VisitOutcome, VisitFailure> {
        let mut cost_ms = 0u64;
        let fail = |error, cost_ms| Err(VisitFailure { error, cost_ms });
        let start = match Url::parse(starting_url) {
            Ok(u) => u,
            Err(e) => return fail(VisitError::BadUrl(e), 0),
        };
        let mut chain = vec![start.clone()];
        let mut current = start.clone();
        for _ in 0..=MAX_REDIRECTS {
            let result = self.world.fetch(&current);
            cost_ms += result.cost_ms;
            let fetched = match result.outcome {
                Fetch::Redirect(target) => {
                    let Some(next) = resolve_href(&current, &target) else {
                        return fail(VisitError::NotFound(target), cost_ms);
                    };
                    chain.push(next.clone());
                    current = next;
                    continue;
                }
                Fetch::NotFound => return fail(VisitError::NotFound(current.to_string()), cost_ms),
                Fetch::Transient => {
                    return fail(VisitError::Transient(current.to_string()), cost_ms)
                }
                Fetch::TimedOut => return fail(VisitError::Timeout(current.to_string()), cost_ms),
                Fetch::Page(fetched) => fetched,
            };

            let page = &fetched.page;
            let doc = Document::parse_in(&page.html, arena);
            let landing = current.clone();
            let logged_links = doc
                .resource_links()
                .iter()
                .filter_map(|href| resolve_href(&landing, href))
                .collect();
            let href_links = doc
                .href_links()
                .iter()
                .filter_map(|href| resolve_href(&landing, href))
                .collect();
            let screenshot_text = if fetched.screenshot_missing {
                String::new()
            } else {
                page.rendered_text
                    .clone()
                    .unwrap_or_else(|| doc.text().to_owned())
            };

            let visit = VisitedPage {
                starting_url: start,
                landing_url: landing,
                redirection_chain: chain,
                logged_links,
                href_links,
                text: doc.text().to_owned(),
                title: doc.title().to_owned(),
                copyright: doc.copyright().map(str::to_owned),
                screenshot_text,
                input_count: doc.input_count(),
                image_count: doc.image_count(),
                iframe_count: doc.iframe_count(),
            };
            return Ok(VisitOutcome {
                visit,
                availability: SourceAvailability {
                    html: !fetched.truncated,
                    links: !fetched.truncated,
                    screenshot: !fetched.screenshot_missing,
                },
                cost_ms,
            });
        }
        fail(VisitError::TooManyRedirects, cost_ms)
    }
}

/// Resolves an href/src attribute against a base URL, the way a browser
/// would: absolute URLs parse as-is, protocol-relative URLs inherit the
/// scheme, absolute paths keep the host, relative paths append to the
/// base directory.
pub fn resolve_href(base: &Url, href: &str) -> Option<Url> {
    let href = href.trim();
    if href.is_empty() || href.starts_with('#') {
        return None;
    }
    if href.contains("://") {
        return Url::parse(href).ok();
    }
    let host = match base.fqdn() {
        Some(f) => f.to_string(),
        None => base.host().to_string(),
    };
    let scheme = base.scheme().as_str();
    if let Some(rest) = href.strip_prefix("//") {
        return Url::parse(&format!("{scheme}://{rest}")).ok();
    }
    if let Some(path) = href.strip_prefix('/') {
        return Url::parse(&format!("{scheme}://{host}/{path}")).ok();
    }
    // Relative path: resolve against the base's directory.
    let base_path = base.path();
    let dir = match base_path.rfind('/') {
        Some(i) => &base_path[..=i],
        None => "",
    };
    Url::parse(&format!("{scheme}://{host}/{dir}{href}")).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Page;

    fn world() -> WebWorld {
        let mut w = WebWorld::new();
        w.add_redirect("http://short.ly/x", "https://site.example.com/landing");
        w.add_page(
            "https://site.example.com/landing",
            Page::new(
                r#"<title>Site</title><body>
                   <p>Hello world copyright 2015 Site Inc.</p>
                   <a href="/about">About</a>
                   <a href="https://other.net/x">Other</a>
                   <a href="sub/page">Rel</a>
                   <img src="//cdn.example.net/i.png">
                   <script src="/app.js"></script>
                   </body>"#,
            ),
        );
        w
    }

    #[test]
    fn follows_redirects_and_records_chain() {
        let w = world();
        let v = Browser::new(&w).visit("http://short.ly/x").unwrap();
        assert_eq!(v.starting_url.as_str(), "http://short.ly/x");
        assert_eq!(v.landing_url.as_str(), "https://site.example.com/landing");
        assert_eq!(v.redirection_chain.len(), 2);
        assert_eq!(v.title, "Site");
        assert!(v.copyright.as_deref().unwrap().contains("Site Inc"));
    }

    #[test]
    fn resolves_links_against_landing() {
        let w = world();
        let v = Browser::new(&w).visit("http://short.ly/x").unwrap();
        let hrefs: Vec<&str> = v.href_links.iter().map(Url::as_str).collect();
        assert_eq!(
            hrefs,
            [
                "https://site.example.com/about",
                "https://other.net/x",
                "https://site.example.com/sub/page",
            ]
        );
        let logged: Vec<&str> = v.logged_links.iter().map(Url::as_str).collect();
        assert_eq!(
            logged,
            [
                "https://cdn.example.net/i.png",
                "https://site.example.com/app.js"
            ]
        );
    }

    #[test]
    fn screenshot_defaults_to_body_text() {
        let w = world();
        let v = Browser::new(&w).visit("http://short.ly/x").unwrap();
        assert_eq!(v.screenshot_text, v.text);
    }

    #[test]
    fn explicit_rendered_text_wins() {
        let mut w = WebWorld::new();
        w.add_page(
            "http://img.example.com/",
            Page::with_rendered_text("<body><img src='/b.png'></body>", "Big Bank Login"),
        );
        let v = Browser::new(&w).visit("http://img.example.com/").unwrap();
        assert_eq!(v.screenshot_text, "Big Bank Login");
        assert_eq!(v.text, "");
    }

    #[test]
    fn not_found() {
        let w = world();
        let err = Browser::new(&w)
            .visit("http://missing.example.com/")
            .unwrap_err();
        assert!(matches!(err, VisitError::NotFound(_)));
    }

    #[test]
    fn bad_url() {
        let w = world();
        let err = Browser::new(&w).visit("http://").unwrap_err();
        assert!(matches!(err, VisitError::BadUrl(_)));
    }

    #[test]
    fn redirect_loop_detected() {
        let mut w = WebWorld::new();
        w.add_redirect("http://a.com/", "http://b.com/");
        w.add_redirect("http://b.com/", "http://a.com/");
        let err = Browser::new(&w).visit("http://a.com/").unwrap_err();
        assert_eq!(err, VisitError::TooManyRedirects);
    }

    #[test]
    fn resolve_href_cases() {
        let base = Url::parse("https://www.example.com/dir/page.html").unwrap();
        assert_eq!(
            resolve_href(&base, "other.html").unwrap().as_str(),
            "https://www.example.com/dir/other.html"
        );
        assert_eq!(
            resolve_href(&base, "/root.html").unwrap().as_str(),
            "https://www.example.com/root.html"
        );
        assert_eq!(
            resolve_href(&base, "//cdn.net/x").unwrap().as_str(),
            "https://cdn.net/x"
        );
        assert_eq!(
            resolve_href(&base, "http://abs.net/").unwrap().as_str(),
            "http://abs.net/"
        );
        assert_eq!(resolve_href(&base, "#frag"), None);
        assert_eq!(resolve_href(&base, ""), None);
    }

    #[test]
    fn query_preserved_in_landing_url() {
        let mut w = WebWorld::new();
        w.add_page("http://site.example.com/login", Page::new("<body>x</body>"));
        let v = Browser::new(&w)
            .visit("http://site.example.com/login?session=abc&id=9")
            .unwrap();
        // Lookup ignores the query, but the landing URL keeps it — the
        // FreeURL features must see what the victim's address bar shows.
        assert_eq!(v.landing_url.query(), Some("session=abc&id=9"));
        assert!(v.landing_url.free_url().joined().contains("session"));
    }

    #[test]
    fn redirect_chain_records_every_hop_in_order() {
        let mut w = WebWorld::new();
        w.add_redirect("http://a.example.net/", "http://b.example.net/");
        w.add_redirect("http://b.example.net/", "http://c.example.net/");
        w.add_page("http://c.example.net/", Page::new("<body>end</body>"));
        let v = Browser::new(&w).visit("http://a.example.net/").unwrap();
        let hops: Vec<String> = v
            .redirection_chain
            .iter()
            .filter_map(Url::fqdn_str)
            .collect();
        assert_eq!(hops, ["a.example.net", "b.example.net", "c.example.net"]);
        assert_eq!(v.landing_url.as_str(), "http://c.example.net/");
    }

    #[test]
    fn duplicate_resources_kept_as_logged() {
        // Browsers request a resource once per reference; the logged-links
        // list keeps the references (the paper's counts are per request).
        let mut w = WebWorld::new();
        w.add_page(
            "http://dup.example.com/",
            Page::new(r#"<body><img src="/a.png"><img src="/a.png"></body>"#),
        );
        let v = Browser::new(&w).visit("http://dup.example.com/").unwrap();
        assert_eq!(v.logged_links.len(), 2);
        assert_eq!(v.image_count, 2);
    }

    #[test]
    fn redirect_target_query_preserved_in_chain() {
        // Regression: a redirect target carrying a query string must keep
        // it through resolve_href and into the recorded chain — tracking
        // tokens in intermediate hops feed the FreeURL distributions.
        let mut w = WebWorld::new();
        w.add_redirect(
            "http://go.example.com/r",
            "http://land.example.com/next?sid=42&cmd=login",
        );
        w.add_redirect("http://rel.example.com/r", "/local?tok=abc");
        w.add_page("http://land.example.com/next", Page::new("<body>a</body>"));
        w.add_page("http://rel.example.com/local", Page::new("<body>b</body>"));

        let v = Browser::new(&w).visit("http://go.example.com/r").unwrap();
        assert_eq!(v.redirection_chain.len(), 2);
        assert_eq!(v.redirection_chain[1].query(), Some("sid=42&cmd=login"));
        assert_eq!(v.landing_url.query(), Some("sid=42&cmd=login"));

        // Relative redirect targets keep their query too.
        let v = Browser::new(&w).visit("http://rel.example.com/r").unwrap();
        assert_eq!(v.redirection_chain[1].query(), Some("tok=abc"));
        assert_eq!(
            v.landing_url.as_str(),
            "http://rel.example.com/local?tok=abc"
        );
    }

    #[test]
    fn resolve_href_ip_base() {
        let base = Url::parse("http://10.0.0.1/a/b").unwrap();
        assert_eq!(
            resolve_href(&base, "/c").unwrap().as_str(),
            "http://10.0.0.1/c"
        );
    }
}
