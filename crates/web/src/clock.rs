//! A virtual clock for deterministic time handling.
//!
//! The resilient scraper never sleeps or reads wall-clock time: backoff
//! delays, fetch latencies and timeouts all advance a [`VirtualClock`],
//! a plain millisecond counter. Two runs with the same seed therefore
//! observe *identical* timestamps, which makes retry/deadline behaviour —
//! and every scrape report built on top of it — bit-reproducible.

use std::cell::Cell;

/// Deterministic millisecond clock, advanced explicitly.
///
/// # Examples
///
/// ```
/// use kyp_web::VirtualClock;
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now_ms(), 0);
/// clock.advance(250);
/// assert_eq!(clock.now_ms(), 250);
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ms: Cell<u64>,
}

impl VirtualClock {
    /// A clock starting at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.get()
    }

    /// Moves time forward by `ms` milliseconds (saturating).
    pub fn advance(&self, ms: u64) {
        self.now_ms.set(self.now_ms.get().saturating_add(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_ms(), 12);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let c = VirtualClock::new();
        c.advance(u64::MAX - 1);
        c.advance(100);
        assert_eq!(c.now_ms(), u64::MAX);
    }
}
