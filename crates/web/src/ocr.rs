//! Simulated optical character recognition.
//!
//! The paper applies OCR to a screenshot of the rendered page to obtain
//! `T_image` / *OCR prominent terms* (Sections III-B and V-A), mostly to
//! handle image-based pages. Pixel-level OCR is out of scope offline; what
//! the pipeline actually consumes is *noisy text*. This module reproduces
//! the error profile of a real OCR pass: occasional character
//! substitutions with visually similar glyphs, dropped characters, and
//! whole words lost to rendering artifacts.
//!
//! The noise is deterministic given the input and seed, so experiments are
//! reproducible.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of the simulated OCR error profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OcrConfig {
    /// Probability that a character is substituted with a look-alike.
    pub substitution_rate: f64,
    /// Probability that a character is dropped entirely.
    pub drop_rate: f64,
    /// Probability that a whole word is lost.
    pub word_loss_rate: f64,
    /// Seed mixed with the text hash for deterministic noise.
    pub seed: u64,
}

impl Default for OcrConfig {
    fn default() -> Self {
        OcrConfig {
            substitution_rate: 0.02,
            drop_rate: 0.01,
            word_loss_rate: 0.03,
            seed: 0,
        }
    }
}

/// Runs simulated OCR over rendered text, returning the noisy read-back.
///
/// # Examples
///
/// ```
/// use kyp_web::ocr::{simulate_ocr, OcrConfig};
/// let text = "Sign in to Example Bank to continue";
/// let read = simulate_ocr(text, &OcrConfig::default());
/// // Deterministic for a given input and seed.
/// assert_eq!(read, simulate_ocr(text, &OcrConfig::default()));
/// ```
pub fn simulate_ocr(rendered_text: &str, config: &OcrConfig) -> String {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ text_hash(rendered_text));
    let mut out = String::with_capacity(rendered_text.len());
    for word in rendered_text.split_whitespace() {
        if rng.gen_bool(config.word_loss_rate.clamp(0.0, 1.0)) {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        for c in word.chars() {
            if rng.gen_bool(config.drop_rate.clamp(0.0, 1.0)) {
                continue;
            }
            if rng.gen_bool(config.substitution_rate.clamp(0.0, 1.0)) {
                out.push(lookalike(c, &mut rng));
            } else {
                out.push(c);
            }
        }
    }
    out
}

/// A visually confusable substitute for a character, the classic OCR
/// confusion pairs (l↔1↔i, o↔0, m↔rn is approximated by n, ...).
fn lookalike(c: char, rng: &mut ChaCha8Rng) -> char {
    let options: &[char] = match c.to_ascii_lowercase() {
        'l' => &['1', 'i'],
        'i' => &['l', '1'],
        'o' => &['0', 'c'],
        '0' => &['o'],
        '1' => &['l', 'i'],
        'e' => &['c'],
        'c' => &['e', 'o'],
        'm' => &['n'],
        'n' => &['m', 'r'],
        'u' => &['v'],
        'v' => &['u'],
        's' => &['5'],
        '5' => &['s'],
        'b' => &['6'],
        'g' => &['9', 'q'],
        'q' => &['g'],
        _ => return c,
    };
    options[rng.gen_range(0..options.len())]
}

fn text_hash(s: &str) -> u64 {
    // FNV-1a, stable across platforms and runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = OcrConfig::default();
        let t = "the quick brown fox jumps over the lazy dog";
        assert_eq!(simulate_ocr(t, &cfg), simulate_ocr(t, &cfg));
        let other = OcrConfig { seed: 9, ..cfg };
        // Different seed usually (not provably) differs; don't assert.
        let _ = simulate_ocr(t, &other);
    }

    #[test]
    fn zero_noise_is_identity_modulo_whitespace() {
        let cfg = OcrConfig {
            substitution_rate: 0.0,
            drop_rate: 0.0,
            word_loss_rate: 0.0,
            seed: 0,
        };
        assert_eq!(simulate_ocr("hello   world", &cfg), "hello world");
        assert_eq!(simulate_ocr("", &cfg), "");
    }

    #[test]
    fn full_word_loss_empties_output() {
        let cfg = OcrConfig {
            word_loss_rate: 1.0,
            ..OcrConfig::default()
        };
        assert_eq!(simulate_ocr("a b c", &cfg), "");
    }

    #[test]
    fn heavy_substitution_changes_text() {
        let cfg = OcrConfig {
            substitution_rate: 1.0,
            drop_rate: 0.0,
            word_loss_rate: 0.0,
            seed: 3,
        };
        let out = simulate_ocr("million silicon", &cfg);
        assert_ne!(out, "million silicon");
        assert_eq!(out.split_whitespace().count(), 2);
    }

    #[test]
    fn default_noise_preserves_most_content() {
        let text = "sign in to your account to continue with the payment";
        let out = simulate_ocr(text, &OcrConfig::default());
        let kept = out.split_whitespace().filter(|w| text.contains(*w)).count();
        assert!(kept >= 7, "kept {kept} of 10 words: {out}");
    }
}
