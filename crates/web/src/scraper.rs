//! A resilient scraper: bounded retries with deterministic backoff, a
//! per-visit deadline budget, and a per-host circuit breaker.
//!
//! The paper's crawler scraped hundreds of thousands of live URLs; at that
//! scale transient fetch failures, slow hosts and dead kits are the normal
//! case, not the exception. [`ResilientBrowser`] wraps [`Browser`] with
//! the production-shaped machinery:
//!
//! - [`RetryPolicy`]: bounded attempts, exponential backoff with
//!   deterministic jitter, and a per-visit deadline on the virtual clock —
//!   no real sleeping, no wall-clock reads, so runs are bit-reproducible;
//! - [`CircuitBreaker`]: after repeated failures a host's circuit opens
//!   and further visits fail fast; after a cooldown the circuit half-opens
//!   and a probe visit decides whether it closes again.

use crate::browser::{Browser, VisitError};
use crate::clock::VirtualClock;
use crate::visit::{SourceAvailability, VisitedPage};
use crate::world::World;
use kyp_url::Url;
use std::collections::HashMap;

/// Retry behaviour of a [`ResilientBrowser`], all in virtual milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum visit attempts per URL (≥ 1; the first attempt counts).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff_ms: u64,
    /// Upper bound on a single backoff pause.
    pub max_backoff_ms: u64,
    /// Total virtual-time budget for one URL, attempts and pauses
    /// included. Once exceeded the visit fails with
    /// [`FailureCause::DeadlineExceeded`].
    pub deadline_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 100,
            max_backoff_ms: 2_000,
            deadline_ms: 15_000,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `retry` (1-based) of the URL hashed
    /// to `salt`: capped exponential backoff with deterministic jitter in
    /// the upper half of the window (AWS-style "equal jitter", but seeded
    /// by URL and retry number instead of a live RNG).
    pub fn backoff_ms(&self, retry: u32, salt: u64) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << (retry - 1).min(20))
            .min(self.max_backoff_ms);
        let half = exp / 2;
        let jitter = if half == 0 {
            0
        } else {
            crate::fault::mix(salt, u64::from(retry)) % (half + 1)
        };
        half + jitter
    }
}

/// State of one host's circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe request is allowed through.
    HalfOpen,
}

#[derive(Debug, Clone)]
struct HostCircuit {
    consecutive_failures: u32,
    state: BreakerState,
    open_until_ms: u64,
}

/// Per-host circuit breaker over virtual time.
///
/// `failure_threshold` consecutive retryable failures open a host's
/// circuit for `cooldown_ms`; while open, visits fail fast without
/// touching the network. After the cooldown the circuit half-opens: the
/// next visit is a probe whose outcome closes the circuit (success) or
/// re-opens it immediately (failure).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown_ms: u64,
    hosts: HashMap<String, HostCircuit>,
    trips: u64,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(5, 30_000)
    }
}

impl CircuitBreaker {
    /// A breaker tripping after `failure_threshold` consecutive failures,
    /// cooling down for `cooldown_ms` virtual milliseconds.
    pub fn new(failure_threshold: u32, cooldown_ms: u64) -> Self {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            cooldown_ms,
            hosts: HashMap::new(),
            trips: 0,
        }
    }

    /// The current state of `host`'s circuit (Closed when never seen).
    pub fn state(&self, host: &str, now_ms: u64) -> BreakerState {
        match self.hosts.get(host) {
            None => BreakerState::Closed,
            Some(c) => match c.state {
                BreakerState::Open if now_ms >= c.open_until_ms => BreakerState::HalfOpen,
                s => s,
            },
        }
    }

    /// How many times any circuit has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether a request to `host` may proceed at `now_ms`. Moves an
    /// expired `Open` circuit to `HalfOpen`.
    pub fn allow(&mut self, host: &str, now_ms: u64) -> bool {
        let Some(c) = self.hosts.get_mut(host) else {
            return true;
        };
        match c.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open if now_ms >= c.open_until_ms => {
                c.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// Records a successful visit: the circuit closes and failures reset.
    pub fn record_success(&mut self, host: &str) {
        if let Some(c) = self.hosts.get_mut(host) {
            c.consecutive_failures = 0;
            c.state = BreakerState::Closed;
        }
    }

    /// Records a retryable failure; may trip the circuit open.
    pub fn record_failure(&mut self, host: &str, now_ms: u64) {
        let c = self.hosts.entry(host.to_owned()).or_insert(HostCircuit {
            consecutive_failures: 0,
            state: BreakerState::Closed,
            open_until_ms: 0,
        });
        c.consecutive_failures += 1;
        let probe_failed = c.state == BreakerState::HalfOpen;
        if probe_failed || c.consecutive_failures >= self.failure_threshold {
            c.state = BreakerState::Open;
            c.open_until_ms = now_ms.saturating_add(self.cooldown_ms);
            c.consecutive_failures = 0;
            self.trips += 1;
        }
    }
}

/// Why a scrape ultimately failed — the per-cause axis of scrape reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureCause {
    /// The URL did not parse.
    BadUrl,
    /// Nothing hosted at the URL (or a redirect led nowhere).
    NotFound,
    /// The redirect chain exceeded the browser's limit.
    TooManyRedirects,
    /// Transient fetch failures exhausted every attempt.
    Transient,
    /// Timeouts exhausted every attempt.
    Timeout,
    /// The per-visit deadline budget ran out before an attempt succeeded.
    DeadlineExceeded,
    /// The host's circuit was open; the visit failed fast.
    CircuitOpen,
}

impl FailureCause {
    /// Stable snake_case name used on the wire: scrape reports, scoring
    /// responses and observability metrics all spell causes this way.
    pub fn wire_name(self) -> &'static str {
        match self {
            FailureCause::BadUrl => "bad_url",
            FailureCause::NotFound => "not_found",
            FailureCause::TooManyRedirects => "too_many_redirects",
            FailureCause::Transient => "transient",
            FailureCause::Timeout => "timeout",
            FailureCause::DeadlineExceeded => "deadline_exceeded",
            FailureCause::CircuitOpen => "circuit_open",
        }
    }

    fn of(error: &VisitError) -> Self {
        match error {
            VisitError::BadUrl(_) => FailureCause::BadUrl,
            VisitError::NotFound(_) => FailureCause::NotFound,
            VisitError::TooManyRedirects => FailureCause::TooManyRedirects,
            VisitError::Transient(_) => FailureCause::Transient,
            VisitError::Timeout(_) => FailureCause::Timeout,
            // Truncated never escapes the lenient path.
            VisitError::Truncated(_) => FailureCause::Transient,
        }
    }
}

/// A successful scrape: the visit plus resilience bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedPage {
    /// The collected data sources.
    pub visit: VisitedPage,
    /// Which sources arrived intact.
    pub availability: SourceAvailability,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
    /// Virtual milliseconds from first fetch to success.
    pub elapsed_ms: u64,
}

/// A failed scrape: the cause plus resilience bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapeFailure {
    /// Why the scrape gave up.
    pub cause: FailureCause,
    /// The final underlying error, when one was observed.
    pub error: Option<VisitError>,
    /// Attempts spent before giving up (0 when the circuit was open).
    pub attempts: u32,
    /// Virtual milliseconds burned.
    pub elapsed_ms: u64,
}

/// A [`Browser`] wrapped in retry, deadline and circuit-breaker logic.
///
/// # Examples
///
/// ```
/// use kyp_web::{FaultPlan, FlakyWorld, Page, ResilientBrowser, WebWorld};
///
/// let mut world = WebWorld::new();
/// world.add_page("http://example.com/", Page::new("<body>ok</body>"));
/// let flaky = FlakyWorld::new(&world, FaultPlan::new(3, 0.3));
/// let mut scraper = ResilientBrowser::new(&flaky);
/// // Under a 30% fault rate most visits succeed after few retries.
/// let page = scraper.scrape("http://example.com/").unwrap();
/// assert!(page.attempts >= 1);
/// ```
#[derive(Debug)]
pub struct ResilientBrowser<'w, W: World> {
    browser: Browser<'w, W>,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    clock: VirtualClock,
    retries: u64,
}

impl<'w, W: World> ResilientBrowser<'w, W> {
    /// A scraper with the default policy and breaker.
    pub fn new(world: &'w W) -> Self {
        Self::with_policy(world, RetryPolicy::default(), CircuitBreaker::default())
    }

    /// A scraper with explicit retry policy and circuit breaker.
    pub fn with_policy(world: &'w W, policy: RetryPolicy, breaker: CircuitBreaker) -> Self {
        assert!(policy.max_attempts >= 1, "max_attempts must be at least 1");
        ResilientBrowser {
            browser: Browser::new(world),
            policy,
            breaker,
            clock: VirtualClock::new(),
            retries: 0,
        }
    }

    /// The virtual clock every delay and timeout is charged against.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The circuit breaker (for inspection).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Total retries performed across all scrapes so far.
    pub fn total_retries(&self) -> u64 {
        self.retries
    }

    /// Scrapes one URL with retries, backoff, deadline and breaker.
    ///
    /// Degraded pages (truncated HTML, missing screenshot) are successes
    /// with the corresponding [`SourceAvailability`] flags cleared — the
    /// caller decides how to use partial data.
    ///
    /// # Errors
    ///
    /// [`ScrapeFailure`] with the terminal [`FailureCause`] once retries,
    /// the deadline budget, or the host's circuit rule out success.
    pub fn scrape(&mut self, url: &str) -> Result<ScrapedPage, ScrapeFailure> {
        self.scrape_observed(url, &mut kyp_obs::NoopObserver)
    }

    /// Like [`ResilientBrowser::scrape`], reporting the scrape span and
    /// every fetch attempt to `obs`, stamped from the virtual clock. The
    /// observer only watches; the result is identical to the unobserved
    /// call.
    ///
    /// # Errors
    ///
    /// Exactly as [`ResilientBrowser::scrape`].
    pub fn scrape_observed(
        &mut self,
        url: &str,
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> Result<ScrapedPage, ScrapeFailure> {
        obs.clock(self.clock.now_ms());
        obs.scrape_start(url);
        let result = self.scrape_inner(url, obs);
        obs.clock(self.clock.now_ms());
        let outcome = match &result {
            Ok(page) => kyp_obs::ScrapeObservation::Fetched {
                attempts: page.attempts,
                elapsed_ms: page.elapsed_ms,
                degraded: page.availability.is_degraded(),
            },
            Err(failure) => kyp_obs::ScrapeObservation::Failed {
                cause: failure.cause.wire_name().to_owned(),
                attempts: failure.attempts,
                elapsed_ms: failure.elapsed_ms,
            },
        };
        obs.scrape_end(url, &outcome);
        result
    }

    fn scrape_inner(
        &mut self,
        url: &str,
        obs: &mut dyn kyp_obs::PipelineObserver,
    ) -> Result<ScrapedPage, ScrapeFailure> {
        let host = match Url::parse(url) {
            Ok(u) => u.fqdn_str().unwrap_or_else(|| u.host().to_string()),
            Err(e) => {
                return Err(ScrapeFailure {
                    cause: FailureCause::BadUrl,
                    error: Some(VisitError::BadUrl(e)),
                    attempts: 0,
                    elapsed_ms: 0,
                })
            }
        };
        let started_ms = self.clock.now_ms();
        let deadline_ms = started_ms.saturating_add(self.policy.deadline_ms);
        if !self.breaker.allow(&host, started_ms) {
            return Err(ScrapeFailure {
                cause: FailureCause::CircuitOpen,
                error: None,
                attempts: 0,
                elapsed_ms: 0,
            });
        }
        let salt = url_salt(url);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let fail = |cause, error, clock: &VirtualClock| {
                Err(ScrapeFailure {
                    cause,
                    error,
                    attempts,
                    elapsed_ms: clock.now_ms() - started_ms,
                })
            };
            match self.browser.try_visit(url) {
                Ok(outcome) => {
                    self.clock.advance(outcome.cost_ms);
                    obs.clock(self.clock.now_ms());
                    obs.fetch_attempt(url, outcome.cost_ms, true);
                    self.breaker.record_success(&host);
                    return Ok(ScrapedPage {
                        visit: outcome.visit,
                        availability: outcome.availability,
                        attempts,
                        elapsed_ms: self.clock.now_ms() - started_ms,
                    });
                }
                Err(failure) => {
                    self.clock.advance(failure.cost_ms);
                    obs.clock(self.clock.now_ms());
                    obs.fetch_attempt(url, failure.cost_ms, false);
                    if !failure.error.is_retryable() {
                        return fail(
                            FailureCause::of(&failure.error),
                            Some(failure.error),
                            &self.clock,
                        );
                    }
                    self.breaker.record_failure(&host, self.clock.now_ms());
                    if attempts >= self.policy.max_attempts {
                        return fail(
                            FailureCause::of(&failure.error),
                            Some(failure.error),
                            &self.clock,
                        );
                    }
                    if self.clock.now_ms() >= deadline_ms {
                        return fail(
                            FailureCause::DeadlineExceeded,
                            Some(failure.error),
                            &self.clock,
                        );
                    }
                    let backoff = self.policy.backoff_ms(attempts, salt);
                    if self.clock.now_ms().saturating_add(backoff) >= deadline_ms {
                        return fail(
                            FailureCause::DeadlineExceeded,
                            Some(failure.error),
                            &self.clock,
                        );
                    }
                    self.clock.advance(backoff);
                    if !self.breaker.allow(&host, self.clock.now_ms()) {
                        return fail(FailureCause::CircuitOpen, Some(failure.error), &self.clock);
                    }
                    self.retries += 1;
                }
            }
        }
    }
}

/// Stable per-URL hash used to seed backoff jitter.
fn url_salt(url: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in url.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultKind, FaultPlan, FlakyWorld, Page, WebWorld};

    fn world() -> WebWorld {
        let mut w = WebWorld::new();
        w.add_page(
            "http://site.example.com/a",
            Page::new("<title>T</title><body><p>hello</p></body>"),
        );
        w
    }

    #[test]
    fn clean_world_single_attempt() {
        let w = world();
        let mut s = ResilientBrowser::new(&w);
        let page = s.scrape("http://site.example.com/a").unwrap();
        assert_eq!(page.attempts, 1);
        assert_eq!(page.availability, SourceAvailability::FULL);
        assert_eq!(s.total_retries(), 0);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for retry in 1..6 {
            let a = p.backoff_ms(retry, 77);
            let b = p.backoff_ms(retry, 77);
            assert_eq!(a, b, "same inputs, same pause");
            assert!(a <= p.max_backoff_ms);
        }
        // Different URLs jitter differently somewhere in the window.
        let distinct: std::collections::HashSet<u64> =
            (0..32).map(|salt| p.backoff_ms(3, salt)).collect();
        assert!(distinct.len() > 1, "jitter should vary with the salt");
    }

    #[test]
    fn retries_until_success_on_flaky_world() {
        let w = world();
        // High fault rate, transient-only: retries eventually win.
        let flaky = FlakyWorld::new(&w, FaultPlan::only(5, 0.6, &[FaultKind::Transient]));
        let mut s = ResilientBrowser::with_policy(
            &flaky,
            RetryPolicy {
                max_attempts: 20,
                deadline_ms: 600_000,
                ..RetryPolicy::default()
            },
            CircuitBreaker::new(50, 1_000),
        );
        let page = s.scrape("http://site.example.com/a").unwrap();
        assert!(page.attempts >= 1);
        assert_eq!(page.visit.title, "T");
    }

    #[test]
    fn permanent_failures_do_not_retry() {
        let w = world();
        let mut s = ResilientBrowser::new(&w);
        let f = s.scrape("http://gone.example.com/").unwrap_err();
        assert_eq!(f.cause, FailureCause::NotFound);
        assert_eq!(f.attempts, 1);
        assert_eq!(s.total_retries(), 0);
    }

    #[test]
    fn breaker_trips_and_half_opens() {
        let mut b = CircuitBreaker::new(3, 1_000);
        assert!(b.allow("h.com", 0));
        b.record_failure("h.com", 10);
        b.record_failure("h.com", 20);
        assert_eq!(b.state("h.com", 20), BreakerState::Closed);
        b.record_failure("h.com", 30);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.state("h.com", 40), BreakerState::Open);
        assert!(!b.allow("h.com", 40));
        // Cooldown elapses → half-open, one probe allowed.
        assert_eq!(b.state("h.com", 1_031), BreakerState::HalfOpen);
        assert!(b.allow("h.com", 1_031));
        // Failed probe re-opens immediately.
        b.record_failure("h.com", 1_040);
        assert_eq!(b.trips(), 2);
        assert!(!b.allow("h.com", 1_050));
        // Next probe succeeds → closed.
        assert!(b.allow("h.com", 2_100));
        b.record_success("h.com");
        assert_eq!(b.state("h.com", 2_200), BreakerState::Closed);
    }

    #[test]
    fn breaker_half_opens_exactly_at_expiry() {
        let mut b = CircuitBreaker::new(1, 1_000);
        b.record_failure("h.com", 500); // trips: open until 1_500
        assert_eq!(b.state("h.com", 1_499), BreakerState::Open);
        assert!(!b.allow("h.com", 1_499), "one tick before expiry");
        // The boundary is inclusive: now == open_until_ms half-opens.
        assert_eq!(b.state("h.com", 1_500), BreakerState::HalfOpen);
        assert!(b.allow("h.com", 1_500));
    }

    #[test]
    fn breaker_probe_success_closes_and_resets_failures() {
        let mut b = CircuitBreaker::new(2, 1_000);
        b.record_failure("h.com", 0);
        b.record_failure("h.com", 10); // trips: open until 1_010
        assert!(b.allow("h.com", 1_010), "cooldown over, probe allowed");
        assert_eq!(b.state("h.com", 1_010), BreakerState::HalfOpen);
        b.record_success("h.com");
        assert_eq!(b.state("h.com", 1_010), BreakerState::Closed);
        // Success reset the failure streak: one new failure is below the
        // threshold again, so the circuit stays closed.
        b.record_failure("h.com", 1_020);
        assert_eq!(b.state("h.com", 1_021), BreakerState::Closed);
        assert_eq!(b.trips(), 1, "only the original trip counted");
    }

    #[test]
    fn breaker_probe_failure_reopens_with_a_fresh_window() {
        let mut b = CircuitBreaker::new(1, 1_000);
        b.record_failure("h.com", 0); // open until 1_000
        assert!(b.allow("h.com", 2_500), "probe long after expiry");
        assert_eq!(b.state("h.com", 2_500), BreakerState::HalfOpen);
        // The failed probe re-opens with a cooldown anchored at the probe
        // failure instant (2_500), not at the stale original window.
        b.record_failure("h.com", 2_500);
        assert_eq!(b.trips(), 2);
        assert_eq!(b.state("h.com", 3_000), BreakerState::Open);
        assert!(
            !b.allow("h.com", 3_499),
            "old window (1_000) must not apply; fresh one ends at 3_500"
        );
        assert_eq!(b.state("h.com", 3_500), BreakerState::HalfOpen);
        assert!(b.allow("h.com", 3_500));
    }

    #[test]
    fn deadline_budget_bounds_timeout_retries() {
        let w = world();
        let mut plan = FaultPlan::only(9, 1.0, &[FaultKind::Timeout]);
        plan.timeout_ms = 6_000;
        let flaky = FlakyWorld::new(&w, plan);
        let mut s = ResilientBrowser::with_policy(
            &flaky,
            RetryPolicy {
                max_attempts: 100,
                deadline_ms: 15_000,
                ..RetryPolicy::default()
            },
            CircuitBreaker::new(1_000, 60_000),
        );
        let f = s.scrape("http://site.example.com/a").unwrap_err();
        assert_eq!(f.cause, FailureCause::DeadlineExceeded);
        // 6 s per timed-out attempt against a 15 s budget: the third
        // attempt can never start.
        assert!(f.attempts <= 3, "attempts {}", f.attempts);
        assert!(s.clock().now_ms() <= 21_000);
    }

    #[test]
    fn open_circuit_fails_fast_without_fetching() {
        let w = world();
        let flaky = FlakyWorld::new(&w, FaultPlan::only(1, 1.0, &[FaultKind::Transient]));
        let mut s = ResilientBrowser::with_policy(
            &flaky,
            RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            CircuitBreaker::new(3, 1_000_000),
        );
        // Two scrapes × two attempts = 4 failures → breaker trips.
        let _ = s.scrape("http://site.example.com/a");
        let _ = s.scrape("http://site.example.com/a");
        assert!(s.breaker().trips() >= 1);
        let fetches_before = flaky.total_fetches();
        let f = s.scrape("http://site.example.com/a").unwrap_err();
        assert_eq!(f.cause, FailureCause::CircuitOpen);
        assert_eq!(f.attempts, 0);
        assert_eq!(flaky.total_fetches(), fetches_before, "failed fast");
    }

    #[test]
    fn scrape_is_deterministic_for_a_seed() {
        let w = world();
        let run = || {
            let flaky = FlakyWorld::new(&w, FaultPlan::new(33, 0.4));
            let mut s = ResilientBrowser::new(&flaky);
            let mut log = Vec::new();
            for _ in 0..10 {
                match s.scrape("http://site.example.com/a") {
                    Ok(p) => log.push(format!("ok:{}:{}", p.attempts, p.elapsed_ms)),
                    Err(f) => log.push(format!("err:{:?}:{}", f.cause, f.elapsed_ms)),
                }
            }
            log.push(format!("t={}", s.clock().now_ms()));
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn degraded_pages_are_successes() {
        let w = world();
        let flaky = FlakyWorld::new(&w, FaultPlan::only(8, 1.0, &[FaultKind::DropScreenshot]));
        let mut s = ResilientBrowser::new(&flaky);
        let page = s.scrape("http://site.example.com/a").unwrap();
        assert!(!page.availability.screenshot);
        assert!(page.availability.is_degraded());
        assert_eq!(page.visit.screenshot_text, "");
    }
}
