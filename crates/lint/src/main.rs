//! `kyp-lint` binary: scans the workspace, prints the human report,
//! writes the JSON report, exits nonzero on violations.
//!
//! ```console
//! $ cargo run -p kyp-lint                        # lint the workspace
//! $ cargo run -p kyp-lint -- --rules D01,P01     # subset of rules
//! $ cargo run -p kyp-lint -- --json out.json     # report path override
//! $ cargo run -p kyp-lint -- some_file.rs        # lint one file
//! ```
//!
//! A positional `.rs` path switches to single-file mode: the file is
//! analyzed as if it lived in `--crate-name`'s `src/` tree (default
//! `core`, whose scope enables every rule) and no JSON report is written
//! unless `--json` is given. This is how the fixture corpus under
//! `tests/fixtures/` is exercised from the command line.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("kyp-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<PathBuf> = None;
    let mut rules = None;
    let mut root: Option<PathBuf> = None;
    let mut crate_name = "core".to_owned();
    let mut quiet = false;
    let mut deny_warnings = false;
    let mut fix_stale = false;
    let mut check_allows: Option<PathBuf> = None;
    let mut update_allows: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--json" => {
                let v = iter.next().ok_or("--json is missing a value")?;
                json_path = Some(PathBuf::from(v));
            }
            "--rules" => {
                let v = iter.next().ok_or("--rules is missing a value")?;
                rules = Some(kyp_lint::parse_rule_filter(v)?);
            }
            "--crate-name" => {
                let v = iter.next().ok_or("--crate-name is missing a value")?;
                crate_name.clone_from(v);
            }
            "--quiet" => quiet = true,
            "--deny-warnings" => deny_warnings = true,
            "--fix-stale-allows" => fix_stale = true,
            "--check-allows" => {
                let v = iter.next().ok_or("--check-allows is missing a value")?;
                check_allows = Some(PathBuf::from(v));
            }
            "--update-allows" => {
                let v = iter.next().ok_or("--update-allows is missing a value")?;
                update_allows = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "kyp-lint — workspace determinism & invariant static analysis\n\n\
                     USAGE: kyp-lint [--rules D01,D02,...] [--json <path>] [--quiet] [<root>]\n\
                     \x20      kyp-lint [--rules ...] [--crate-name <c>] <file.rs>\n\n\
                     Scans crates/*/src and src/ under <root> (default: the enclosing\n\
                     workspace), prints a human report, writes a JSON report\n\
                     (default results/lint.json), and exits nonzero on violations.\n\
                     A positional .rs file is linted alone, as crate <c> (default core).\n\n\
                     OPTIONS:\n\
                     \x20 --deny-warnings        exit nonzero on Severity::Warning findings too\n\
                     \x20 --fix-stale-allows     remove allow annotations that suppress nothing\n\
                     \x20                        (full-rule runs only; incompatible with --rules)\n\
                     \x20 --check-allows <tsv>   fail if an allow is missing from the baseline\n\
                     \x20 --update-allows <tsv>  rewrite the allow baseline from this run"
                );
                return Ok(true);
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown option {other:?} (see --help)")),
        }
    }
    if fix_stale && rules.is_some() {
        return Err(
            "--fix-stale-allows needs a full-rule run (an allow for a filtered-out rule \
             would look stale); drop --rules"
                .to_owned(),
        );
    }
    let single_file = root
        .as_ref()
        .is_some_and(|p| p.extension().is_some_and(|e| e == "rs"));
    let (outcome, json, ws_root) = if single_file {
        let path = root.expect("checked above");
        let outcome = kyp_lint::lint_file(&path, &crate_name, rules.as_ref())?;
        (outcome, json_path, None)
    } else {
        let root = if let Some(r) = root {
            r
        } else {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            kyp_lint::find_workspace_root(&cwd)
                .ok_or("no workspace root found (pass one explicitly)")?
        };
        let outcome = kyp_lint::run_lint(&root, rules.as_ref())?;
        let json = json_path.unwrap_or_else(|| root.join("results").join("lint.json"));
        (outcome, Some(json), Some(root))
    };
    if fix_stale {
        let Some(ws) = &ws_root else {
            return Err("--fix-stale-allows works on workspace runs, not single files".to_owned());
        };
        for edit in kyp_lint::fix::remove_stale_allows(ws, &outcome)? {
            println!("kyp-lint: {edit}");
        }
    }
    if let Some(path) = &update_allows {
        std::fs::write(path, kyp_lint::fix::render_allow_baseline(&outcome))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        if !quiet {
            println!("kyp-lint: allow baseline written to {}", path.display());
        }
    }
    if let Some(json) = &json {
        if let Some(dir) = json.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        std::fs::write(json, outcome.render_json())
            .map_err(|e| format!("write {}: {e}", json.display()))?;
    }
    if !quiet {
        print!("{}", outcome.render_human());
        if let Some(json) = &json {
            println!("kyp-lint: report written to {}", json.display());
        }
    }
    let mut clean = if deny_warnings {
        outcome.is_warning_clean()
    } else {
        outcome.is_clean()
    };
    if let Some(path) = &check_allows {
        let baseline =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        if let Err(growth) = kyp_lint::fix::check_allow_baseline(&outcome, &baseline) {
            eprintln!("kyp-lint: {growth}");
            clean = false;
        }
    }
    Ok(clean)
}
