//! The determinism & invariant rule table.
//!
//! Every rule has a stable ID (referenced by `// kyp-lint: allow(<id>)`
//! annotations), a severity, and a crate scope. The scope encodes the
//! architectural contract of DESIGN.md §8e: all output-affecting crates
//! must be order-deterministic (D01), wall clocks live only in `bench`
//! (D02), raw threads only in `exec` (D03), entropy-seeded randomness
//! nowhere (D04), `unsafe` only in `exec` (D05), and the hot library
//! paths — `core`/`serve`/`obs`/`cluster`/`store` plus the `ml`/`html`
//! inference and parsing kernels — must not panic on `Option`/`Result`
//! (P01).

/// How bad a finding is. Every shipped rule is an error today; the
/// severity channel exists so future advisory rules can ride the same
/// report without failing CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run.
    Error,
    /// Reported but does not affect the exit code.
    Warning,
}

impl Severity {
    /// Lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Which crates a rule applies to, keyed by the crate's directory name
/// under `crates/` (the root package is `"root"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Applies everywhere.
    All,
    /// Applies only to the listed crates.
    Only(&'static [&'static str]),
    /// Applies everywhere except the listed crates.
    Except(&'static [&'static str]),
}

impl Scope {
    /// Does the rule apply to `crate_name`?
    pub fn applies_to(self, crate_name: &str) -> bool {
        match self {
            Scope::All => true,
            Scope::Only(list) => list.contains(&crate_name),
            Scope::Except(list) => !list.contains(&crate_name),
        }
    }
}

/// One static-analysis rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier (`D01`...), referenced by allow annotations.
    pub id: &'static str,
    /// Severity of a violation.
    pub severity: Severity,
    /// Crates the rule applies to.
    pub scope: Scope,
    /// One-line statement of the invariant.
    pub summary: &'static str,
}

/// Crates whose output feeds feature vectors, model training, verdicts or
/// reports — iteration order there must be deterministic. `lint` is in
/// the list because its own report (`results/lint.json`) is a byte-stable
/// artifact: the analyzer must not iterate hash maps either.
pub const OUTPUT_AFFECTING: &[&str] = &[
    "core",
    "ml",
    "text",
    "html",
    "url",
    "web",
    "search",
    "serve",
    "datagen",
    "baselines",
    "obs",
    "cluster",
    "store",
    "lint",
];

/// Crates whose library code must not panic: the serving path (`core`/
/// `serve`/`obs`/`cluster`), the hot kernels (`ml`/`html`) and the
/// persistent store. Shared by P01 (explicit `unwrap`/`expect`) and P02
/// (implicit panic sites).
pub const PANIC_FREE: &[&str] = &["core", "serve", "obs", "cluster", "ml", "html", "store"];

/// The full rule table, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D01",
        severity: Severity::Error,
        scope: Scope::Only(OUTPUT_AFFECTING),
        summary: "no HashMap/HashSet iteration (.iter/.keys/.values/.drain/.into_iter/for-in) \
                  in output-affecting crates; keyed lookup stays legal",
    },
    Rule {
        id: "D02",
        severity: Severity::Error,
        scope: Scope::Except(&["bench"]),
        summary: "no Instant::now/SystemTime outside crates/bench — virtual clocks only",
    },
    Rule {
        id: "D03",
        severity: Severity::Error,
        scope: Scope::Except(&["exec"]),
        summary:
            "no std::thread::spawn/scope outside crates/exec — parallelism goes through kyp-exec",
    },
    Rule {
        id: "D04",
        severity: Severity::Error,
        scope: Scope::All,
        summary:
            "no entropy-seeded RNG (thread_rng/from_entropy/OsRng) anywhere — seeds are explicit",
    },
    Rule {
        id: "D05",
        severity: Severity::Error,
        scope: Scope::Except(&["exec"]),
        summary:
            "no unsafe outside crates/exec (enforced twice: here and by #![forbid(unsafe_code)])",
    },
    Rule {
        id: "P01",
        severity: Severity::Error,
        scope: Scope::Only(PANIC_FREE),
        summary: "no unwrap()/expect() in non-test library code of \
                  core/serve/obs/cluster/ml/html/store",
    },
    Rule {
        id: "P02",
        severity: Severity::Error,
        scope: Scope::Only(PANIC_FREE),
        summary: "no implicit panic site (indexing, split_at, integer /-%, panic!/assert!) \
                  reachable from a registered public entry point; findings carry the \
                  shortest call path",
    },
    Rule {
        id: "H01",
        severity: Severity::Error,
        scope: Scope::All,
        summary: "no allocating call (format!/vec!/to_string/to_owned/to_vec/\
                  String::/Vec::/Box:: constructors, clone of owned buffers) in a \
                  registered hot function or its callees to depth 2, outside setup and \
                  cold error paths",
    },
    Rule {
        id: "D06",
        severity: Severity::Warning,
        scope: Scope::Only(OUTPUT_AFFECTING),
        summary: "order-sensitive f64 accumulation (sum::<f64>/float fold/`+=` in loops) \
                  belongs in a canonical reduction helper",
    },
    Rule {
        id: "A00",
        severity: Severity::Error,
        scope: Scope::All,
        summary: "every kyp-lint allow annotation must carry a justification",
    },
];

/// Looks a rule up by ID.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_resolvable() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(RULES.iter().skip(i + 1).all(|o| o.id != r.id), "{}", r.id);
            assert_eq!(rule_by_id(r.id).map(|x| x.id), Some(r.id));
        }
        assert!(rule_by_id("D99").is_none());
    }

    #[test]
    fn scopes_resolve() {
        assert!(rule_by_id("D01").unwrap().scope.applies_to("core"));
        assert!(!rule_by_id("D01").unwrap().scope.applies_to("exec"));
        assert!(!rule_by_id("D02").unwrap().scope.applies_to("bench"));
        assert!(rule_by_id("D04").unwrap().scope.applies_to("lint"));
        assert!(!rule_by_id("P01").unwrap().scope.applies_to("text"));
        // The hot-path kernels (flat model, parse arena) are in scope.
        assert!(rule_by_id("P01").unwrap().scope.applies_to("ml"));
        assert!(rule_by_id("P01").unwrap().scope.applies_to("html"));
        // The persistent store feeds training and verdicts: its decode
        // order is output-affecting, its I/O must not panic or read
        // wall clocks.
        assert!(rule_by_id("D01").unwrap().scope.applies_to("store"));
        assert!(rule_by_id("P01").unwrap().scope.applies_to("store"));
        assert!(rule_by_id("D02").unwrap().scope.applies_to("store"));
    }
}
