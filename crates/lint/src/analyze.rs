//! Per-file rule analysis over the token stream.
//!
//! The analysis is deliberately token-level (no type information): it
//! tracks, *within one file*, which names are bound to `HashMap`/`HashSet`
//! — `let` bindings, struct fields, `fn` parameters, and local functions
//! returning hash containers — and flags iteration over them. Everything a
//! token pass cannot see (a hash map smuggled through a type alias or
//! across files) is out of scope; the contract is enforced belt-and-braces
//! by the integration determinism tests.

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{rule_by_id, Severity};
use std::collections::BTreeSet;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule ID (`D01`...).
    pub rule: String,
    /// Rule severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// For call-graph findings (P02/H01): the attribution path of
    /// qualified fn names, entry/hot root first. Empty for per-file
    /// findings.
    pub call_path: Vec<String>,
}

/// One `// kyp-lint: allow(<rule>) — <justification>` annotation.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// Rule the annotation suppresses.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Line the annotation binds to (its own line; it also covers the
    /// next line).
    pub line: u32,
    /// Free-text justification after the closing paren.
    pub justification: String,
    /// Whether the annotation suppressed at least one finding.
    pub used: bool,
}

/// Analysis result for one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Violations found (allow-suppressed findings excluded).
    pub violations: Vec<Violation>,
    /// Allow annotations seen.
    pub allows: Vec<AllowRecord>,
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Smart-pointer/guard methods that forward to the underlying container,
/// unwound when resolving a method-call receiver.
const WRAPPER_CALLS: &[&str] = &[
    "borrow",
    "borrow_mut",
    "lock",
    "read",
    "write",
    "as_ref",
    "as_mut",
    "clone",
];

/// Type constructors a hash container may legitimately sit inside while
/// still being "the" binding's type (`RefCell<HashMap<..>>`).
const TYPE_WRAPPERS: &[&str] = &[
    "std",
    "collections",
    "cell",
    "sync",
    "RefCell",
    "Cell",
    "Arc",
    "Rc",
    "Mutex",
    "RwLock",
    "Box",
    "mut",
];

/// Analyzes one file's source against the rule set.
///
/// `crate_name` is the directory name under `crates/` (or `"root"`);
/// `enabled` restricts checking to the listed rule IDs (`None` = all).
/// Files on a test path (any component containing `test`) are skipped
/// entirely; `#[cfg(test)]` items inside regular files are skipped by
/// line range.
pub fn analyze_source(
    crate_name: &str,
    rel_path: &str,
    src: &str,
    enabled: Option<&BTreeSet<String>>,
) -> FileAnalysis {
    let mut out = FileAnalysis::default();
    let lexed = lex(src);
    let lines: Vec<&str> = src.lines().collect();

    // ---- Allow annotations.
    for c in &lexed.comments {
        parse_allows(&c.text, c.end_line, rel_path, &mut out.allows);
    }

    if is_test_path(rel_path) {
        // Whole file is test support; only A00 applies below.
        finish_allow_violations(&mut out, rel_path, &lines, enabled);
        return out;
    }

    let toks = &lexed.tokens;
    let test_ranges = test_line_ranges(toks);
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    let rule_on = |id: &str| {
        rule_by_id(id).is_some_and(|r| r.scope.applies_to(crate_name))
            && enabled.is_none_or(|set| set.contains(id))
    };

    let mut findings: Vec<(String, u32, String)> = Vec::new();

    // ---- D01: hash container iteration.
    if rule_on("D01") {
        let (hash_idents, hash_fns) = collect_hash_names(toks);
        find_hash_iteration(toks, &hash_idents, &hash_fns, &mut findings);
    }

    // ---- D02..D05, P01: direct token patterns.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        match name {
            "SystemTime" if rule_on("D02") => {
                findings.push(("D02".into(), t.line, "SystemTime used".into()));
            }
            "Instant" if rule_on("D02") && path_call(toks, i, "now") => {
                findings.push(("D02".into(), t.line, "Instant::now() called".into()));
            }
            "thread"
                if rule_on("D03")
                    && (path_call(toks, i, "spawn") || path_call(toks, i, "scope")) =>
            {
                findings.push((
                    "D03".into(),
                    t.line,
                    "raw thread::spawn/scope (use kyp-exec)".into(),
                ));
            }
            "thread_rng" | "from_entropy" | "OsRng" if rule_on("D04") => {
                findings.push((
                    "D04".into(),
                    t.line,
                    format!("entropy-seeded randomness: {name}"),
                ));
            }
            "unsafe" if rule_on("D05") => {
                findings.push(("D05".into(), t.line, "unsafe block or function".into()));
            }
            "unwrap" | "expect"
                if rule_on("P01")
                    && i > 0
                    && toks[i - 1].kind == TokKind::Punct('.')
                    && toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Punct('('))
                // `.expect(` always takes an argument; `.unwrap(` must be
                // the nullary method, not e.g. a closure-taking custom fn.
                && (name == "expect" || toks.get(i + 2).map(|n| n.kind) == Some(TokKind::Punct(')'))) =>
            {
                findings.push((
                    "P01".into(),
                    t.line,
                    format!(".{name}() may panic in library code"),
                ));
            }
            _ => {}
        }
    }

    // ---- Apply test-region and allow filtering.
    findings.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    for (rule, line, message) in findings {
        if in_test(line) {
            continue;
        }
        if suppress(&mut out.allows, &rule, line) {
            continue;
        }
        let severity = rule_by_id(&rule).map_or(Severity::Error, |r| r.severity);
        out.violations.push(Violation {
            rule,
            severity,
            file: rel_path.to_owned(),
            line,
            message,
            snippet: snippet_at(&lines, line),
            call_path: Vec::new(),
        });
    }

    finish_allow_violations(&mut out, rel_path, &lines, enabled);
    out
}

/// Is the ident at `i` followed by `:: <member>` (e.g. `Instant :: now`)?
fn path_call(toks: &[Tok], i: usize, member: &str) -> bool {
    toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct(':'))
        && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Punct(':'))
        && toks
            .get(i + 3)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == member)
}

/// Any path component containing `test` marks test-support source
/// (`tests/`, `test_pages.rs`, ...), which every rule skips.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split(['/', '\\'])
        .any(|comp| comp.contains("test"))
}

fn snippet_at(lines: &[&str], line: u32) -> String {
    lines
        .get(line as usize - 1)
        .map(|l| l.trim().to_owned())
        .unwrap_or_default()
}

/// Marks a matching allow used and reports whether the finding is
/// suppressed. An allow covers its own line and the next one.
pub(crate) fn suppress(allows: &mut [AllowRecord], rule: &str, line: u32) -> bool {
    let mut hit = false;
    for a in allows.iter_mut() {
        if a.rule == rule && (a.line == line || a.line + 1 == line) {
            a.used = true;
            hit = true;
        }
    }
    hit
}

/// A00: allows with no justification, or naming an unknown rule.
fn finish_allow_violations(
    out: &mut FileAnalysis,
    rel_path: &str,
    lines: &[&str],
    enabled: Option<&BTreeSet<String>>,
) {
    if enabled.is_some_and(|set| !set.contains("A00")) {
        return;
    }
    for a in &out.allows {
        let problem = if rule_by_id(&a.rule).is_none() {
            Some(format!("allow names unknown rule {:?}", a.rule))
        } else if a.justification.len() < 3 {
            Some(format!("allow({}) has no justification", a.rule))
        } else {
            None
        };
        if let Some(message) = problem {
            out.violations.push(Violation {
                rule: "A00".into(),
                severity: Severity::Error,
                file: rel_path.to_owned(),
                line: a.line,
                message,
                snippet: snippet_at(lines, a.line),
                call_path: Vec::new(),
            });
        }
    }
}

/// Parses a `kyp-lint: allow(D01, D02) — justification` annotation.
///
/// The annotation must open the comment (a doc comment *mentioning* the
/// syntax mid-prose is not an annotation).
fn parse_allows(text: &str, line: u32, file: &str, out: &mut Vec<AllowRecord>) {
    let trimmed = text.trim_start();
    if !trimmed.starts_with("kyp-lint:") {
        return;
    }
    let rest = &trimmed["kyp-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return;
    };
    let after = &rest[open + "allow(".len()..];
    let Some(close) = after.find(')') else {
        return;
    };
    let ids = &after[..close];
    let justification = after[close + 1..]
        .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
        .trim()
        .to_owned();
    for id in ids.split([',', ' ']).filter(|s| !s.is_empty()) {
        out.push(AllowRecord {
            rule: id.trim().to_owned(),
            file: file.to_owned(),
            line,
            justification: justification.clone(),
            used: false,
        });
    }
}

/// Line ranges of `#[cfg(test)]` items (attribute through closing brace).
pub(crate) fn test_line_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            let start_line = toks[i].line;
            // Move past this attribute's closing `]`.
            let mut j = skip_attr(toks, i);
            // Skip any further attributes on the same item.
            while j < toks.len() && toks[j].kind == TokKind::Punct('#') {
                j = skip_attr(toks, j);
            }
            // Find the item body: first `{` before a top-level `;`.
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('(' | '[') => depth += 1,
                    TokKind::Punct(')' | ']') => depth -= 1,
                    TokKind::Punct(';') if depth == 0 => break, // `mod x;` etc.
                    TokKind::Punct('{') if depth == 0 => {
                        let end = match_brace(toks, j);
                        ranges.push((start_line, toks[end.min(toks.len() - 1)].line));
                        j = end;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j.max(i) + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Is `#` at `i` the start of `#[cfg(...test...)]`?
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    if toks[i].kind != TokKind::Punct('#') {
        return false;
    }
    let mut j = i + 1;
    // Tolerate inner attributes `#![...]` too.
    if toks.get(j).map(|t| t.kind) == Some(TokKind::Punct('!')) {
        j += 1;
    }
    if toks.get(j).map(|t| t.kind) != Some(TokKind::Punct('[')) {
        return false;
    }
    if toks.get(j + 1).map(|t| t.text.as_str()) != Some("cfg") {
        return false;
    }
    // Scan the attribute tokens for a bare `test` ident.
    let mut depth = 0i32;
    for t in &toks[j..] {
        match t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            TokKind::Ident if t.text == "test" => return true,
            _ => {}
        }
    }
    false
}

/// Index just past the `]` closing the attribute starting at `i` (`#`).
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j.saturating_sub(1)
}

/// Collects names bound to hash containers: `name: HashMap<..>` (fields,
/// params, annotated lets), `name = HashMap::new()`-style bindings, and
/// functions declared in this file returning a hash container.
fn collect_hash_names(toks: &[Tok]) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut idents = BTreeSet::new();
    let mut fns = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            // `name : [wrappers] HashMap` — walk back over type syntax.
            let mut j = i;
            while j > 0 {
                let p = &toks[j - 1];
                let is_wrapper = match p.kind {
                    TokKind::Punct(':' | '<' | '&') => true,
                    TokKind::Ident => TYPE_WRAPPERS.contains(&p.text.as_str()),
                    TokKind::Lifetime => true,
                    _ => false,
                };
                if !is_wrapper {
                    break;
                }
                j -= 1;
            }
            // After the walk, `toks[j]` starts the type; the name sits at
            // `j-2 j-1` as `ident :` (the ':' was consumed by the walk, so
            // check the original neighbourhood instead).
            if j > 0 && toks[j].kind == TokKind::Punct(':') && toks[j - 1].kind == TokKind::Ident {
                idents.insert(toks[j - 1].text.clone());
            }
            // `name = HashMap::new(...)` — walk back over `std::collections::`.
            let mut k = i;
            while k >= 2
                && toks[k - 1].kind == TokKind::Punct(':')
                && toks[k - 2].kind == TokKind::Punct(':')
            {
                if k >= 3 && toks[k - 3].kind == TokKind::Ident {
                    k -= 3;
                } else {
                    break;
                }
            }
            if k > 0 && toks[k - 1].kind == TokKind::Punct('=') {
                let ctor_follows = toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct(':'))
                    && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Punct(':'));
                if ctor_follows && k >= 2 && toks[k - 2].kind == TokKind::Ident {
                    idents.insert(toks[k - 2].text.clone());
                }
            }
        }
        // `fn name(..) -> ... HashMap/HashSet ... {`.
        if t.kind == TokKind::Ident && t.text == "fn" {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    if let Some(ret) = return_type_range(toks, i) {
                        let hashy = toks[ret.0..ret.1].iter().any(|t| {
                            t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet")
                        });
                        if hashy {
                            fns.insert(name_tok.text.clone());
                        }
                    }
                }
            }
        }
    }
    (idents, fns)
}

/// Token range `(start, end)` of a fn's return type, if it has one.
fn return_type_range(toks: &[Tok], fn_idx: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut j = fn_idx + 1;
    let mut arrow = None;
    while j + 1 < toks.len() {
        match toks[j].kind {
            TokKind::Punct('(' | '[') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct('-')
                if depth == 0 && toks[j + 1].kind == TokKind::Punct('>') && arrow.is_none() =>
            {
                arrow = Some(j + 2);
            }
            TokKind::Punct('{' | ';') if depth == 0 => {
                return arrow.map(|a| (a, j));
            }
            TokKind::Ident if depth == 0 && toks[j].text == "where" => {
                return arrow.map(|a| (a, j));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Flags iteration method calls and `for … in` loops over hash-bound names.
fn find_hash_iteration(
    toks: &[Tok],
    hash_idents: &BTreeSet<String>,
    hash_fns: &BTreeSet<String>,
    findings: &mut Vec<(String, u32, String)>,
) {
    for i in 0..toks.len() {
        // `.iter()` family.
        if toks[i].kind == TokKind::Punct('.')
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str())
            })
            && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Punct('('))
        {
            if let Some(name) = receiver_hash_name(toks, i, hash_idents, hash_fns) {
                findings.push((
                    "D01".into(),
                    toks[i + 1].line,
                    format!(
                        "hash-order iteration: {name}.{}() (sort first or use BTreeMap/BTreeSet)",
                        toks[i + 1].text
                    ),
                ));
            }
        }
        // `for pat in [&mut] path {`.
        if toks[i].kind == TokKind::Ident && toks[i].text == "for" {
            if let Some((name, line)) = for_loop_hash_target(toks, i, hash_idents) {
                findings.push((
                    "D01".into(),
                    line,
                    format!("hash-order iteration: for … in {name} (sort first or use BTreeMap/BTreeSet)"),
                ));
            }
        }
    }
}

/// Resolves the receiver of `.method()` at the `.` token `dot`, unwinding
/// wrapper calls (`.borrow()`, `.lock()`, ...). Returns the hash-bound
/// name when the receiver resolves to one.
fn receiver_hash_name(
    toks: &[Tok],
    mut dot: usize,
    hash_idents: &BTreeSet<String>,
    hash_fns: &BTreeSet<String>,
) -> Option<String> {
    loop {
        if dot == 0 {
            return None;
        }
        let prev = dot - 1;
        match toks[prev].kind {
            TokKind::Ident => {
                let name = toks[prev].text.as_str();
                if hash_idents.contains(name) {
                    return Some(name.to_owned());
                }
                return None;
            }
            TokKind::Punct(')') => {
                // A call result: find the callee.
                let open = match_paren_back(toks, prev)?;
                if open == 0 {
                    return None;
                }
                let callee = &toks[open - 1];
                if callee.kind != TokKind::Ident {
                    return None;
                }
                if hash_fns.contains(&callee.text) {
                    return Some(format!("{}()", callee.text));
                }
                if WRAPPER_CALLS.contains(&callee.text.as_str()) && open >= 2 {
                    // `<recv>.borrow()` — keep unwinding from the `.`
                    // before the callee.
                    if toks[open - 2].kind == TokKind::Punct('.') {
                        dot = open - 2;
                        continue;
                    }
                }
                return None;
            }
            _ => return None,
        }
    }
}

/// Index of the `(` matching the `)` at `close`.
fn match_paren_back(toks: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        match toks[j].kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

/// For a `for` keyword at `i`, returns the hash-bound name iterated over,
/// when the loop expression is a plain `[&][mut] path.to.name`.
fn for_loop_hash_target(
    toks: &[Tok],
    i: usize,
    hash_idents: &BTreeSet<String>,
) -> Option<(String, u32)> {
    // Find `in` at depth 0 (the pattern may contain parens/brackets).
    let mut depth = 0i32;
    let mut j = i + 1;
    let in_idx = loop {
        let t = toks.get(j)?;
        match t.kind {
            TokKind::Punct('(' | '[') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Ident if depth == 0 && t.text == "in" => break j,
            TokKind::Punct('{') => return None, // gave up: not a for-in
            _ => {}
        }
        j += 1;
    };
    // Collect expression tokens until the body `{` at depth 0.
    let mut expr = Vec::new();
    depth = 0;
    j = in_idx + 1;
    loop {
        let t = toks.get(j)?;
        match t.kind {
            TokKind::Punct('(' | '[') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => break,
            _ => {}
        }
        expr.push(j);
        j += 1;
    }
    // Accept `& mut? ident (. ident)*`.
    let mut it = expr.iter().peekable();
    while it
        .peek()
        .is_some_and(|&&k| matches!(toks[k].kind, TokKind::Punct('&')))
    {
        it.next();
    }
    if it
        .peek()
        .is_some_and(|&&k| toks[k].kind == TokKind::Ident && toks[k].text == "mut")
    {
        it.next();
    }
    let mut last_ident: Option<usize> = None;
    let mut expect_ident = true;
    for &k in it {
        match toks[k].kind {
            TokKind::Ident if expect_ident => {
                last_ident = Some(k);
                expect_ident = false;
            }
            TokKind::Punct('.') if !expect_ident => expect_ident = true,
            _ => return None, // anything fancier is not a bare path
        }
    }
    let k = last_ident?;
    if hash_idents.contains(&toks[k].text) {
        Some((toks[k].text.clone(), toks[k].line))
    } else {
        None
    }
}
