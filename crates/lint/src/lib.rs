#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! `kyp-lint` — the workspace determinism & invariant static-analysis
//! pass (DESIGN.md §8e).
//!
//! The reproduction's core contract is that training, feature extraction
//! and serve-loop verdict streams are byte-identical at any thread count.
//! The integration tests sample that property at a few thread counts;
//! this crate enforces it at the *source* level, so a PR cannot silently
//! introduce a hash-order dependence, a wall-clock read, or a stray
//! thread that the sampled tests happen to miss.
//!
//! The analyzer is token-level and dependency-free — it lexes every
//! workspace source file (never parsing string literals or comments as
//! code) and pattern-matches the rule table of [`rules::RULES`]:
//!
//! | ID  | invariant |
//! |-----|-----------|
//! | D01 | no `HashMap`/`HashSet` iteration in output-affecting crates |
//! | D02 | no `Instant::now`/`SystemTime` outside `crates/bench` |
//! | D03 | no raw `thread::spawn`/`scope` outside `crates/exec` |
//! | D04 | no entropy-seeded RNG anywhere |
//! | D05 | no `unsafe` outside `crates/exec` |
//! | P01 | no `unwrap()`/`expect()` in hot-path library code (`core`/`serve`/`obs`/`cluster`/`ml`/`html`/`store`) |
//! | A00 | every allow annotation carries a justification |
//! | P02 | no *implicit* panic site (indexing, `split_at`, integer `/` `%`, panic macros) reachable from a registered public entry point (DESIGN.md §8j) |
//! | H01 | no allocation inside registered hot functions or their callees to depth 2 |
//! | D06 | no order-sensitive `f64` accumulation outside canonical reducers (warning) |
//!
//! D01–A00 are per-file. P02/H01/D06 ride on a workspace call graph: a
//! lightweight item parser ([`mod@items`] internally) finds `fn` items on
//! top of the same token stream, name-resolution builds intra-workspace
//! call edges, and the registries of entry points, hot functions and
//! canonical reducers (`registry` module) anchor the three rules. Every
//! P02 finding carries the shortest call path from its entry point.
//!
//! A finding is suppressed by an inline escape hatch on the same or the
//! preceding line — `// kyp-lint: allow(D01) — <justification>` — and
//! every hatch is itself counted, reported, and rejected when it lacks a
//! justification. `tools/lint_allows.tsv` pins the reviewed baseline:
//! CI fails when a new allow appears without a row there.
//!
//! # Examples
//!
//! ```
//! use kyp_lint::analyze_source;
//!
//! let bad = "fn f(m: &std::collections::HashMap<String, u32>) -> u32 {\n\
//!            m.values().sum()\n}\n";
//! let analysis = analyze_source("core", "crates/core/src/x.rs", bad, None);
//! assert_eq!(analysis.violations[0].rule, "D01");
//! ```

mod analyze;
pub mod fix;
mod graph;
mod items;
mod lexer;
mod registry;
mod report;
pub mod rules;

pub use analyze::{analyze_source, AllowRecord, FileAnalysis, Violation};
pub use report::LintOutcome;
pub use rules::{Rule, Severity, RULES};

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One workspace source file queued for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Directory name under `crates/` (`"root"` for the top-level
    /// package).
    pub crate_name: String,
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
}

/// Enumerates the workspace's own source files (crate `src/` trees plus
/// the root package), skipping `vendor/`, `target/` and test trees.
/// The listing is path-sorted, so reports are deterministic.
///
/// # Errors
///
/// Propagates filesystem errors from directory walks.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let name = member
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_owned();
            collect_rs(&member.join("src"), root, &name, &mut out)?;
        }
    }
    collect_rs(&root.join("src"), root, "root", &mut out)?;
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                crate_name: crate_name.to_owned(),
                rel_path: rel,
                abs_path: path,
            });
        }
    }
    Ok(())
}

/// Runs the full lint pass over the workspace at `root`.
///
/// `rules` restricts checking to the given rule IDs (`None` = all).
///
/// # Errors
///
/// Returns an error string on filesystem failures or unknown rule IDs in
/// the filter.
pub fn run_lint(root: &Path, rules: Option<&BTreeSet<String>>) -> Result<LintOutcome, String> {
    if let Some(set) = rules {
        validate_filter(set)?;
    }
    let files = workspace_files(root).map_err(|e| format!("walk {}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!(
            "no workspace sources under {} (expected crates/*/src and src/)",
            root.display()
        ));
    }
    let mut loaded = Vec::with_capacity(files.len());
    for f in files {
        let src = fs::read_to_string(&f.abs_path)
            .map_err(|e| format!("read {}: {e}", f.abs_path.display()))?;
        loaded.push((f, src));
    }
    let inputs: Vec<(&str, &str, &str)> = loaded
        .iter()
        .map(|(f, src)| (f.crate_name.as_str(), f.rel_path.as_str(), src.as_str()))
        .collect();
    Ok(analyze_loaded(&inputs, rules))
}

/// Shared core of [`run_lint`] and [`lint_file`]: per-file analysis, then
/// the workspace call-graph pass, with graph findings run through the
/// same allow-annotation suppression.
fn analyze_loaded(inputs: &[(&str, &str, &str)], rules: Option<&BTreeSet<String>>) -> LintOutcome {
    let mut analyses: Vec<FileAnalysis> = inputs
        .iter()
        .map(|(krate, rel, src)| analyze_source(krate, rel, src, rules))
        .collect();

    let graph_needed = rules.is_none_or(|set| {
        set.iter()
            .any(|r| matches!(r.as_str(), "P02" | "H01" | "D06"))
    });
    if graph_needed {
        let graph_files: Vec<graph::GraphFile<'_>> = inputs
            .iter()
            .map(|&(krate, rel, src)| graph::GraphFile {
                crate_name: krate,
                rel_path: rel,
                src,
            })
            .collect();
        for v in graph::graph_pass(&graph_files, rules) {
            let Some(idx) = inputs.iter().position(|&(_, rel, _)| rel == v.file) else {
                continue;
            };
            if !analyze::suppress(&mut analyses[idx].allows, &v.rule, v.line) {
                analyses[idx].violations.push(v);
            }
        }
    }

    let mut outcome = LintOutcome::default();
    for ((_, rel, _), analysis) in inputs.iter().zip(analyses) {
        outcome.violations.extend(analysis.violations);
        outcome.allows.extend(analysis.allows);
        outcome.files_scanned.push((*rel).to_owned());
    }
    outcome
        .violations
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    outcome
        .allows
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    outcome
}

/// Rejects filters naming rules that don't exist.
fn validate_filter(set: &BTreeSet<String>) -> Result<(), String> {
    for id in set {
        if id != "A00" && rules::rule_by_id(id).is_none() {
            return Err(format!(
                "unknown rule {id:?} (known: {})",
                RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
            ));
        }
    }
    Ok(())
}

/// Lints one source file as if it lived in `crate_name`'s `src/` tree.
///
/// Only the file's *name* is used as its reported path, so fixture files
/// under `tests/fixtures/` are analyzed in full rather than skipped as
/// test support.
///
/// # Errors
///
/// Returns an error string on read failures or unknown rule IDs in the
/// filter.
pub fn lint_file(
    path: &Path,
    crate_name: &str,
    rules: Option<&BTreeSet<String>>,
) -> Result<LintOutcome, String> {
    if let Some(set) = rules {
        validate_filter(set)?;
    }
    let src = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let rel = path.file_name().map_or_else(
        || path.display().to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    Ok(analyze_loaded(
        &[(crate_name, rel.as_str(), src.as_str())],
        rules,
    ))
}

/// Parses a `--rules` filter value (`"D01,D02"`) into a rule set.
///
/// # Errors
///
/// Returns an error string when the list is empty.
pub fn parse_rule_filter(value: &str) -> Result<BTreeSet<String>, String> {
    let set: BTreeSet<String> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if set.is_empty() {
        return Err("empty --rules filter".to_owned());
    }
    Ok(set)
}

/// Locates the workspace root: `dir` itself or the nearest ancestor with
/// a `Cargo.toml` declaring `[workspace]`.
pub fn find_workspace_root(dir: &Path) -> Option<PathBuf> {
    let mut cur = Some(dir);
    while let Some(d) = cur {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d.to_owned());
                }
            }
        }
        cur = d.parent();
    }
    None
}
