//! Item-level parsing over the token stream: `fn` items with their
//! enclosing `impl`/`trait` type and body spans — just enough structure
//! for the workspace call graph of [`crate::graph`].
//!
//! Like the lexer, this is deliberately approximate: it never resolves
//! types, it treats a trait impl's methods as methods of the *type* the
//! impl is `for`, and it records nested functions as free functions.
//! Everything it cannot see is caught belt-and-braces by the integration
//! determinism and equivalence tests.

use crate::lexer::{Tok, TokKind};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name (`FlatModel` for methods of
    /// `impl FlatModel` *and* of `impl Display for FlatModel`), `None`
    /// for free functions.
    pub self_type: Option<String>,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token indices of the body `{` and its matching `}`; `None` for
    /// bodyless declarations (trait methods, extern).
    pub body: Option<(usize, usize)>,
}

/// Parses every `fn` item out of a lexed file, in source order.
pub fn parse_items(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    parse_scope(toks, 0, toks.len(), None, &mut out);
    out.sort_by_key(|f| f.sig_start);
    out
}

/// Scans `[i, end)` for item keywords, recursing into `mod`/`impl`/
/// `trait`/`fn` bodies with the right `self_type` context. Ordinary
/// braces (struct bodies, expressions) are scanned flat — item keywords
/// cannot hide from the scan, and a wrong brace guess only mislabels
/// `self_type`, never drops an item.
fn parse_scope(
    toks: &[Tok],
    mut i: usize,
    end: usize,
    self_type: Option<&str>,
    out: &mut Vec<FnItem>,
) {
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Punct('#') {
            i = skip_attr_or_hash(toks, i);
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" | "trait" => {
                if let Some((ty, open)) = parse_impl_header(toks, i, end) {
                    let close = match_brace_fwd(toks, open, end);
                    parse_scope(toks, open + 1, close, ty.as_deref(), out);
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
            "mod" => {
                // `mod name { ... }` keeps the current (None) context;
                // `mod name;` is just skipped.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident) {
                    j += 1;
                }
                if toks.get(j).map(|t| t.kind) == Some(TokKind::Punct('{')) {
                    let close = match_brace_fwd(toks, j, end);
                    parse_scope(toks, j + 1, close, None, out);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            "fn" => {
                let Some(name_tok) = toks.get(i + 1) else {
                    i += 1;
                    continue;
                };
                // `fn(` is a function-pointer type, not an item.
                if name_tok.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let (body, after) = find_fn_body(toks, i, end);
                out.push(FnItem {
                    name: name_tok.text.clone(),
                    self_type: self_type.map(str::to_owned),
                    is_pub: fn_is_pub(toks, i),
                    line: t.line,
                    sig_start: i,
                    body,
                });
                if let Some((open, close)) = body {
                    // Nested fns are free functions of the same file.
                    parse_scope(toks, open + 1, close, None, out);
                }
                i = after;
            }
            _ => i += 1,
        }
    }
}

/// Parses an `impl`/`trait` header starting at `i`, returning the subject
/// type name and the index of the body `{`. For `impl Trait for Type` the
/// subject is `Type`; generic arguments are never mistaken for it.
fn parse_impl_header(toks: &[Tok], i: usize, end: usize) -> Option<(Option<String>, usize)> {
    let mut j = i + 1;
    if toks.get(j).map(|t| t.kind) == Some(TokKind::Punct('<')) {
        j = skip_angles(toks, j, end);
    }
    let mut ty: Option<String> = None;
    let mut in_where = false;
    while j < end {
        match toks[j].kind {
            TokKind::Punct('{') => {
                return Some((ty, j));
            }
            TokKind::Punct(';') => return None, // `impl Foo;` is not Rust, bail
            TokKind::Punct('<') => j = skip_angles(toks, j, end),
            TokKind::Ident if toks[j].text == "for" => {
                ty = None;
                in_where = false;
                j += 1;
            }
            TokKind::Ident if toks[j].text == "where" => {
                in_where = true;
                j += 1;
            }
            TokKind::Ident
                if !in_where
                    && ty.is_none()
                    && !matches!(toks[j].text.as_str(), "dyn" | "mut" | "const" | "unsafe") =>
            {
                // First path at this position: walk `a::b::C`, keep the
                // last segment.
                let (last, next) = walk_path(toks, j, end);
                ty = Some(last);
                j = next;
            }
            _ => j += 1,
        }
    }
    None
}

/// Walks a `::`-separated ident path starting at ident `j`; returns the
/// last segment and the index after the path (generic args untouched).
fn walk_path(toks: &[Tok], mut j: usize, end: usize) -> (String, usize) {
    let mut last = toks[j].text.clone();
    j += 1;
    while j + 2 < end
        && toks[j].kind == TokKind::Punct(':')
        && toks[j + 1].kind == TokKind::Punct(':')
        && toks[j + 2].kind == TokKind::Ident
    {
        last.clone_from(&toks[j + 2].text);
        j += 3;
    }
    (last, j)
}

/// Finds the body of the `fn` at `i`: `(Some((open, close)), after)` for
/// a braced body, `(None, after)` for a `;`-terminated declaration.
fn find_fn_body(toks: &[Tok], i: usize, end: usize) -> (Option<(usize, usize)>, usize) {
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < end {
        match toks[j].kind {
            TokKind::Punct('(' | '[') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct('<') if depth == 0 => {
                j = skip_angles(toks, j, end);
                continue;
            }
            TokKind::Punct(';') if depth == 0 => return (None, j + 1),
            TokKind::Punct('{') if depth == 0 => {
                let close = match_brace_fwd(toks, j, end);
                return (Some((j, close)), close + 1);
            }
            _ => {}
        }
        j += 1;
    }
    (None, j)
}

/// Was the `fn` at `i` declared `pub` (with any restriction)? Walks back
/// over `const`/`async`/`unsafe`/`extern "C"` qualifiers.
fn fn_is_pub(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let p = &toks[j - 1];
        match p.kind {
            TokKind::Ident
                if matches!(p.text.as_str(), "const" | "async" | "unsafe" | "extern") =>
            {
                j -= 1;
            }
            TokKind::Literal => j -= 1, // the "C" of extern "C"
            TokKind::Punct(')') => {
                // `pub(crate)` / `pub(in path)`: walk to the `(`.
                let mut depth = 0i32;
                while j > 0 {
                    match toks[j - 1].kind {
                        TokKind::Punct(')') => depth += 1,
                        TokKind::Punct('(') => {
                            depth -= 1;
                            if depth == 0 {
                                j -= 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
            }
            TokKind::Ident if p.text == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Index just past the `]` of the attribute at `i` (`#`), or past a bare
/// `#` that opens no attribute.
fn skip_attr_or_hash(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if toks.get(j).map(|t| t.kind) == Some(TokKind::Punct('!')) {
        j += 1;
    }
    if toks.get(j).map(|t| t.kind) != Some(TokKind::Punct('[')) {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index after the `>` matching the `<` at `j`; `->` arrows inside are
/// never counted as closers.
fn skip_angles(toks: &[Tok], mut j: usize, end: usize) -> usize {
    let mut depth = 0i32;
    while j < end {
        match toks[j].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') if j > 0 && toks[j - 1].kind == TokKind::Punct('-') => {}
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            // A `(` inside generics (`Fn(usize) -> u8`): skip the group so
            // comparison operators inside default exprs can't confuse us.
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index of the `}` matching the `{` at `open` (or the last token when
/// unbalanced — tolerated like everything else).
pub fn match_brace_fwd(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        match toks[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    end.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src).tokens)
    }

    /// `Type::name` for methods, `name` for free functions.
    fn display(f: &FnItem) -> String {
        match &f.self_type {
            Some(t) => format!("{t}::{}", f.name),
            None => f.name.clone(),
        }
    }

    #[test]
    fn free_and_method_fns_are_found() {
        let src = "pub fn free() {}\n\
                   struct S;\n\
                   impl S { fn method(&self) -> u8 { 0 } pub(crate) fn m2() {} }\n";
        let got = items(src);
        assert_eq!(got.len(), 3);
        assert_eq!(display(&got[0]), "free");
        assert!(got[0].is_pub);
        assert_eq!(display(&got[1]), "S::method");
        assert!(!got[1].is_pub);
        assert_eq!(display(&got[2]), "S::m2");
        assert!(got[2].is_pub);
    }

    #[test]
    fn trait_impl_methods_belong_to_the_type() {
        let src = "impl fmt::Display for StoreError {\n\
                   fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n}\n\
                   impl<R: Read> FrameReader<R> { pub fn next_block(&mut self) {} }\n";
        let got = items(src);
        assert_eq!(display(&got[0]), "StoreError::fmt");
        assert_eq!(display(&got[1]), "FrameReader::next_block");
        assert!(got[1].is_pub);
    }

    #[test]
    fn generic_args_are_not_the_impl_type() {
        let got = items("impl Wrapper<Inner, Other> { fn f() {} }");
        assert_eq!(display(&got[0]), "Wrapper::f");
    }

    #[test]
    fn trait_default_methods_and_decls() {
        let src = "trait World { fn visit(&self) -> u8; fn name(&self) -> &str { \"w\" } }";
        let got = items(src);
        assert_eq!(display(&got[0]), "World::visit");
        assert!(got[0].body.is_none());
        assert_eq!(display(&got[1]), "World::name");
        assert!(got[1].body.is_some());
    }

    #[test]
    fn nested_and_module_fns() {
        let src = "mod inner { pub fn deep() { fn nested() {} nested(); } }";
        let got = items(src);
        assert_eq!(display(&got[0]), "deep");
        assert_eq!(display(&got[1]), "nested");
        assert!(got[1].self_type.is_none());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let got = items("struct S { cb: fn(usize) -> u8 } fn real() {}");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "real");
    }

    #[test]
    fn where_clause_bounds_are_not_the_type() {
        let got = items("impl<T> Holder<T> where T: Clone { fn get(&self) {} }");
        assert_eq!(display(&got[0]), "Holder::get");
    }

    #[test]
    fn generic_signatures_find_their_bodies() {
        let src = "fn collect_all<I: IntoIterator<Item = String>>(it: I) -> Vec<String> { it.into_iter().collect() }";
        let got = items(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].body.is_some());
    }
}
