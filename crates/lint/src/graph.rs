//! Workspace call graph and the graph-aware rule families.
//!
//! Built on the item parser of [`crate::items`], the graph connects every
//! `fn` in the workspace by *name-based* call resolution — free calls
//! resolve same-crate-first, `Type::method` by `(type, name)`, `.method()`
//! to every impl fn of that name. Resolution is an over-approximation
//! (no type inference), which is the safe direction for reachability: a
//! false edge can only make P02 report a site it might have skipped.
//!
//! Three rule families run over the graph:
//!
//! * **P02** — implicit panic sites (indexing, `.split_at`, integer `/`
//!   `%`, panic/assert macros) in library code, reported only when the
//!   containing fn is reachable from a registered public entry point,
//!   with the shortest call path attached.
//! * **H01** — allocating calls inside registered hot functions or their
//!   callees to depth 2, excluding setup-named callees and cold error
//!   paths (`Err(..)` / `.map_err(..)` arguments).
//! * **D06** — order-sensitive `f64` accumulation outside the canonical
//!   reduction helpers, at `Severity::Warning`.

use crate::analyze::{is_test_path, test_line_ranges, Violation};
use crate::items::{match_brace_fwd, parse_items, FnItem};
use crate::lexer::{lex, Tok, TokKind};
use crate::registry::{
    matches as registry_matches, CANONICAL_REDUCERS, ENTRY_POINTS, HOT_FUNCTIONS, SETUP_PREFIXES,
};
use crate::rules::{rule_by_id, Severity};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One source file handed to the graph pass.
#[derive(Debug)]
pub struct GraphFile<'a> {
    /// Directory name under `crates/` (`"root"` for the top package).
    pub crate_name: &'a str,
    /// Workspace-relative path used in reports.
    pub rel_path: &'a str,
    /// Full source text.
    pub src: &'a str,
}

/// Integer primitive type names (division evidence).
const INT_TYPES: &[&str] = &[
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

/// Float primitive type names (D06 evidence).
const FLOAT_TYPES: &[&str] = &["f32", "f64"];

/// Owned-buffer type names (H01 `.clone()` evidence).
const OWNED_TYPES: &[&str] = &["String", "Vec", "PathBuf"];

/// Keywords that can precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "fn",
    "in", "move", "ref", "mut", "pub", "use", "mod", "impl", "trait", "struct", "enum", "where",
    "as", "dyn", "unsafe", "async", "await", "const", "static", "type", "crate", "super", "true",
    "false", "yield",
];

/// Method names shared with std so widely that a `.name()` edge would be
/// noise rather than signal; calls to these never create edges. Workspace
/// methods with one of these names must be reached by `Type::name` form
/// to participate in the graph.
const UBIQUITOUS_METHODS: &[&str] = &[
    "clone",
    "len",
    "is_empty",
    "get",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "iter",
    "into_iter",
    "next",
    "fmt",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "from",
    "into",
    "write",
    "read",
    "flush",
    "extend",
    "clear",
    "as_str",
    "as_ref",
    "as_mut",
    "to_owned",
    "to_string",
    "to_vec",
    "min",
    "max",
    "drop",
    "parse",
    "build",
    "append",
    "take",
    "label",
];

/// Panic-family macros: the macro itself is the P02 site.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Assert-family macros: P02 sites in release builds.
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// Debug-only assertions: compiled out of release builds, never a site.
const DEBUG_ASSERT_MACROS: &[&str] = &["debug_assert", "debug_assert_eq", "debug_assert_ne"];

/// One `fn` node in the workspace graph.
struct Node {
    krate: String,
    file_idx: usize,
    name: String,
    self_type: Option<String>,
    is_pub: bool,
    /// `fn` keyword token index and body token range in the file stream.
    sig_start: usize,
    body: Option<(usize, usize)>,
}

impl Node {
    /// `crate::Type::name` / `crate::name` for reports and call paths.
    fn display(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{}::{t}::{}", self.krate, self.name),
            None => format!("{}::{}", self.krate, self.name),
        }
    }
}

/// Per-file lexed context shared by all passes.
struct FileCtx {
    rel: String,
    toks: Vec<Tok>,
    lines: Vec<String>,
    /// All items of the file (used for nested-body exclusion).
    items: Vec<FnItem>,
}

struct Graph {
    files: Vec<FileCtx>,
    nodes: Vec<Node>,
    /// Sorted, deduplicated out-edges per node.
    adj: Vec<Vec<usize>>,
}

/// Runs the graph-aware rules (P02/H01/D06) over the given files.
///
/// Findings come back unsorted and unsuppressed — the caller applies
/// allow annotations and merges with the per-file pass.
pub fn graph_pass(files: &[GraphFile<'_>], enabled: Option<&BTreeSet<String>>) -> Vec<Violation> {
    let rule_on = |id: &str, krate: &str| {
        rule_by_id(id).is_some_and(|r| r.scope.applies_to(krate))
            && enabled.is_none_or(|set| set.contains(id))
    };

    let g = build_graph(files);
    let (dist, parent) = reach_from_entries(&g);
    let mut out = Vec::new();

    // ---- P02: panic sites in entry-reachable fns.
    for (id, node) in g.nodes.iter().enumerate() {
        if !rule_on("P02", &node.krate) || dist[id].is_none() {
            continue;
        }
        let Some(body) = node.body else { continue };
        let ctx = &g.files[node.file_idx];
        let path = call_path(&g, &parent, id);
        let entry = path.first().cloned().unwrap_or_default();
        let hops = path.len() - 1;
        let via = if hops == 0 {
            format!("entry point {entry}")
        } else {
            format!("{entry} ({hops} call{})", if hops == 1 { "" } else { "s" })
        };
        for site in panic_sites(ctx, node, body) {
            out.push(violation(
                "P02",
                ctx,
                site.line,
                format!("{} — reachable from {via}", site.what),
                path.clone(),
            ));
        }
    }

    // ---- H01: allocations in hot functions and callees to depth 2.
    // Dedup by site: a token flagged via two hot roots keeps the
    // shallowest (then first-seen) attribution.
    let mut hot_findings: BTreeMap<(usize, usize), (usize, Violation)> = BTreeMap::new();
    for (root, node) in g.nodes.iter().enumerate() {
        if !registry_matches(
            HOT_FUNCTIONS,
            &node.krate,
            node.self_type.as_deref(),
            &node.name,
        ) {
            continue;
        }
        for (id, depth, path) in hot_closure(&g, root) {
            let member = &g.nodes[id];
            if !rule_on("H01", &member.krate) {
                continue;
            }
            let Some(body) = member.body else { continue };
            let ctx = &g.files[member.file_idx];
            let path_names: Vec<String> = path.iter().map(|&n| g.nodes[n].display()).collect();
            for site in alloc_sites(ctx, body, member) {
                let key = (member.file_idx, site.tok);
                let at_depth = if depth == 0 {
                    "in hot function".to_owned()
                } else {
                    format!("at depth {depth} under hot function")
                };
                let v = violation(
                    "H01",
                    ctx,
                    site.line,
                    format!("{} {at_depth} {}", site.what, g.nodes[root].display()),
                    path_names.clone(),
                );
                match hot_findings.get(&key) {
                    Some((d, _)) if *d <= depth => {}
                    _ => {
                        hot_findings.insert(key, (depth, v));
                    }
                }
            }
        }
    }
    out.extend(hot_findings.into_values().map(|(_, v)| v));

    // ---- D06: order-sensitive float accumulation.
    for node in &g.nodes {
        if !rule_on("D06", &node.krate)
            || registry_matches(
                CANONICAL_REDUCERS,
                &node.krate,
                node.self_type.as_deref(),
                &node.name,
            )
        {
            continue;
        }
        let Some(body) = node.body else { continue };
        let ctx = &g.files[node.file_idx];
        for site in accumulation_sites(ctx, node, body) {
            out.push(violation(
                "D06",
                ctx,
                site.line,
                format!(
                    "{} in {} (move into a canonical reducer)",
                    site.what,
                    node.display()
                ),
                Vec::new(),
            ));
        }
    }

    out
}

fn violation(
    rule: &str,
    ctx: &FileCtx,
    line: u32,
    message: String,
    call_path: Vec<String>,
) -> Violation {
    Violation {
        rule: rule.to_owned(),
        severity: rule_by_id(rule).map_or(Severity::Error, |r| r.severity),
        file: ctx.rel.clone(),
        line,
        message,
        snippet: ctx
            .lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default(),
        call_path,
    }
}

// ---------------------------------------------------------------- graph

fn build_graph(files: &[GraphFile<'_>]) -> Graph {
    let mut ctxs = Vec::with_capacity(files.len());
    let mut nodes: Vec<Node> = Vec::new();
    for (file_idx, f) in files.iter().enumerate() {
        let lexed = lex(f.src);
        let items = parse_items(&lexed.tokens);
        let test_file = is_test_path(f.rel_path);
        if !test_file {
            let test_ranges = test_line_ranges(&lexed.tokens);
            let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);
            for it in &items {
                if in_test(it.line) {
                    continue;
                }
                nodes.push(Node {
                    krate: f.crate_name.to_owned(),
                    file_idx,
                    name: it.name.clone(),
                    self_type: it.self_type.clone(),
                    is_pub: it.is_pub,
                    sig_start: it.sig_start,
                    body: it.body,
                });
            }
        }
        ctxs.push(FileCtx {
            rel: f.rel_path.to_owned(),
            toks: lexed.tokens,
            lines: f.src.lines().map(str::to_owned).collect(),
            items,
        });
    }

    // Name-resolution maps. All values are ascending node ids, so edge
    // order is deterministic by construction.
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut method_by_type: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut method_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, n) in nodes.iter().enumerate() {
        match &n.self_type {
            None => free_by_name.entry(&n.name).or_default().push(id),
            Some(t) => {
                method_by_type.entry((t, &n.name)).or_default().push(id);
                method_by_name.entry(&n.name).or_default().push(id);
            }
        }
    }

    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
    for (id, n) in nodes.iter().enumerate() {
        let Some((open, close)) = n.body else {
            continue;
        };
        let ctx = &ctxs[n.file_idx];
        let excl = nested_ranges(&ctx.items, open, close);
        let toks = &ctx.toks;
        let mut i = open + 1;
        while i < close {
            if let Some(&(_, skip_to)) = excl.iter().find(|&&(a, b)| i >= a && i <= b) {
                i = skip_to + 1;
                continue;
            }
            let t = &toks[i];
            if t.kind != TokKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
                i += 1;
                continue;
            }
            if !is_call_at(toks, i) {
                i += 1;
                continue;
            }
            let name = t.text.as_str();
            let mut link = |targets: &[usize]| {
                for &tgt in targets {
                    if tgt != id {
                        adj[id].insert(tgt);
                    }
                }
            };
            if i > 0 && toks[i - 1].kind == TokKind::Punct('.') {
                // `.method(...)` — every impl fn of that name, unless the
                // name is too common to carry signal.
                if !UBIQUITOUS_METHODS.contains(&name) {
                    if let Some(tgts) = method_by_name.get(name) {
                        link(tgts);
                    }
                }
            } else if i >= 3
                && toks[i - 1].kind == TokKind::Punct(':')
                && toks[i - 2].kind == TokKind::Punct(':')
                && toks[i - 3].kind == TokKind::Ident
            {
                // `Qual::name(...)` — a type's associated fn, or a
                // module-qualified free fn.
                let mut qual = toks[i - 3].text.as_str();
                if qual == "Self" {
                    qual = n.self_type.as_deref().unwrap_or("Self");
                }
                if let Some(tgts) = method_by_type.get(&(qual, name)) {
                    link(tgts);
                } else if let Some(tgts) = free_by_name.get(name) {
                    link(tgts);
                }
            } else if let Some(tgts) = free_by_name.get(name) {
                // Bare `name(...)` — same-crate candidates win when any
                // exist (cross-crate free calls need a path anyway).
                let same: Vec<usize> = tgts
                    .iter()
                    .copied()
                    .filter(|&tid| nodes[tid].krate == n.krate)
                    .collect();
                link(if same.is_empty() { tgts } else { &same });
            }
            i += 1;
        }
    }

    Graph {
        files: ctxs,
        nodes,
        adj: adj.into_iter().map(|s| s.into_iter().collect()).collect(),
    }
}

/// Is the ident at `i` the callee of a call expression — followed by `(`
/// directly or through a `::<...>` turbofish — and not a macro name?
fn is_call_at(toks: &[Tok], i: usize) -> bool {
    match toks.get(i + 1).map(|t| t.kind) {
        Some(TokKind::Punct('(')) => true,
        Some(TokKind::Punct('!')) => false,
        Some(TokKind::Punct(':'))
            if toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Punct(':'))
                && toks.get(i + 3).map(|t| t.kind) == Some(TokKind::Punct('<')) =>
        {
            let after = skip_angles_from(toks, i + 3);
            toks.get(after).map(|t| t.kind) == Some(TokKind::Punct('('))
        }
        _ => false,
    }
}

/// Index after the `>` matching the `<` at `j` (`->` never closes).
fn skip_angles_from(toks: &[Tok], mut j: usize) -> usize {
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') if j > 0 && toks[j - 1].kind == TokKind::Punct('-') => {}
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Token ranges of items nested inside `(open, close)` — nested fns are
/// their own nodes, so the enclosing fn's scan skips them.
fn nested_ranges(items: &[FnItem], open: usize, close: usize) -> Vec<(usize, usize)> {
    items
        .iter()
        .filter(|it| it.sig_start > open && it.sig_start < close)
        .filter_map(|it| it.body.map(|(_, c)| (it.sig_start, c)))
        .collect()
}

/// Multi-source BFS from the registered entry points; returns hop counts
/// and BFS parents (entry nodes have themselves as root, parent `None`).
fn reach_from_entries(g: &Graph) -> (Vec<Option<u32>>, Vec<Option<usize>>) {
    let mut dist: Vec<Option<u32>> = vec![None; g.nodes.len()];
    let mut parent: Vec<Option<usize>> = vec![None; g.nodes.len()];
    let mut q = VecDeque::new();
    for (id, n) in g.nodes.iter().enumerate() {
        let entry = ENTRY_POINTS.iter().any(|&(rk, rt, rn)| {
            rk == n.krate
                && rt == n.self_type.as_deref().unwrap_or("")
                && (rn == n.name || (rn == "*" && n.is_pub))
        });
        if entry {
            dist[id] = Some(0);
            q.push_back(id);
        }
    }
    while let Some(v) = q.pop_front() {
        for &m in &g.adj[v] {
            if dist[m].is_none() {
                dist[m] = dist[v].map(|d| d + 1);
                parent[m] = Some(v);
                q.push_back(m);
            }
        }
    }
    (dist, parent)
}

/// Entry → … → `id` display names along BFS parents.
fn call_path(g: &Graph, parent: &[Option<usize>], id: usize) -> Vec<String> {
    let mut path = vec![id];
    let mut cur = id;
    while let Some(p) = parent[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    path.into_iter().map(|n| g.nodes[n].display()).collect()
}

/// Breadth-first closure of a hot root to depth 2, skipping setup-named
/// callees. Yields `(node, depth, path-from-root)` in deterministic order.
fn hot_closure(g: &Graph, root: usize) -> Vec<(usize, usize, Vec<usize>)> {
    let mut out = vec![(root, 0usize, vec![root])];
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    seen.insert(root);
    let mut frontier = vec![(root, vec![root])];
    for depth in 1..=2usize {
        let mut next = Vec::new();
        for (v, path) in frontier {
            for &m in &g.adj[v] {
                if seen.contains(&m) || is_setup_name(&g.nodes[m].name) {
                    continue;
                }
                seen.insert(m);
                let mut p = path.clone();
                p.push(m);
                out.push((m, depth, p.clone()));
                next.push((m, p));
            }
        }
        frontier = next;
    }
    out
}

/// Does a callee name mark constructor/pre-sizing setup code?
fn is_setup_name(name: &str) -> bool {
    SETUP_PREFIXES.iter().any(|p| {
        if p.ends_with('_') {
            name.starts_with(p)
        } else {
            name == *p || name.strip_prefix(p).is_some_and(|r| r.starts_with('_'))
        }
    })
}

// ---------------------------------------------------------------- sites

struct Site {
    tok: usize,
    line: u32,
    what: String,
}

/// Paren-delimited macro argument ranges for macros in `names`.
fn macro_arg_ranges(
    toks: &[Tok],
    open: usize,
    close: usize,
    names: &[&str],
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = open;
    while i + 2 < close {
        if toks[i].kind == TokKind::Ident
            && names.contains(&toks[i].text.as_str())
            && toks[i + 1].kind == TokKind::Punct('!')
        {
            let d = i + 2;
            let (od, cd) = match toks[d].kind {
                TokKind::Punct('(') => ('(', ')'),
                TokKind::Punct('[') => ('[', ']'),
                TokKind::Punct('{') => ('{', '}'),
                _ => {
                    i += 1;
                    continue;
                }
            };
            let end = match_delim_fwd(toks, d, close, od, cd);
            out.push((d, end));
            i = d + 1;
            continue;
        }
        i += 1;
    }
    out
}

fn match_delim_fwd(toks: &[Tok], from: usize, close: usize, od: char, cd: char) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < close {
        if toks[j].kind == TokKind::Punct(od) {
            depth += 1;
        } else if toks[j].kind == TokKind::Punct(cd) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    close
}

fn in_ranges(i: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(a, b)| i > a && i < b)
}

/// `Err(...)` and `.map_err(...)` argument ranges — cold error paths
/// where H01 tolerates allocation.
fn cold_error_ranges(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = open;
    while i + 1 < close {
        if toks[i].kind == TokKind::Ident
            && (toks[i].text == "Err"
                || toks[i].text == "map_err"
                || toks[i].text == "ok_or_else"
                || toks[i].text == "unwrap_or_else")
            && toks[i + 1].kind == TokKind::Punct('(')
        {
            let end = match_delim_fwd(toks, i + 1, close, '(', ')');
            out.push((i + 1, end));
        }
        i += 1;
    }
    out
}

/// Collects per-fn name evidence for the heuristics: which locals/params
/// are integers, floats, or owned buffers.
struct Evidence {
    ints: BTreeSet<String>,
    floats: BTreeSet<String>,
    owned: BTreeSet<String>,
}

fn collect_evidence(toks: &[Tok], sig_start: usize, open: usize, close: usize) -> Evidence {
    let mut ev = Evidence {
        ints: BTreeSet::new(),
        floats: BTreeSet::new(),
        owned: BTreeSet::new(),
    };
    // Signature params: `name: Type`.
    let mut i = sig_start;
    while i + 2 < open {
        if toks[i].kind == TokKind::Ident
            && toks[i + 1].kind == TokKind::Punct(':')
            && toks.get(i + 2).map(|t| t.kind) != Some(TokKind::Punct(':'))
            && (i == 0 || toks[i - 1].kind != TokKind::Punct(':'))
        {
            classify_type_tokens(&toks[i + 2..(i + 8).min(open)], &toks[i].text, &mut ev);
        }
        i += 1;
    }
    // `let [mut] name …` bindings.
    let mut i = open;
    while i < close {
        if toks[i].kind == TokKind::Ident && toks[i].text == "let" {
            let mut j = i + 1;
            if toks
                .get(j)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == "mut")
            {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident) {
                let name = toks[j].text.clone();
                // Optional `: Type`.
                if toks.get(j + 1).map(|t| t.kind) == Some(TokKind::Punct(':')) {
                    classify_type_tokens(&toks[j + 2..(j + 8).min(close)], &name, &mut ev);
                }
                // `= rhs ;` — scan the initializer.
                let mut k = j + 1;
                let mut depth = 0i32;
                while k < close {
                    match toks[k].kind {
                        TokKind::Punct('(' | '[' | '{') => depth += 1,
                        TokKind::Punct(')' | ']' | '}') => depth -= 1,
                        TokKind::Punct(';') if depth <= 0 => break,
                        TokKind::Punct('=') if depth == 0 => {
                            let end = stmt_end(toks, k + 1, close);
                            classify_rhs_tokens(&toks[k + 1..end], &name, &mut ev);
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        // `for name in <range>` — the loop variable is an integer when
        // the iterated expression is a literal range.
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "for"
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == "in")
        {
            let header_end = (i + 16).min(close);
            let ranged = toks[i + 3..header_end]
                .windows(2)
                .any(|w| w[0].kind == TokKind::Punct('.') && w[1].kind == TokKind::Punct('.'));
            if ranged {
                ev.ints.insert(toks[i + 1].text.clone());
            }
        }
        i += 1;
    }
    ev
}

fn stmt_end(toks: &[Tok], from: usize, close: usize) -> usize {
    let mut depth = 0i32;
    let mut k = from;
    while k < close {
        match toks[k].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    close
}

fn classify_type_tokens(ty: &[Tok], name: &str, ev: &mut Evidence) {
    for t in ty {
        if matches!(t.kind, TokKind::Punct(',' | ';' | ')' | '=')) {
            break;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let s = t.text.as_str();
        if INT_TYPES.contains(&s) {
            ev.ints.insert(name.to_owned());
            return;
        }
        if FLOAT_TYPES.contains(&s) {
            ev.floats.insert(name.to_owned());
            return;
        }
        if OWNED_TYPES.contains(&s) {
            ev.owned.insert(name.to_owned());
            return;
        }
    }
}

fn classify_rhs_tokens(rhs: &[Tok], name: &str, ev: &mut Evidence) {
    let mut is_float = false;
    let mut is_int = false;
    let mut is_owned = false;
    for (k, t) in rhs.iter().enumerate() {
        match t.kind {
            TokKind::Literal if t.is_float_literal() => is_float = true,
            TokKind::Literal if t.is_int_literal() => is_int = true,
            TokKind::Ident => {
                let s = t.text.as_str();
                if s == "as" {
                    if let Some(ty) = rhs.get(k + 1) {
                        let ts = ty.text.as_str();
                        if FLOAT_TYPES.contains(&ts) {
                            is_float = true;
                        } else if INT_TYPES.contains(&ts) {
                            is_int = true;
                        }
                    }
                }
                if (s == "len" || s == "count")
                    && k > 0
                    && rhs[k - 1].kind == TokKind::Punct('.')
                    && rhs.get(k + 1).map(|n| n.kind) == Some(TokKind::Punct('('))
                {
                    is_int = true;
                }
                if OWNED_TYPES.contains(&s)
                    || s == "vec"
                    || s == "format"
                    || s == "to_string"
                    || s == "to_owned"
                    || s == "to_vec"
                {
                    is_owned = true;
                }
            }
            _ => {}
        }
    }
    if is_float {
        ev.floats.insert(name.to_owned());
    } else if is_int {
        ev.ints.insert(name.to_owned());
    }
    if is_owned && !is_float {
        ev.owned.insert(name.to_owned());
    }
}

/// `(receiver-last-ident, loop-var)` pairs made safe by the
/// `for i in 0..xs.len()` idiom: `xs[i]` inside that loop cannot panic.
fn safe_index_pairs(toks: &[Tok], open: usize, close: usize) -> BTreeSet<(String, String)> {
    let mut out = BTreeSet::new();
    let mut i = open;
    while i + 8 < close {
        // for <v> in 0 . . <recv …> . len ( )
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "for"
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 2].text == "in"
            && toks[i + 3].is_int_literal()
            && toks[i + 3].text == "0"
            && toks[i + 4].kind == TokKind::Punct('.')
            && toks[i + 5].kind == TokKind::Punct('.')
        {
            // Walk the receiver path to a trailing `.len()`.
            let v = toks[i + 1].text.clone();
            let mut j = i + 6;
            let mut recv_last: Option<String> = None;
            while j + 3 < close && toks[j].kind == TokKind::Ident {
                if toks[j].text == "len"
                    && toks[j + 1].kind == TokKind::Punct('(')
                    && toks[j + 2].kind == TokKind::Punct(')')
                {
                    if let Some(r) = recv_last.take() {
                        out.insert((r, v.clone()));
                    }
                    break;
                }
                recv_last = Some(toks[j].text.clone());
                if toks.get(j + 1).map(|t| t.kind) == Some(TokKind::Punct('.')) {
                    j += 2;
                } else {
                    break;
                }
            }
        }
        i += 1;
    }
    out
}

/// P02 sites in one fn body.
fn panic_sites(ctx: &FileCtx, node: &Node, (open, close): (usize, usize)) -> Vec<Site> {
    let toks = &ctx.toks;
    let excl = nested_ranges(&ctx.items, open, close);
    let ev = collect_evidence(toks, node.sig_start, open, close);
    let safe = safe_index_pairs(toks, open, close);
    let mut shadow: Vec<&str> = DEBUG_ASSERT_MACROS.to_vec();
    shadow.extend_from_slice(PANIC_MACROS);
    shadow.extend_from_slice(ASSERT_MACROS);
    let shadowed = macro_arg_ranges(toks, open, close, &shadow);
    let mut out = Vec::new();

    let mut i = open + 1;
    while i < close {
        if let Some(&(_, skip_to)) = excl.iter().find(|&&(a, b)| i >= a && i <= b) {
            i = skip_to + 1;
            continue;
        }
        let t = &toks[i];
        match t.kind {
            // Panic/assert macros.
            TokKind::Ident
                if toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Punct('!'))
                    && (PANIC_MACROS.contains(&t.text.as_str())
                        || ASSERT_MACROS.contains(&t.text.as_str())) =>
            {
                let what = if PANIC_MACROS.contains(&t.text.as_str()) {
                    format!("explicit {}! panic", t.text)
                } else {
                    format!("{}! may panic", t.text)
                };
                out.push(Site {
                    tok: i,
                    line: t.line,
                    what,
                });
            }
            // `.split_at(` / `.split_at_mut(`.
            TokKind::Ident
                if (t.text == "split_at" || t.text == "split_at_mut")
                    && i > 0
                    && toks[i - 1].kind == TokKind::Punct('.')
                    && toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Punct('('))
                    && !in_ranges(i, &shadowed) =>
            {
                out.push(Site {
                    tok: i,
                    line: t.line,
                    what: format!(".{}() panics when mid > len", t.text),
                });
            }
            // Indexing `expr[...]`.
            TokKind::Punct('[')
                if i > 0
                    && matches!(toks[i - 1].kind, TokKind::Ident | TokKind::Punct(')' | ']'))
                    && !(toks[i - 1].kind == TokKind::Ident
                        && KEYWORDS.contains(&toks[i - 1].text.as_str()))
                    && !in_ranges(i, &shadowed)
                    && !safe_site(toks, i, &safe) =>
            {
                out.push(Site {
                    tok: i,
                    line: t.line,
                    what: "slice/array indexing may panic".to_owned(),
                });
            }
            // Integer `/` and `%`.
            TokKind::Punct('/' | '%')
                if i > 0
                    && matches!(
                        toks[i - 1].kind,
                        TokKind::Ident | TokKind::Literal | TokKind::Punct(')' | ']')
                    )
                    && !(toks[i - 1].kind == TokKind::Ident
                        && KEYWORDS.contains(&toks[i - 1].text.as_str())) =>
            {
                let op = if matches!(t.kind, TokKind::Punct('/')) {
                    "/"
                } else {
                    "%"
                };
                let mut d = i + 1;
                if toks.get(d).map(|n| n.kind) == Some(TokKind::Punct('=')) {
                    d += 1; // `/=` compound assignment
                }
                if !in_ranges(i, &shadowed) && divides_by_evidenced_int(toks, d, close, &ev) {
                    out.push(Site {
                        tok: i,
                        line: t.line,
                        what: format!("integer `{op}` may panic on zero divisor"),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    // One finding per (line, kind): `[s[2], s[3], …]` is one annotation's
    // worth of review, not seven.
    out.dedup_by(|a, b| a.line == b.line && a.what == b.what);
    out
}

/// Is `xs[i]` at the `[` token exempt via a `for i in 0..xs.len()` pair?
fn safe_site(toks: &[Tok], bracket: usize, safe: &BTreeSet<(String, String)>) -> bool {
    if safe.is_empty() || bracket == 0 {
        return false;
    }
    let recv = &toks[bracket - 1];
    let idx = toks.get(bracket + 1);
    let close = toks.get(bracket + 2);
    if recv.kind != TokKind::Ident {
        return false;
    }
    match (idx, close) {
        (Some(ix), Some(cl)) if ix.kind == TokKind::Ident && cl.kind == TokKind::Punct(']') => {
            safe.contains(&(recv.text.clone(), ix.text.clone()))
        }
        _ => false,
    }
}

/// Does the divisor expression starting at `d` carry integer evidence?
/// Literal divisors never report (a nonzero constant cannot panic; a
/// zero constant is a compile error).
fn divides_by_evidenced_int(toks: &[Tok], d: usize, close: usize, ev: &Evidence) -> bool {
    let Some(t) = toks.get(d) else { return false };
    match t.kind {
        TokKind::Literal => false,
        TokKind::Ident => {
            // `xs.len()` divisor — direct evidence, unless a trailing
            // cast (`xs.len() as f64`) makes the division float.
            if toks.get(d + 1).map(|n| n.kind) == Some(TokKind::Punct('.'))
                && toks.get(d + 2).is_some_and(|n| {
                    n.kind == TokKind::Ident && (n.text == "len" || n.text == "count")
                })
                && toks.get(d + 3).map(|n| n.kind) == Some(TokKind::Punct('('))
                && toks.get(d + 4).map(|n| n.kind) == Some(TokKind::Punct(')'))
            {
                let cast_to_float = toks
                    .get(d + 5)
                    .is_some_and(|n| n.kind == TokKind::Ident && n.text == "as")
                    && toks.get(d + 6).is_some_and(|ty| {
                        ty.kind == TokKind::Ident && FLOAT_TYPES.contains(&ty.text.as_str())
                    });
                return !cast_to_float;
            }
            // Method call or field access on the ident: not the plain
            // variable, no evidence.
            if toks.get(d + 1).map(|n| n.kind) == Some(TokKind::Punct('.')) {
                return false;
            }
            // A cast decides the arithmetic type: `x as f64` cannot
            // panic regardless of what `x` was.
            if toks
                .get(d + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && n.text == "as")
            {
                return toks.get(d + 2).is_some_and(|ty| {
                    ty.kind == TokKind::Ident && INT_TYPES.contains(&ty.text.as_str())
                });
            }
            ev.ints.contains(&t.text)
        }
        TokKind::Punct('(') => {
            let end = match_delim_fwd(toks, d, close, '(', ')');
            let inner = &toks[d + 1..end];
            if inner.iter().any(|t| {
                t.is_float_literal()
                    || (t.kind == TokKind::Ident && FLOAT_TYPES.contains(&t.text.as_str()))
            }) {
                return false;
            }
            inner.iter().enumerate().any(|(k, t)| {
                (t.kind == TokKind::Ident && ev.ints.contains(&t.text))
                    || (t.kind == TokKind::Ident
                        && (t.text == "len" || t.text == "count")
                        && k > 0
                        && inner[k - 1].kind == TokKind::Punct('.'))
            })
        }
        _ => false,
    }
}

/// H01 allocating-call sites in one fn body.
fn alloc_sites(ctx: &FileCtx, (open, close): (usize, usize), node: &Node) -> Vec<Site> {
    let toks = &ctx.toks;
    let excl = nested_ranges(&ctx.items, open, close);
    let ev = collect_evidence(toks, node.sig_start, open, close);
    let mut cold = cold_error_ranges(toks, open, close);
    let mut shadow: Vec<&str> = DEBUG_ASSERT_MACROS.to_vec();
    shadow.extend_from_slice(PANIC_MACROS);
    shadow.extend_from_slice(ASSERT_MACROS);
    cold.extend(macro_arg_ranges(toks, open, close, &shadow));
    let mut out = Vec::new();

    let mut i = open + 1;
    while i < close {
        if let Some(&(_, skip_to)) = excl.iter().find(|&&(a, b)| i >= a && i <= b) {
            i = skip_to + 1;
            continue;
        }
        if in_ranges(i, &cold) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let name = t.text.as_str();
            let nk = toks.get(i + 1).map(|n| n.kind);
            let what: Option<String> = match name {
                "format" | "vec" if nk == Some(TokKind::Punct('!')) => {
                    Some(format!("{name}! allocates"))
                }
                "new" | "from" | "with_capacity"
                    if i >= 3
                        && toks[i - 1].kind == TokKind::Punct(':')
                        && toks[i - 2].kind == TokKind::Punct(':')
                        && toks[i - 3].kind == TokKind::Ident
                        && matches!(toks[i - 3].text.as_str(), "String" | "Vec" | "Box")
                        && nk == Some(TokKind::Punct('(')) =>
                {
                    Some(format!(
                        "{}::{name}() allocates (move to setup)",
                        toks[i - 3].text
                    ))
                }
                "to_string" | "to_owned" | "to_vec"
                    if i > 0
                        && toks[i - 1].kind == TokKind::Punct('.')
                        && nk == Some(TokKind::Punct('(')) =>
                {
                    Some(format!(".{name}() allocates"))
                }
                "clone"
                    if i >= 2
                        && toks[i - 1].kind == TokKind::Punct('.')
                        && toks[i - 2].kind == TokKind::Ident
                        && ev.owned.contains(&toks[i - 2].text)
                        && nk == Some(TokKind::Punct('(')) =>
                {
                    Some(format!(".clone() of owned buffer `{}`", toks[i - 2].text))
                }
                _ => None,
            };
            if let Some(w) = what {
                out.push(Site {
                    tok: i,
                    line: t.line,
                    what: w,
                });
            }
        }
        i += 1;
    }
    out
}

/// D06 order-sensitive accumulation sites in one fn body.
fn accumulation_sites(ctx: &FileCtx, node: &Node, (open, close): (usize, usize)) -> Vec<Site> {
    let toks = &ctx.toks;
    let excl = nested_ranges(&ctx.items, open, close);
    let ev = collect_evidence(toks, node.sig_start, open, close);
    let loops = loop_body_ranges(toks, open, close);
    let mut out = Vec::new();

    let mut i = open + 1;
    while i < close {
        if let Some(&(_, skip_to)) = excl.iter().find(|&&(a, b)| i >= a && i <= b) {
            i = skip_to + 1;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            // `.sum::<f64>()` / `.sum::<f32>()`.
            if t.text == "sum"
                && i > 0
                && toks[i - 1].kind == TokKind::Punct('.')
                && toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Punct(':'))
                && toks.get(i + 2).map(|n| n.kind) == Some(TokKind::Punct(':'))
                && toks.get(i + 3).map(|n| n.kind) == Some(TokKind::Punct('<'))
                && toks.get(i + 4).is_some_and(|n| {
                    n.kind == TokKind::Ident && FLOAT_TYPES.contains(&n.text.as_str())
                })
            {
                out.push(Site {
                    tok: i,
                    line: t.line,
                    what: format!("order-sensitive .sum::<{}>()", toks[i + 4].text),
                });
            }
            // `.fold(<float literal>, …)`.
            if t.text == "fold"
                && i > 0
                && toks[i - 1].kind == TokKind::Punct('.')
                && toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Punct('('))
                && toks.get(i + 2).is_some_and(Tok::is_float_literal)
            {
                out.push(Site {
                    tok: i,
                    line: t.line,
                    what: "order-sensitive float .fold()".to_owned(),
                });
            }
            // `acc += …` on a float-evidenced local inside a loop.
            if ev.floats.contains(&t.text)
                && toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Punct('+'))
                && toks.get(i + 2).map(|n| n.kind) == Some(TokKind::Punct('='))
                && in_ranges(i, &loops)
                && (i == 0 || toks[i - 1].kind != TokKind::Punct('.'))
            {
                out.push(Site {
                    tok: i,
                    line: t.line,
                    what: format!("order-sensitive float accumulation `{} +=` in loop", t.text),
                });
            }
        }
        i += 1;
    }
    out
}

/// Token ranges of `for`/`while`/`loop` bodies inside a fn body.
fn loop_body_ranges(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            // First `{` at paren/bracket depth 0 opens the loop body
            // (struct literals are not legal bare in loop headers).
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < close {
                match toks[j].kind {
                    TokKind::Punct('(' | '[') => depth += 1,
                    TokKind::Punct(')' | ']') => depth -= 1,
                    TokKind::Punct('{') if depth == 0 => {
                        out.push((j, match_brace_fwd(toks, j, close)));
                        break;
                    }
                    TokKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(crate_name: &str, src: &str) -> Vec<Violation> {
        graph_pass(
            &[GraphFile {
                crate_name,
                rel_path: "lib.rs",
                src,
            }],
            None,
        )
    }

    const ENTRY: &str =
        "impl Pipeline { pub fn classify_bundle(&self, i: usize) -> u8 { helper(i) } }\n";

    #[test]
    fn p02_reports_reachable_indexing_with_path() {
        let src = format!(
            "{ENTRY}fn helper(i: usize) -> u8 {{ DATA[i] }}\nstatic DATA: [u8; 4] = [0; 4];\n"
        );
        let v = pass("core", &src);
        let p02: Vec<_> = v.iter().filter(|v| v.rule == "P02").collect();
        assert_eq!(p02.len(), 1, "{v:?}");
        assert_eq!(
            p02[0].call_path,
            vec![
                "core::Pipeline::classify_bundle".to_owned(),
                "core::helper".to_owned()
            ]
        );
    }

    #[test]
    fn p02_skips_unreachable_code() {
        let src = "fn orphan(i: usize, xs: &[u8]) -> u8 { xs[i] }\n";
        assert!(pass("core", src).iter().all(|v| v.rule != "P02"));
    }

    #[test]
    fn p02_safe_loop_idiom_is_exempt() {
        let src = format!(
            "{ENTRY}fn helper(_i: usize) -> u8 {{\n\
             let xs = [1u8, 2];\nlet mut acc = 0u8;\n\
             for k in 0..xs.len() {{ acc ^= xs[k]; }}\nacc\n}}\n"
        );
        let v = pass("core", &src);
        assert!(v.iter().all(|v| v.rule != "P02"), "{v:?}");
    }

    #[test]
    fn p02_division_needs_integer_evidence() {
        let float_div = format!("{ENTRY}fn helper(i: usize) -> f64 {{ let d = 0.5; 1.0 / d }}\n");
        assert!(pass("core", &float_div).iter().all(|v| v.rule != "P02"));
        let int_div = format!("{ENTRY}fn helper(n: usize) -> usize {{ 10 / n }}\n");
        let v = pass("core", &int_div);
        assert!(
            v.iter().any(|v| v.rule == "P02" && v.message.contains('/')),
            "{v:?}"
        );
    }

    #[test]
    fn p02_debug_assert_is_exempt_but_assert_is_a_site() {
        let src = format!("{ENTRY}fn helper(i: usize) -> u8 {{ debug_assert!(i < 4); 0 }}\n");
        assert!(pass("core", &src).iter().all(|v| v.rule != "P02"));
        let src2 = format!("{ENTRY}fn helper(i: usize) -> u8 {{ assert!(i < 4); 0 }}\n");
        assert!(pass("core", &src2).iter().any(|v| v.rule == "P02"));
    }

    #[test]
    fn h01_flags_allocation_in_hot_fn_and_depth_two() {
        let src = "\
impl FlatModel {
    pub fn predict_proba(&self) -> f64 { mid(); 0.0 }
}
fn mid() { deep(); }
fn deep() { let s = \"x\".to_string(); let _ = s; }
";
        let v = pass("ml", src);
        assert!(
            v.iter()
                .any(|v| v.rule == "H01" && v.message.contains("to_string")),
            "{v:?}"
        );
    }

    #[test]
    fn h01_setup_callees_and_cold_paths_are_exempt() {
        let src = "\
impl FlatModel {
    pub fn predict_proba(&self) -> Result<f64, String> {
        let t = with_buffers();
        if t < 0.0 { return Err(format!(\"bad {t}\")); }
        Ok(t)
    }
}
fn with_buffers() -> f64 { let v = vec![0u8; 8]; v.len() as f64 }
";
        let v = pass("ml", src);
        assert!(v.iter().all(|v| v.rule != "H01"), "{v:?}");
    }

    #[test]
    fn d06_sum_turbofish_and_loop_accumulation_warn() {
        let src = "\
pub fn centroid(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs { acc += *x; }
    acc + xs.iter().sum::<f64>()
}
";
        let v = pass("ml", src);
        let d06: Vec<_> = v.iter().filter(|v| v.rule == "D06").collect();
        assert_eq!(d06.len(), 2, "{v:?}");
        assert!(d06.iter().all(|v| v.severity == Severity::Warning));
    }

    #[test]
    fn d06_exempts_canonical_reducers_and_int_accumulation() {
        // `core::mean` is a registered canonical reducer; ordered
        // accumulation is its job.
        let src = "\
pub fn mean(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs { acc += *x; }
    acc
}
pub fn count_up(xs: &[u8]) -> u32 {
    let mut n = 0u32;
    for _x in xs { n += 1; }
    n
}
";
        let v = pass("core", src);
        assert!(v.iter().all(|v| v.rule != "D06"), "{v:?}");
    }

    #[test]
    fn entries_require_pub_for_wildcards() {
        let src = "\
impl ScoringService {
    fn internal(&self, xs: &[u8], i: usize) -> u8 { xs[i] }
}
";
        // Non-pub method of a `*` entry type is not a root, and nothing
        // reaches it.
        assert!(pass("serve", src).iter().all(|v| v.rule != "P02"));
    }
}
