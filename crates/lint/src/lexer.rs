//! A minimal Rust lexer: just enough token structure for the determinism
//! rules of this crate.
//!
//! The lexer distinguishes identifiers, single-character punctuation and
//! literals, tracks line numbers, and — crucially — never reports text
//! found inside string literals or comments as tokens, so a rule pattern
//! like `Instant :: now` cannot fire on documentation prose. Comments are
//! collected separately because `// kyp-lint: allow(...)` escape hatches
//! live in them.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `for`, `unsafe`, ...).
    Ident,
    /// One punctuation character (`.`, `:`, `(`, ...). Multi-character
    /// operators arrive as consecutive tokens (`::` is two `:`).
    Punct(char),
    /// A string/char/numeric literal (contents deliberately dropped).
    Literal,
    /// A lifetime marker (`'a`); kept distinct so `'static` is never
    /// mistaken for an identifier.
    Lifetime,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Identifier text, or the spelling of a *numeric* literal (needed
    /// by the float/integer evidence heuristics of the workspace rules);
    /// empty for punctuation and string/char literals.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this a numeric literal spelled as a float (`0.5`, `1e9`,
    /// `2f64`)? Hex/octal/binary literals and integer-suffixed literals
    /// (`0usize` — whose `e` is not an exponent) are never floats.
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Literal || self.text.is_empty() {
            return false;
        }
        let t = self.text.as_str();
        if t.starts_with("0x") || t.starts_with("0X") || t.starts_with("0b") || t.starts_with("0o")
        {
            return false;
        }
        const INT_SUFFIXES: &[&str] = &[
            "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        ];
        if INT_SUFFIXES.iter().any(|s| t.ends_with(s)) {
            return false;
        }
        t.contains('.') || t.contains(['e', 'E']) || t.ends_with("f32") || t.ends_with("f64")
    }

    /// Is this a numeric literal spelled as an integer?
    pub fn is_int_literal(&self) -> bool {
        self.kind == TokKind::Literal && !self.text.is_empty() && !self.is_float_literal()
    }
}

/// One comment with the line it *ends* on (block comments may span lines;
/// allow annotations bind to the end line and the line after it).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text, delimiters stripped.
    pub text: String,
    /// 1-based line the comment ends on.
    pub end_line: u32,
}

/// Lexer output: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source text. Unterminated constructs are tolerated (the
/// lexer consumes to end of input) — the compiler, not this tool, owns
/// syntax errors.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].trim_start_matches(['/', '!']).to_owned(),
                    end_line: line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: src[start..end].trim_start_matches(['*', '!']).to_owned(),
                    end_line: line,
                });
            }
            b'"' => {
                let tok_line = line;
                i += 1;
                i = skip_string(b, i, &mut line);
                out.tokens.push(lit(tok_line));
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let tok_line = line;
                i = skip_prefixed_string(b, i, &mut line);
                out.tokens.push(lit(tok_line));
            }
            b'\'' => {
                // Lifetime or char literal. `'ident` not followed by a
                // closing quote is a lifetime.
                if is_lifetime(b, i) {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: String::new(),
                        line,
                    });
                    i = j;
                } else {
                    let tok_line = line;
                    i += 1;
                    let mut j = i;
                    while j < b.len() && b[j] != b'\'' {
                        if b[j] == b'\\' {
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    i = (j + 1).min(b.len());
                    out.tokens.push(lit(tok_line));
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_owned(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // A fractional part — but never the `..` of a range.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: src[start..i].to_owned(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn lit(line: u32) -> Tok {
    Tok {
        kind: TokKind::Literal,
        text: String::new(),
        line,
    }
}

/// Consumes a regular string body starting *after* the opening quote;
/// returns the index after the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            // An escape consumes the next byte too — which may be the
            // newline of a `\`-continuation, still a line on screen.
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Does `r`/`b` at `i` open a raw/byte string (`r"`, `r#`, `b"`, `br"`,
/// `b'`, `rb` is not valid Rust)?
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    matches!(
        &b[i..],
        [b'r', b'"' | b'#', ..] | [b'b', b'r', b'"' | b'#', ..] | [b'b', b'"' | b'\'', ..]
    )
}

/// Consumes `r#"..."#`-style and `b"..."` / `b'.'` literals from the
/// prefix character on; returns the index after the closing delimiter.
fn skip_prefixed_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    // Skip the prefix letters.
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        i += 1;
    }
    if i < b.len() && b[i] == b'\'' {
        // Byte char literal.
        i += 1;
        while i < b.len() && b[i] != b'\'' {
            if b[i] == b'\\' {
                i += 1;
            }
            i += 1;
        }
        return (i + 1).min(b.len());
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
        if hashes == 0 {
            // With zero hashes a raw string still has no escapes, but a
            // plain byte string does; treat both as escape-aware which is
            // safe for raw strings too (raw strings cannot contain `"`).
            return skip_string(b, i, line);
        }
        // Scan for `"` followed by `hashes` hash marks.
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
            }
            if b[i] == b'"'
                && b[i + 1..].len() >= hashes
                && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
            {
                return i + 1 + hashes;
            }
            i += 1;
        }
    }
    i
}

/// `'x` is a lifetime when what follows the quote is an identifier that is
/// not immediately closed by another quote (which would make it a char).
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false;
    }
    let mut j = i + 2;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    // `'a'` → char literal; `'a` followed by anything else → lifetime.
    !(j < b.len() && b[j] == b'\'' && j == i + 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_tokens() {
        let src = "// Instant::now in a comment\n\
                   /* HashMap in a block */\n\
                   let s = \"thread_rng inside a string\";\n\
                   let r = r\"SystemTime raw\";\n";
        let ids = idents(src);
        assert!(ids.contains(&"let".to_owned()));
        assert!(!ids
            .iter()
            .any(|t| t == "Instant" || t == "HashMap" || t == "thread_rng" || t == "SystemTime"));
    }

    #[test]
    fn raw_string_with_hashes() {
        let src = "let x = r#\"unsafe \"quoted\" text\"#; fn after() {}";
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_owned()));
        assert!(ids.contains(&"after".to_owned()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        // 'x' is a literal, not a lifetime.
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Literal));
    }

    #[test]
    fn comments_carry_end_lines() {
        let src = "let a = 1;\n// kyp-lint: allow(D01) — reason\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].end_line, 2);
        assert!(lexed.comments[0].text.contains("kyp-lint"));
    }

    #[test]
    fn line_numbers_advance_through_block_comments() {
        let src = "/* one\ntwo\nthree */\nfn here() {}";
        let lexed = lex(src);
        let f = lexed
            .tokens
            .iter()
            .find(|t| t.text == "fn")
            .expect("fn token");
        assert_eq!(f.line, 4);
    }

    #[test]
    fn escaped_newline_continuation_counts_its_line() {
        let src = "let s = \"a \\\n   b\";\nfn after() {}";
        let lexed = lex(src);
        let f = lexed
            .tokens
            .iter()
            .find(|t| t.text == "fn")
            .expect("fn token");
        assert_eq!(f.line, 3);
    }

    #[test]
    fn integer_suffixes_are_not_float_exponents() {
        let toks = lex("let a = 0usize; let b = 3isize; let c = 1e9; let d = 2f64;").tokens;
        let lits: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Literal).collect();
        assert!(lits[0].is_int_literal(), "0usize is an int");
        assert!(lits[1].is_int_literal(), "3isize is an int");
        assert!(lits[2].is_float_literal(), "1e9 is a float");
        assert!(lits[3].is_float_literal(), "2f64 is a float");
    }

    #[test]
    fn numeric_range_is_not_swallowed() {
        let src = "for i in 0..n.len() { }";
        let ids = idents(src);
        assert!(ids.contains(&"len".to_owned()));
    }
}
