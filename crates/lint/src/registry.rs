//! Registries driving the call-graph rules: public entry points for P02
//! panic-reachability, the hot-function budget list for H01, and the
//! canonical reduction helpers exempt from D06.
//!
//! Format: `(crate, type-or-"", fn-name-or-"*")`. An empty type matches
//! free functions; `"*"` matches every public fn of the type. Matching is
//! purely name-based, like the rest of the analyzer — a renamed kernel
//! must be re-registered, which is the point: the registry is the
//! reviewed list of what we promise stays panic-free and allocation-free.

/// P02 roots: the public seams a deployment actually calls. Reachability
/// is computed from these, so a panic site in dead or cold code does not
/// page anyone.
pub const ENTRY_POINTS: &[(&str, &str, &str)] = &[
    ("core", "Pipeline", "classify_bundle"),
    ("core", "Pipeline", "classify_all"),
    ("core", "Pipeline", "classify_all_observed"),
    ("core", "ModelSnapshot", "from_json"),
    ("core", "CascadeClassifier", "*"),
    ("core", "UrlFeaturizer", "*"),
    ("ml", "FlatModel", "predict_proba"),
    ("ml", "FlatModel", "decision_function"),
    ("ml", "FlatModel", "predict_batch"),
    ("serve", "ScoringService", "*"),
    ("store", "PageStoreReader", "*"),
    ("store", "FeatureStoreReader", "*"),
    ("store", "FrameReader", "*"),
];

/// H01 budget list: the PR 7 kernels plus the store framing decoder.
/// Allocating calls here, or in callees to depth 2, are flagged.
pub const HOT_FUNCTIONS: &[(&str, &str, &str)] = &[
    ("ml", "FlatModel", "predict_proba"),
    ("ml", "FlatModel", "decision_function"),
    ("ml", "FlatModel", "tree_leaf"),
    ("text", "TermDistribution", "from_text_in"),
    ("text", "TermDistribution", "from_texts_in"),
    ("text", "TermScratch", "push_text"),
    ("url", "Url", "mld"),
    ("url", "Url", "rdn_labels"),
    ("url", "Url", "free_parts"),
    ("url", "Url", "free_dot_count"),
    ("url", "Url", "mld_len"),
    ("url", "Url", "fqdn_len"),
    ("store", "FrameReader", "next_block"),
];

/// D06 exemption: the reduction helpers whose job *is* ordered f64
/// accumulation. Accumulating anywhere else earns a Warning pointing
/// here.
pub const CANONICAL_REDUCERS: &[(&str, &str, &str)] = &[
    ("core", "", "mean"),
    ("core", "", "std_dev"),
    ("text", "TermDistribution", "hellinger_squared"),
    ("text", "KeyedDistribution", "hellinger_squared"),
];

/// H01 setup exemption: callees with these name prefixes are constructors
/// or pre-sized-buffer builders; allocation inside them is the setup the
/// budget explicitly permits.
pub const SETUP_PREFIXES: &[&str] = &["new", "with_", "from_", "build", "default"];

/// True when `(krate, item.self_type, item.name)` matches a registry row.
pub fn matches(
    reg: &[(&str, &str, &str)],
    krate: &str,
    self_type: Option<&str>,
    name: &str,
) -> bool {
    let ty = self_type.unwrap_or("");
    reg.iter()
        .any(|&(rk, rt, rn)| rk == krate && rt == ty && (rn == "*" || rn == name))
}
