//! Report rendering: a human summary for terminals and CI logs, and a
//! machine JSON report (`results/lint.json`).
//!
//! The JSON is emitted by hand — this crate is dependency-free by design
//! (it must never be able to perturb what it measures) — and its key
//! order is fixed, so the report bytes are themselves deterministic.

use crate::analyze::{AllowRecord, Violation};
use crate::rules::{Severity, RULES};
use std::fmt::Write as _;

/// Aggregated outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Files scanned, in path order.
    pub files_scanned: Vec<String>,
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// All allow annotations, sorted by (file, line, rule).
    pub allows: Vec<AllowRecord>,
}

impl LintOutcome {
    /// `true` when the run should exit 0 by default: warnings (the D06
    /// advisory channel) do not fail the run unless `--deny-warnings`.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` when the run is clean even under `--deny-warnings`.
    pub fn is_warning_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of `Severity::Error` violations.
    pub fn error_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count()
    }

    /// Number of `Severity::Warning` violations.
    pub fn warning_count(&self) -> usize {
        self.violations.len() - self.error_count()
    }

    /// Violation count for one rule.
    fn count_for(&self, rule: &str) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    /// The human-readable report.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            let _ = writeln!(
                s,
                "{}: [{}] {}:{}: {}\n    {}",
                v.severity.name(),
                v.rule,
                v.file,
                v.line,
                v.message,
                v.snippet
            );
            if !v.call_path.is_empty() {
                let _ = writeln!(s, "    path: {}", v.call_path.join(" -> "));
            }
        }
        let _ = writeln!(
            s,
            "kyp-lint: {} file(s) scanned, {} error(s), {} warning(s), {} allow annotation(s)",
            self.files_scanned.len(),
            self.error_count(),
            self.warning_count(),
            self.allows.len()
        );
        for r in RULES {
            let n = self.count_for(r.id);
            let allows = self.allows.iter().filter(|a| a.rule == r.id).count();
            if n > 0 || allows > 0 {
                let _ = writeln!(s, "  {}: {} violation(s), {} allow(s)", r.id, n, allows);
            }
        }
        for a in self.allows.iter().filter(|a| !a.used) {
            let _ = writeln!(
                s,
                "note: unused allow({}) at {}:{} — consider removing it",
                a.rule, a.file, a.line
            );
        }
        s
    }

    /// The machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned.len());
        let _ = writeln!(s, "  \"violation_count\": {},", self.violations.len());
        let _ = writeln!(s, "  \"error_count\": {},", self.error_count());
        let _ = writeln!(s, "  \"warning_count\": {},", self.warning_count());
        let _ = writeln!(s, "  \"allow_count\": {},", self.allows.len());

        s.push_str("  \"rules\": [\n");
        for (i, r) in RULES.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"id\": {}, \"severity\": {}, \"summary\": {}, \"violations\": {}, \"allows\": {}}}",
                json_str(r.id),
                json_str(r.severity.name()),
                json_str(r.summary),
                self.count_for(r.id),
                self.allows.iter().filter(|a| a.rule == r.id).count()
            );
            s.push_str(if i + 1 < RULES.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");

        s.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let call_path = v
                .call_path
                .iter()
                .map(|p| json_str(p))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                s,
                "    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}, \"call_path\": [{call_path}]}}",
                json_str(&v.rule),
                json_str(v.severity.name()),
                json_str(&v.file),
                v.line,
                json_str(&v.message),
                json_str(&v.snippet)
            );
            s.push_str(if i + 1 < self.violations.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");

        s.push_str("  \"allows\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"justification\": {}, \"used\": {}}}",
                json_str(&a.rule),
                json_str(&a.file),
                a.line,
                json_str(&a.justification),
                a.used
            );
            s.push_str(if i + 1 < self.allows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn outcome_with_one() -> LintOutcome {
        LintOutcome {
            files_scanned: vec!["crates/x/src/lib.rs".into()],
            violations: vec![Violation {
                rule: "D01".into(),
                severity: Severity::Error,
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "hash-order iteration: m.iter()".into(),
                snippet: "for x in m.iter() { \"quote\\\" }".into(),
                call_path: Vec::new(),
            }],
            allows: vec![AllowRecord {
                rule: "P01".into(),
                file: "crates/x/src/lib.rs".into(),
                line: 9,
                justification: "invariant: checked above".into(),
                used: true,
            }],
        }
    }

    #[test]
    fn human_report_names_rule_and_location() {
        let h = outcome_with_one().render_human();
        assert!(h.contains("[D01] crates/x/src/lib.rs:3"));
        assert!(h.contains("1 violation(s)"));
    }

    #[test]
    fn json_report_is_wellformed_enough() {
        let j = outcome_with_one().render_json();
        assert!(j.contains("\"violation_count\": 1"));
        assert!(j.contains("\\\"quote\\\\\\\""));
        assert!(j.contains("\"used\": true"));
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "brace balance"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn clean_outcome_is_clean() {
        assert!(LintOutcome::default().is_clean());
        assert!(!outcome_with_one().is_clean());
    }
}
