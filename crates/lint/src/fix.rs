//! Mechanical fixes and CI gates around allow annotations.
//!
//! * [`remove_stale_allows`] rewrites source files to drop
//!   `// kyp-lint: allow(...)` annotations whose rule no longer fires on
//!   the covered lines (previously they were only reported as notes).
//! * [`render_allow_baseline`] / [`check_allow_baseline`] implement the
//!   CI allow-growth gate: the checked-in baseline TSV lists every
//!   justified allow, and a PR that adds annotations without updating the
//!   baseline (i.e. without a reviewed justification diff) fails.

use crate::report::LintOutcome;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

/// Removes allow annotations that suppressed nothing in `outcome`.
///
/// Only line comments are rewritten (`// kyp-lint: allow(...) — why`);
/// a stale allow living in a block comment is left in place and reported
/// back. Returns a human-readable description of each edit.
///
/// # Errors
///
/// Propagates file read/write failures as strings.
pub fn remove_stale_allows(root: &Path, outcome: &LintOutcome) -> Result<Vec<String>, String> {
    // file -> line -> stale rules on that line.
    let mut stale: BTreeMap<&str, BTreeMap<u32, BTreeSet<&str>>> = BTreeMap::new();
    for a in outcome.allows.iter().filter(|a| !a.used) {
        stale
            .entry(&a.file)
            .or_default()
            .entry(a.line)
            .or_default()
            .insert(&a.rule);
    }
    let mut edits = Vec::new();
    for (file, lines) in stale {
        let abs = root.join(file);
        let src = fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        let mut out_lines: Vec<String> = Vec::new();
        let ends_with_newline = src.ends_with('\n');
        for (idx, line) in src.lines().enumerate() {
            let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
            let Some(rules) = lines.get(&lineno) else {
                out_lines.push(line.to_owned());
                continue;
            };
            match strip_allow(line, rules) {
                StripResult::DropLine => {
                    edits.push(format!("{file}:{lineno}: removed stale allow line"));
                }
                StripResult::Rewritten(new_line) => {
                    edits.push(format!(
                        "{file}:{lineno}: removed stale allow({})",
                        rules.iter().copied().collect::<Vec<_>>().join(", ")
                    ));
                    out_lines.push(new_line);
                }
                StripResult::Unchanged => {
                    edits.push(format!(
                        "{file}:{lineno}: stale allow not in a line comment — left in place"
                    ));
                    out_lines.push(line.to_owned());
                }
            }
        }
        let mut new_src = out_lines.join("\n");
        if ends_with_newline {
            new_src.push('\n');
        }
        if new_src != src {
            fs::write(&abs, new_src).map_err(|e| format!("write {}: {e}", abs.display()))?;
        }
    }
    Ok(edits)
}

#[derive(Debug)]
enum StripResult {
    /// The whole line was the annotation comment.
    DropLine,
    /// The annotation (or part of its rule list) was removed.
    Rewritten(String),
    /// No rewritable line comment found.
    Unchanged,
}

/// Removes `rules` from the allow annotation on `line`.
fn strip_allow(line: &str, rules: &BTreeSet<&str>) -> StripResult {
    // Find the `//` comment that *opens* with the annotation.
    let Some(comment_at) = find_annotation_comment(line) else {
        return StripResult::Unchanged;
    };
    let comment = &line[comment_at..];
    let Some(open_rel) = comment.find("allow(") else {
        return StripResult::Unchanged;
    };
    let open = comment_at + open_rel + "allow(".len();
    let Some(close_rel) = line[open..].find(')') else {
        return StripResult::Unchanged;
    };
    let close = open + close_rel;
    let kept: Vec<&str> = line[open..close]
        .split([',', ' '])
        .filter(|s| !s.is_empty())
        .filter(|id| !rules.contains(id.trim()))
        .collect();
    if kept.is_empty() {
        // Whole annotation goes away.
        let before = line[..comment_at].trim_end();
        if before.is_empty() {
            return StripResult::DropLine;
        }
        return StripResult::Rewritten(before.to_owned());
    }
    let mut s = String::with_capacity(line.len());
    s.push_str(&line[..open]);
    s.push_str(&kept.join(", "));
    s.push_str(&line[close..]);
    StripResult::Rewritten(s)
}

/// Byte index of the `//` whose comment opens with `kyp-lint:`, if any.
fn find_annotation_comment(line: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = line[from..].find("//") {
        let at = from + rel;
        let body = line[at + 2..].trim_start_matches(['/', '!']).trim_start();
        if body.starts_with("kyp-lint:") {
            return Some(at);
        }
        from = at + 2;
    }
    None
}

/// Renders the allow baseline: one `file<TAB>rule<TAB>justification` row
/// per annotation, sorted and deduplicated.
pub fn render_allow_baseline(outcome: &LintOutcome) -> String {
    let mut rows: BTreeSet<String> = BTreeSet::new();
    for a in &outcome.allows {
        rows.insert(format!("{}\t{}\t{}", a.file, a.rule, a.justification));
    }
    let mut s = String::from(
        "# kyp-lint allow baseline — regenerate with `kyp lint --update-allows <path>`.\n\
         # CI fails when a new allow annotation appears without a row here\n\
         # (i.e. without a reviewed justification diff in the PR).\n",
    );
    for r in rows {
        s.push_str(&r);
        s.push('\n');
    }
    s
}

/// Compares the current allows against the checked-in baseline.
///
/// # Errors
///
/// Returns a description of every allow missing from the baseline; allows
/// that disappeared are fine (the baseline is an upper bound, refreshed
/// opportunistically).
pub fn check_allow_baseline(outcome: &LintOutcome, baseline: &str) -> Result<(), String> {
    let known: BTreeSet<&str> = baseline
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut new_rows: Vec<String> = Vec::new();
    for a in &outcome.allows {
        let row = format!("{}\t{}\t{}", a.file, a.rule, a.justification);
        if !known.contains(row.as_str()) && !new_rows.contains(&row) {
            new_rows.push(row);
        }
    }
    if new_rows.is_empty() {
        return Ok(());
    }
    Err(format!(
        "{} allow annotation(s) not in the baseline (add a justified row via \
         `kyp lint --update-allows`):\n{}",
        new_rows.len(),
        new_rows.join("\n")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(ids: &[&'static str]) -> BTreeSet<&'static str> {
        ids.iter().copied().collect()
    }

    #[test]
    fn whole_line_annotation_is_dropped() {
        let r = rules(&["D01"]);
        assert!(matches!(
            strip_allow("    // kyp-lint: allow(D01) — stale reason", &r),
            StripResult::DropLine
        ));
    }

    #[test]
    fn trailing_annotation_is_truncated() {
        let r = rules(&["P01"]);
        match strip_allow("let x = 1; // kyp-lint: allow(P01) — stale", &r) {
            StripResult::Rewritten(s) => assert_eq!(s, "let x = 1;"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_rule_annotation_keeps_live_rules() {
        let r = rules(&["D01"]);
        match strip_allow("// kyp-lint: allow(D01, P01) — shared reason", &r) {
            StripResult::Rewritten(s) => {
                assert_eq!(s, "// kyp-lint: allow(P01) — shared reason");
            }
            _ => panic!("expected rewrite"),
        }
    }

    #[test]
    fn prose_mentioning_the_syntax_is_untouched() {
        let r = rules(&["D01"]);
        assert!(matches!(
            strip_allow("// docs: write kyp-lint: allow(D01) to suppress", &r),
            StripResult::Unchanged
        ));
    }

    #[test]
    fn baseline_roundtrip_and_growth_detection() {
        use crate::analyze::AllowRecord;
        let mut outcome = LintOutcome::default();
        outcome.allows.push(AllowRecord {
            rule: "P01".into(),
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            justification: "checked above".into(),
            used: true,
        });
        let baseline = render_allow_baseline(&outcome);
        assert!(check_allow_baseline(&outcome, &baseline).is_ok());
        outcome.allows.push(AllowRecord {
            rule: "P02".into(),
            file: "crates/x/src/lib.rs".into(),
            line: 9,
            justification: "new".into(),
            used: true,
        });
        let err = check_allow_baseline(&outcome, &baseline).unwrap_err();
        assert!(err.contains("P02"), "{err}");
    }
}
