//! The linter holds itself to its own D01 standard: two runs over the
//! same tree must produce byte-identical JSON. `lint` is in the
//! OUTPUT_AFFECTING scope precisely because `results/lint.json` is a CI
//! artifact that gets diffed across runs — any map-order or wall-clock
//! leak in the linter shows up here as a flaky byte diff.

use kyp_lint::{lint_file, run_lint};
use std::path::{Path, PathBuf};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

#[test]
fn lint_json_is_byte_identical_across_runs() {
    let a = run_lint(workspace_root(), None).expect("first lint run");
    let b = run_lint(workspace_root(), None).expect("second lint run");
    assert_eq!(
        a.render_json(),
        b.render_json(),
        "two lint runs over an unchanged tree diverged"
    );
    assert_eq!(a.render_human(), b.render_human());
}

/// Same guarantee at the single-file grain, on a fixture with graph
/// findings — the call-path attribution must also be stable.
#[test]
fn fixture_findings_are_byte_identical_across_runs() {
    let fixture: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("p02_fail.rs");
    let a = lint_file(&fixture, "core", None).expect("first run");
    let b = lint_file(&fixture, "core", None).expect("second run");
    assert_eq!(a.render_json(), b.render_json());
    assert!(a.render_json().contains("\"call_path\""));
}
