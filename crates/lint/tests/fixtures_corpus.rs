//! The fixture corpus: every rule has a failing fixture the analyzer must
//! flag and a passing fixture it must leave alone — plus the live
//! workspace itself, which must lint clean with zero unexplained allows.

use kyp_lint::{analyze_source, lint_file, run_lint, FileAnalysis, LintOutcome, Severity};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Analyzes a fixture as library code of the `core` crate (whose scope
/// enables every rule).
fn analyze_fixture(name: &str) -> FileAnalysis {
    let path = fixture_dir().join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    analyze_source("core", name, &src, None)
}

/// Analyzes a fixture through the full pipeline (`lint_file`), which runs
/// the call-graph rules (P02/H01/D06) on top of the per-file pass. The
/// crate name matters: it selects rule scopes and registry entries.
fn graph_fixture(krate: &str, name: &str) -> LintOutcome {
    let path = fixture_dir().join(name);
    lint_file(&path, krate, None).unwrap_or_else(|e| panic!("lint fixture {}: {e}", path.display()))
}

fn rules_hit(analysis: &FileAnalysis) -> BTreeSet<&str> {
    analysis
        .violations
        .iter()
        .map(|v| v.rule.as_str())
        .collect()
}

fn outcome_rules(outcome: &LintOutcome) -> BTreeSet<&str> {
    outcome.violations.iter().map(|v| v.rule.as_str()).collect()
}

/// Every failing fixture must raise its rule (and only its rule); every
/// passing fixture must be spotless.
#[test]
fn each_rule_has_a_failing_and_a_passing_fixture() {
    for rule in ["D01", "D02", "D03", "D04", "D05", "P01", "A00"] {
        let lower = rule.to_lowercase();
        let bad = analyze_fixture(&format!("{lower}_fail.rs"));
        assert!(
            !bad.violations.is_empty(),
            "{rule}: failing fixture raised nothing"
        );
        assert_eq!(
            rules_hit(&bad),
            BTreeSet::from([rule]),
            "{rule}: failing fixture raised unexpected rules"
        );
        let good = analyze_fixture(&format!("{lower}_pass.rs"));
        assert!(
            good.violations.is_empty(),
            "{rule}: passing fixture raised {:?}",
            good.violations
        );
    }
}

/// The call-graph rules get the same treatment, through the pipeline
/// that actually builds the graph. The crate name picks the registry
/// rows each fixture is written against.
#[test]
fn each_graph_rule_has_a_failing_and_a_passing_fixture() {
    for (rule, krate) in [("P02", "core"), ("H01", "ml"), ("D06", "core")] {
        let lower = rule.to_lowercase();
        let bad = graph_fixture(krate, &format!("{lower}_fail.rs"));
        assert!(
            !bad.violations.is_empty(),
            "{rule}: failing fixture raised nothing"
        );
        assert_eq!(
            outcome_rules(&bad),
            BTreeSet::from([rule]),
            "{rule}: failing fixture raised unexpected rules: {:?}",
            bad.violations
        );
        let good = graph_fixture(krate, &format!("{lower}_pass.rs"));
        assert!(
            good.violations.is_empty(),
            "{rule}: passing fixture raised {:?}",
            good.violations
        );
    }
}

/// Every P02 finding must say *how* the panic site is reached: a
/// non-empty call path rooted at a registered entry point.
#[test]
fn p02_findings_carry_call_path_attribution() {
    let bad = graph_fixture("core", "p02_fail.rs");
    let p02: Vec<_> = bad.violations.iter().filter(|v| v.rule == "P02").collect();
    assert!(!p02.is_empty());
    for v in p02 {
        assert!(
            !v.call_path.is_empty(),
            "P02 finding without a call path: {v:?}"
        );
        assert!(
            v.call_path[0].contains("classify_bundle"),
            "path must start at the entry point: {:?}",
            v.call_path
        );
        assert!(
            v.message.contains("reachable from"),
            "message must name the entry: {}",
            v.message
        );
    }
}

/// D06 is advisory: findings are warnings, so the outcome is clean under
/// the default exit policy but dirty under `--deny-warnings` semantics.
#[test]
fn d06_is_a_warning_not_an_error() {
    let bad = graph_fixture("core", "d06_fail.rs");
    assert!(!bad.violations.is_empty());
    assert!(bad
        .violations
        .iter()
        .all(|v| v.severity == Severity::Warning));
    assert!(bad.is_clean(), "warnings must not fail the default gate");
    assert!(!bad.is_warning_clean(), "deny-warnings gate must trip");
}

/// Rule-trigger text buried in raw strings, byte strings, nested block
/// comments and char literals must never reach rule matching — and the
/// lexer must stay line-synchronized across all of it, so a genuine
/// violation *after* the gnarly literals is still caught on its exact
/// line.
#[test]
fn lexer_edge_cases_do_not_leak_into_rules() {
    let good = graph_fixture("core", "lexer_edge_pass.rs");
    assert!(
        good.violations.is_empty(),
        "literal/comment contents leaked into rule matching: {:?}",
        good.violations
    );
    let bad = graph_fixture("core", "lexer_edge_fail.rs");
    assert_eq!(
        outcome_rules(&bad),
        BTreeSet::from(["P01"]),
        "{:?}",
        bad.violations
    );
    assert_eq!(
        bad.violations[0].line, 11,
        "lexer lost line sync across edge-case literals: {:?}",
        bad.violations
    );
}

#[test]
fn d01_fixture_flags_both_iteration_forms() {
    let bad = analyze_fixture("d01_fail.rs");
    assert_eq!(bad.violations.len(), 2, "{:?}", bad.violations);
    assert!(bad.violations[0].message.contains("values"));
    assert!(bad.violations[1].message.contains("for"));
}

#[test]
fn justified_allow_is_counted_and_marked_used() {
    let good = analyze_fixture("a00_pass.rs");
    assert_eq!(good.allows.len(), 1);
    let allow = &good.allows[0];
    assert_eq!(allow.rule, "D01");
    assert!(allow.used, "allow did not suppress the finding");
    assert!(allow.justification.contains("commutative"));
}

/// Store I/O is analyzed under the `store` crate's scope: block writers
/// must not read wall clocks (D02) — store bytes are a pure function of
/// the corpus — and the clock-free framing passes every store-scoped
/// rule (including P01, since `store` is on the no-panic list).
#[test]
fn store_io_fixtures_catch_wall_clock_stamps() {
    let dir = fixture_dir();
    let bad_src = std::fs::read_to_string(dir.join("d02_store_io_fail.rs")).unwrap();
    let bad = analyze_source("store", "d02_store_io_fail.rs", &bad_src, None);
    assert_eq!(
        rules_hit(&bad),
        BTreeSet::from(["D02"]),
        "store I/O fixture must raise exactly D02: {:?}",
        bad.violations
    );
    let good_src = std::fs::read_to_string(dir.join("d02_store_io_pass.rs")).unwrap();
    let good = analyze_source("store", "d02_store_io_pass.rs", &good_src, None);
    assert!(
        good.violations.is_empty(),
        "clock-free framing raised {:?}",
        good.violations
    );
}

#[test]
fn rules_outside_their_scope_stay_silent() {
    // The same sources analyzed as crate `bench` (D02-exempt) and `exec`
    // (D03/D05-exempt) must not fire.
    let dir = fixture_dir();
    let d02 = std::fs::read_to_string(dir.join("d02_fail.rs")).unwrap();
    assert!(analyze_source("bench", "d02_fail.rs", &d02, None)
        .violations
        .is_empty());
    let d03 = std::fs::read_to_string(dir.join("d03_fail.rs")).unwrap();
    assert!(analyze_source("exec", "d03_fail.rs", &d03, None)
        .violations
        .is_empty());
    let d05 = std::fs::read_to_string(dir.join("d05_fail.rs")).unwrap();
    assert!(analyze_source("exec", "d05_fail.rs", &d05, None)
        .violations
        .is_empty());
}

#[test]
fn rule_filter_restricts_findings() {
    let dir = fixture_dir();
    let filter: BTreeSet<String> = ["D02".to_owned()].into();
    let outcome = lint_file(&dir.join("d03_fail.rs"), "core", Some(&filter)).unwrap();
    assert!(outcome.is_clean(), "D02-only filter must ignore D03");
    let outcome = lint_file(&dir.join("d02_fail.rs"), "core", Some(&filter)).unwrap();
    assert!(!outcome.is_clean());
}

/// The classification seam stays collapsed: `classify_bundle` is the one
/// canonical entry point, and every other `classify*` name is a blessed
/// thin wrapper (or its `_observed` twin). Do NOT add a new `classify_*`
/// variant — thread a [`kyp_obs::PipelineObserver`] or a
/// `SourceAvailability` through `classify_bundle` instead, and if a new
/// wrapper is genuinely unavoidable, bless it here with a justification.
#[test]
fn pipeline_classify_variants_are_a_closed_set() {
    let blessed = BTreeSet::from([
        "classify",
        "classify_degraded",
        "classify_bundle",
        "classify_all",
        "classify_all_observed",
        "classify_scraped",
        "classify_scraped_observed",
    ]);
    let pipeline = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("crates/core/src/pipeline.rs");
    let src = std::fs::read_to_string(&pipeline)
        .unwrap_or_else(|e| panic!("read {}: {e}", pipeline.display()));
    let mut found = BTreeSet::new();
    for line in src.lines() {
        let Some(rest) = line.trim_start().strip_prefix("pub fn classify") else {
            continue;
        };
        let suffix: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        found.insert(format!("classify{suffix}"));
    }
    let found: BTreeSet<&str> = found.iter().map(String::as_str).collect();
    assert_eq!(
        found, blessed,
        "pipeline.rs grew or lost a classify* variant; collapse onto \
         classify_bundle instead of adding wrappers (see this test's doc)"
    );
}

/// The acceptance gate: the workspace's own sources lint clean, and every
/// escape hatch in them carries a justification and suppresses something.
#[test]
fn live_workspace_is_clean_with_zero_unexplained_allows() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let outcome = run_lint(root, None).expect("lint run");
    assert!(
        outcome.violations.is_empty(),
        "workspace has lint violations:\n{}",
        outcome.render_human()
    );
    for allow in &outcome.allows {
        assert!(
            allow.justification.len() >= 3,
            "unexplained allow at {}:{}",
            allow.file,
            allow.line
        );
        assert!(
            allow.used,
            "stale allow (suppresses nothing) at {}:{}",
            allow.file, allow.line
        );
    }
}
