//! After every edge-case literal the lexer must still be in sync: the
//! one real violation at the end has to be reported — on its exact line.

pub fn edge() -> u32 {
    let raw = r##"unsafe { HashMap::new().unwrap() } "#quoted"# "##;
    let cont = "one \
two";
    let bytes = b"SystemTime::now()";
    /* nested /* block */ comment */
    let v: Vec<u32> = vec![raw.len() as u32, cont.len() as u32, bytes.len() as u32];
    v.first().copied().unwrap()
}
