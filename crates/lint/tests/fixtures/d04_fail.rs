//! D04 failing fixture: entropy-seeded randomness. Reruns of the same
//! configuration would see different draws.

use rand::rngs::OsRng;
use rand::Rng;

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..100)
}

pub fn seed_material() -> u64 {
    let mut os = OsRng;
    os.gen()
}
