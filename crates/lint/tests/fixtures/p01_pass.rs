//! P01 passing fixture: fallible paths stay fallible.

pub fn parse_port(s: &str) -> Option<u16> {
    s.parse().ok()
}

pub fn require(flag: Option<u32>) -> u32 {
    flag.unwrap_or(0)
}
