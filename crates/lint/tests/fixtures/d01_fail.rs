//! D01 failing fixture: iteration over hash containers in an
//! output-affecting crate.

use std::collections::{HashMap, HashSet};

pub struct Index {
    counts: HashMap<String, u32>,
    seen: HashSet<String>,
}

impl Index {
    /// Sums in hash order — nondeterministic for floats, and the order
    /// itself leaks into any emitted sequence.
    pub fn total(&self) -> u32 {
        self.counts.values().sum()
    }

    /// `for … in &map` is iteration too.
    pub fn dump(&self) -> Vec<String> {
        let mut out = Vec::new();
        for name in &self.seen {
            out.push(name.clone());
        }
        out
    }
}
