//! D02 passing fixture, store-I/O flavour: block framing carries only
//! data-derived fields (lengths, counts, checksums) — no clocks, so the
//! same corpus always writes the same bytes.

use std::io::Write;

pub fn write_block<W: Write>(out: &mut W, record_count: u32, payload: &[u8]) -> std::io::Result<()> {
    out.write_all(&(payload.len() as u32).to_le_bytes())?;
    out.write_all(&record_count.to_le_bytes())?;
    out.write_all(payload)
}
