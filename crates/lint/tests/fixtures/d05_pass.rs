//! D05 passing fixture: the same operation in safe Rust.

pub fn first_word(bytes: &[u8]) -> u32 {
    let mut word = [0u8; 4];
    word.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(word)
}
