//! P02 failing fixture: an implicit panic site in a helper that is
//! reachable from a registered entry point (`Pipeline::classify_bundle`).

pub struct Pipeline;

impl Pipeline {
    pub fn classify_bundle(&self, xs: &[f64]) -> f64 {
        helper(xs)
    }
}

fn helper(xs: &[f64]) -> f64 {
    xs[0]
}
