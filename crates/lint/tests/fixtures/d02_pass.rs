//! D02 passing fixture: time is virtual — a caller-supplied counter.

pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    pub fn advance(&mut self, delta_ms: u64) -> u64 {
        self.now_ms = self.now_ms.saturating_add(delta_ms);
        self.now_ms
    }
}
