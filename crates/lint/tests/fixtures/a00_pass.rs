//! A00 passing fixture: a justified escape hatch suppressing a real
//! finding.

use std::collections::HashMap;

pub fn total(map: &HashMap<String, u32>) -> u32 {
    // kyp-lint: allow(D01) — u32 addition is commutative, so the sum is order-independent
    map.values().sum()
}
