//! D06 failing fixture: order-sensitive f64 accumulation outside the
//! canonical reducer registry, in both the `.sum::<f64>()` and the
//! loop-accumulator spelling.

pub fn jitter(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / 2.0
}

pub fn drift(values: &[f64]) -> f64 {
    let mut total = 0.0;
    for v in values {
        total += v;
    }
    total
}
