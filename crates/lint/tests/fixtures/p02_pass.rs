//! P02 passing fixture: the reachable path indexes nothing, and the one
//! panic site in the file sits in a function no entry point can reach —
//! reachability gating must keep it silent.

pub struct Pipeline;

impl Pipeline {
    pub fn classify_bundle(&self, xs: &[f64]) -> f64 {
        helper(xs)
    }
}

fn helper(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap_or_default()
}

/// Never called from any entry point: its indexing must not be reported.
pub fn offline_tooling(xs: &[f64]) -> f64 {
    xs[1]
}
