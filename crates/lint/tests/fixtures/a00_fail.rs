//! A00 failing fixture: escape hatches that don't hold up — one with no
//! justification, one naming a rule that doesn't exist.

use std::collections::HashMap;

pub fn any_value(map: &HashMap<String, u32>) -> Option<u32> {
    // kyp-lint: allow(D01)
    map.values().next().copied()
}

pub fn port(s: &str) -> u16 {
    // kyp-lint: allow(Z99) — this rule does not exist
    s.parse().unwrap_or(0)
}
