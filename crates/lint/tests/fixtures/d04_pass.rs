//! D04 passing fixture: randomness flows from an explicit seed, so every
//! run of the same configuration draws the same sequence.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub fn jitter(seed: u64) -> u64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.gen_range(0..100)
}
