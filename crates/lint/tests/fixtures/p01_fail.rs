//! P01 failing fixture: panicking extractors in library code of a
//! hardened crate.

pub fn parse_port(s: &str) -> u16 {
    s.parse().unwrap()
}

pub fn require(flag: Option<u32>) -> u32 {
    flag.expect("flag must be set")
}
