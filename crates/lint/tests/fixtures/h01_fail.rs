//! H01 failing fixture: a registered hot function (`FlatModel::
//! predict_proba` when analyzed as crate `ml`) allocates per call.

pub struct FlatModel;

impl FlatModel {
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let label = format!("row of {} features", row.len());
        score(&label)
    }
}

fn score(s: &str) -> f64 {
    s.len() as f64
}
