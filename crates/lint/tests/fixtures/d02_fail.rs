//! D02 failing fixture: wall-clock reads outside `crates/bench`.

use std::time::{Instant, SystemTime};

pub fn stamp_ms() -> u128 {
    let started = Instant::now();
    let _ = SystemTime::now();
    started.elapsed().as_millis()
}
