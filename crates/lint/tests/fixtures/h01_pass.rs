//! H01 passing fixture: the hot function works in place, and allocation
//! in functions outside the hot closure (or in `new`/`with_`-style setup)
//! stays permitted.

pub struct FlatModel;

impl FlatModel {
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let mut acc = 0.0;
        for v in row {
            acc = acc.max(*v);
        }
        acc
    }

    /// Setup is allowed to allocate: not on the hot path.
    pub fn with_buffer(capacity: usize) -> Vec<f64> {
        Vec::with_capacity(capacity)
    }
}
