//! D03 passing fixture: parallelism goes through the kyp-exec pool,
//! which owns the deterministic join order.

pub fn fan_out(jobs: &[u64]) -> Vec<u64> {
    kyp_exec::pool().par_map(jobs, |j| j * 2)
}
