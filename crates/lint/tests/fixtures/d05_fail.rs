//! D05 failing fixture: `unsafe` outside `crates/exec`.

pub fn first_word(bytes: &[u8]) -> u32 {
    assert!(bytes.len() >= 4);
    unsafe { bytes.as_ptr().cast::<u32>().read_unaligned() }
}
