//! D02 failing fixture, store-I/O flavour: a block writer that stamps
//! each flushed block with the wall clock. Store bytes must be a pure
//! function of the corpus — timestamps would break byte-identical
//! re-generation.

use std::io::Write;
use std::time::SystemTime;

pub fn write_stamped_block<W: Write>(out: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let stamp = SystemTime::now();
    let millis = stamp
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    out.write_all(&millis.to_le_bytes())?;
    out.write_all(payload)
}
