//! D06 passing fixture: `mean` is a registered canonical reducer for
//! crate `core`, so ordered accumulation inside it is its job; integer
//! accumulators (including `usize`-suffixed literals) are not floats.

pub fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

pub fn count_long(values: &[f64]) -> usize {
    let mut n = 0usize;
    for v in values {
        if *v > 1.0 {
            n += 1;
        }
    }
    n
}
