//! Lexer edge cases: rule-trigger text buried in raw strings, byte
//! strings, nested block comments and char literals must never surface
//! as tokens — this file must analyze spotless under every rule.

/* outer /* nested block comment: for (k, v) in map.iter() over a
   std::collections::HashMap */ still a comment: Instant::now() and
   thread::spawn and unsafe { } */

pub fn literals_hide_everything() -> usize {
    let raw = r#"HashMap order: for v in m.values() { v.unwrap() } "quoted""#;
    let hashed = r##"thread_rng() and SystemTime::now() and "#one hash#""##;
    let bytes = b"unsafe { transmute() } .expect(\"boom\")";
    let byte_char = b'{';
    let cont = "spliced \
                across lines: rand::random()";
    raw.len() + hashed.len() + bytes.len() + cont.len() + usize::from(byte_char)
}

pub fn lifetimes_are_not_chars<'a>(x: &'a str) -> char {
    let plain = 'x';
    let escaped_quote = '\'';
    let newline = '\n';
    if x.is_empty() {
        plain
    } else {
        escaped_quote.max(newline)
    }
}
