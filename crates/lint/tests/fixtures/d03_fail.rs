//! D03 failing fixture: raw thread primitives outside `crates/exec`.

pub fn fan_out(jobs: Vec<u64>) -> Vec<std::thread::JoinHandle<u64>> {
    jobs.into_iter()
        .map(|j| std::thread::spawn(move || j * 2))
        .collect()
}
