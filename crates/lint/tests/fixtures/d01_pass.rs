//! D01 passing fixture: keyed lookup into a hash container stays legal,
//! and ordered containers may be iterated freely.

use std::collections::{BTreeMap, HashMap};

pub struct Index {
    counts: HashMap<String, u32>,
    ordered: BTreeMap<String, u32>,
}

impl Index {
    /// Keyed lookup — no iteration order involved.
    pub fn count(&self, key: &str) -> u32 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Iterating a BTreeMap is deterministic.
    pub fn dump(&self) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        for (k, v) in &self.ordered {
            out.push((k.clone(), *v));
        }
        out
    }
}
