//! Phishing-kit generators.
//!
//! Encodes the structural regularities the paper documents for phishing
//! pages (Sections II-A, III-A) and the evasion variants of Section VII:
//!
//! - hosted on domains unrelated to the target (compromised hosts, cheap
//!   TLDs) or obfuscated ones (target brand in subdomain/path, typosquats,
//!   raw IPs);
//! - content mimics the target: brand terms in text/title/copyright,
//!   resources and outgoing links point at the *real* target domain
//!   (outside the phisher's control);
//! - credential-harvesting forms;
//! - longer redirection chains crossing several RDNs;
//! - evasion tails: minimal text, image-based pages, misspelled terms.

use crate::brands::Brand;
use crate::lexicon::{self, Language};
use kyp_html::PageBuilder;
use kyp_web::{Page, WebWorld};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Where the phisher hosts the kit (Section II-B obfuscation taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum HostingStrategy {
    /// A compromised unrelated domain, kit buried in a deep path.
    Compromised,
    /// The target brand spelled inside the subdomain
    /// (`paypago.com.secure-check.badhost.tk`).
    BrandSubdomain,
    /// The target brand in the URL path only.
    BrandPath,
    /// A typosquatted variant of the target domain (`paypag0.com`).
    Typosquat,
    /// A freshly registered deceptive domain spelling the brand plus a
    /// service word (`paypago-secure.tk`) — the mld *matches* the page
    /// content, defeating the f3 features the way real campaigns do.
    DeceptiveMld,
    /// A raw IPv4 host (the paper's hard-to-classify tail).
    IpHost,
}

impl HostingStrategy {
    /// All strategies (for exhaustive ablations).
    pub const ALL: [HostingStrategy; 6] = [
        HostingStrategy::Compromised,
        HostingStrategy::BrandSubdomain,
        HostingStrategy::BrandPath,
        HostingStrategy::Typosquat,
        HostingStrategy::DeceptiveMld,
        HostingStrategy::IpHost,
    ];
}

/// Optional evasion techniques (Section VII-C).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvasionProfile {
    /// Keep almost no text content.
    pub minimal_text: bool,
    /// Render the brand only in an image (empty HTML text).
    pub image_based: bool,
    /// Misspell brand terms in the text (typosquatting the content).
    pub typo_terms: bool,
    /// Carry no brand hint at all (target only in the luring email) —
    /// produces the paper's "unknown target" pages.
    pub no_brand_hint: bool,
    /// A fully cloned, self-hosted kit: resources served locally, few or
    /// no links to the target, HTTPS — the stealthy tail that keeps the
    /// classifier's recall below 1.
    pub self_contained: bool,
}

/// Description of one generated phishing site.
#[derive(Debug, Clone, PartialEq)]
pub struct PhishSite {
    /// URL distributed to victims.
    pub start_url: String,
    /// The impersonated brand's mld, or `None` for hint-less kits.
    pub target: Option<String>,
    /// Hosting strategy used.
    pub hosting: HostingStrategy,
    /// Evasion flags applied.
    pub evasion: EvasionProfile,
}

/// Deterministic generator of phishing sites.
///
/// # Examples
///
/// ```
/// use kyp_datagen::{BrandCorpus, EvasionProfile, Language, PhishGenerator};
/// use kyp_web::{Browser, WebWorld};
///
/// let corpus = BrandCorpus::standard();
/// let mut world = WebWorld::new();
/// let mut generator = PhishGenerator::new(13);
/// let phish = generator.phish_site(
///     &mut world, corpus.cyclic(0), Language::English, None, EvasionProfile::default());
/// let visit = Browser::new(&world).visit(&phish.start_url)?;
/// assert!(visit.input_count >= 2, "phish harvest credentials");
/// # Ok::<(), kyp_web::VisitError>(())
/// ```
#[derive(Debug)]
pub struct PhishGenerator {
    rng: ChaCha8Rng,
    counter: u64,
    compromised_pool: Vec<String>,
    decoy_brands: Vec<Brand>,
}

impl PhishGenerator {
    /// Creates a generator; equal seeds reproduce identical kits.
    pub fn new(seed: u64) -> Self {
        PhishGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed),
            counter: 0,
            compromised_pool: Vec::new(),
            decoy_brands: Vec::new(),
        }
    }

    /// Supplies brands that kits may mention *besides* their target —
    /// template remnants and partner logos that make target ranking
    /// ambiguous (why the paper's top-3 beats its top-1 accuracy).
    pub fn set_decoy_brands(&mut self, brands: Vec<Brand>) {
        self.decoy_brands = brands;
    }

    /// Supplies real legitimate RDNs that `Compromised` kits may hijack.
    ///
    /// Phishers frequently host kits in deep paths of hacked legitimate
    /// sites; such hosts may even be popularity-ranked, removing the
    /// easiest URL signals. Without a pool, compromised kits fall back to
    /// freshly registered throwaway domains.
    pub fn set_compromised_pool(&mut self, rdns: Vec<String>) {
        self.compromised_pool = rdns;
    }

    /// Generates one phishing site targeting `brand`.
    ///
    /// `hosting` picks the strategy, or a realistic random mix when `None`
    /// (IP hosting kept under ~2%, matching the paper's observation).
    pub fn phish_site(
        &mut self,
        world: &mut WebWorld,
        brand: &Brand,
        language: Language,
        hosting: Option<HostingStrategy>,
        evasion: EvasionProfile,
    ) -> PhishSite {
        self.counter += 1;
        let hosting = hosting.unwrap_or_else(|| {
            let roll = self.rng.gen_range(0..100);
            match roll {
                0..=34 => HostingStrategy::Compromised,
                35..=49 => HostingStrategy::BrandSubdomain,
                50..=64 => HostingStrategy::BrandPath,
                65..=82 => HostingStrategy::DeceptiveMld,
                83..=97 => HostingStrategy::Typosquat,
                _ => HostingStrategy::IpHost,
            }
        });

        // Brand-less harvesters mostly reuse the generic portal shape —
        // the cohort that genuinely overlaps with small legitimate sites.
        if evasion.no_brand_hint && self.rng.gen_bool(0.7) {
            let spec =
                crate::portal::portal_site(&mut self.rng, self.counter, world, language, 0.4);
            return PhishSite {
                start_url: spec.start_url,
                target: None,
                hosting,
                evasion,
            };
        }

        let (host, phisher_rdn) = self.phisher_host(brand, hosting, evasion.no_brand_hint);
        let path = self.phisher_path(brand, hosting, &evasion);
        // Self-contained kits often bother with TLS; quick kits rarely do.
        let https_prob = if evasion.self_contained { 0.5 } else { 0.08 };
        let scheme = if self.rng.gen_bool(https_prob) {
            "https"
        } else {
            "http"
        };
        let landing = format!("{scheme}://{host}/{path}");
        let html_page = self.build_page(brand, language, &evasion);
        world.add_page(&landing, html_page);

        // Redirection: about half the kits are reached through 1–2
        // redirectors on other shady RDNs.
        let start_url = if self.rng.gen_bool(0.5) {
            let hops = self.rng.gen_range(1..=2);
            let mut current_target = landing.clone();
            let mut entry = landing.clone();
            for h in 0..hops {
                let redirector = format!(
                    "http://{}{}.{}/r{}",
                    pick(&mut self.rng, lexicon::DOMAIN_TOKENS),
                    self.counter,
                    pick(&mut self.rng, lexicon::PHISH_SUFFIXES),
                    h
                );
                world.add_redirect(&redirector, &current_target);
                current_target.clone_from(&redirector);
                entry = redirector;
            }
            entry
        } else {
            landing
        };

        let _ = phisher_rdn; // informational; kept for future ablations
        PhishSite {
            start_url,
            target: (!evasion.no_brand_hint).then(|| brand.name.clone()),
            hosting,
            evasion,
        }
    }

    /// The phisher-controlled host per strategy.
    fn phisher_host(
        &mut self,
        brand: &Brand,
        hosting: HostingStrategy,
        no_brand_hint: bool,
    ) -> (String, String) {
        let token_a = pick(&mut self.rng, lexicon::DOMAIN_TOKENS);
        let token_b = pick(&mut self.rng, lexicon::DOMAIN_TOKENS);
        let id = self.counter;
        match hosting {
            HostingStrategy::IpHost => {
                let ip = format!(
                    "{}.{}.{}.{}",
                    self.rng.gen_range(11..240),
                    self.rng.gen_range(0..255),
                    self.rng.gen_range(0..255),
                    self.rng.gen_range(1..255)
                );
                (ip.clone(), ip)
            }
            HostingStrategy::Typosquat if !no_brand_hint => {
                let squat = typosquat(&brand.name, &mut self.rng);
                let rdn = format!("{squat}.{}", pick(&mut self.rng, lexicon::PHISH_SUFFIXES));
                (rdn.clone(), rdn)
            }
            HostingStrategy::DeceptiveMld if !no_brand_hint => {
                let service = pick(
                    &mut self.rng,
                    &["secure", "login", "account", "verify", "support", "online"],
                );
                let mld = match self.rng.gen_range(0..3) {
                    0 => format!("{}-{service}", brand.name),
                    1 => format!("{service}-{}", brand.name),
                    _ => format!("{}{service}", brand.name),
                };
                let rdn = format!("{mld}.{}", pick(&mut self.rng, lexicon::PHISH_SUFFIXES));
                let host = if self.rng.gen_bool(0.3) {
                    format!("www.{rdn}")
                } else {
                    rdn.clone()
                };
                (host, rdn)
            }
            HostingStrategy::BrandSubdomain if !no_brand_hint => {
                let rdn = format!(
                    "{token_a}-{token_b}{id}.{}",
                    pick(&mut self.rng, lexicon::PHISH_SUFFIXES)
                );
                // Target domain spelled into the subdomains, dots intact.
                (format!("{}.secure-check.{rdn}", brand.domain), rdn)
            }
            _ => {
                // Compromised / BrandPath / hint-less fallbacks share the
                // "unrelated registered domain" shape. Truly compromised
                // kits reuse a hijacked legitimate domain from the pool.
                let rdn = if hosting == HostingStrategy::Compromised
                    && !self.compromised_pool.is_empty()
                    && self.rng.gen_bool(0.45)
                {
                    let i = self.rng.gen_range(0..self.compromised_pool.len());
                    self.compromised_pool[i].clone()
                } else {
                    format!(
                        "{token_a}{token_b}{id}.{}",
                        pick(&mut self.rng, lexicon::PHISH_SUFFIXES)
                    )
                };
                let host = if self.rng.gen_bool(0.4) {
                    format!(
                        "{}.{rdn}",
                        pick(&mut self.rng, &["secure", "account", "www", "login"])
                    )
                } else {
                    rdn.clone()
                };
                (host, rdn)
            }
        }
    }

    /// The attacker-chosen path (long, brandy for BrandPath kits).
    fn phisher_path(
        &mut self,
        brand: &Brand,
        hosting: HostingStrategy,
        evasion: &EvasionProfile,
    ) -> String {
        let service = pick(
            &mut self.rng,
            &["login", "signin", "verify", "update", "webscr", "secure"],
        );
        let noise: u32 = self.rng.gen_range(100..99999);
        let brandy = !evasion.no_brand_hint
            && matches!(
                hosting,
                HostingStrategy::BrandPath | HostingStrategy::Compromised
            );
        // Path shapes overlap with legitimate CMS URLs: some kits use
        // long obfuscated paths, others keep it short.
        match (brandy, self.rng.gen_range(0..10)) {
            (true, 0..=4) => format!(
                "{}/{service}/{noise}/index.php?cmd={service}&dispatch={noise}",
                brand.name
            ),
            (true, 5..=7) => format!("{}/{service}.php?id={noise}", brand.name),
            (true, _) => format!("{}/{service}", brand.name),
            (false, 0..=4) => format!("{service}/{noise}/index.php?cmd={service}"),
            (false, 5..=7) => format!("{service}.php?id={noise}"),
            (false, _) => format!("{service}/{noise}"),
        }
    }

    /// The kit's landing page content.
    fn build_page(&mut self, brand: &Brand, language: Language, evasion: &EvasionProfile) -> Page {
        // Template reuse: some kits are old campaigns re-pointed at a new
        // target — the visible content still spells the previous brand
        // while links and the harvest endpoint serve the real target.
        // These are the pages whose target only ranks at top-2/top-3.
        let content_brand =
            if !evasion.no_brand_hint && !self.decoy_brands.is_empty() && self.rng.gen_bool(0.12) {
                let idx = self.rng.gen_range(0..self.decoy_brands.len());
                let decoy = self.decoy_brands[idx].clone();
                if decoy.name == brand.name {
                    brand.clone()
                } else {
                    decoy
                }
            } else {
                brand.clone()
            };
        let brand_word = if evasion.typo_terms {
            typosquat(&content_brand.name, &mut self.rng)
        } else {
            content_brand.display.clone()
        };
        // Kits reference the target both with and without the www host.
        let target_host = if self.rng.gen_bool(0.5) {
            format!("www.{}", brand.domain)
        } else {
            brand.domain.clone()
        };
        let keywords = content_brand.sector.keywords();

        let mut page = PageBuilder::new();
        if evasion.no_brand_hint {
            page = page.title("Account verification");
        } else {
            page = page.title(&format!(
                "{brand_word} {}",
                pick(
                    &mut self.rng,
                    &["Login", "Sign In", "Verify Account", "Security Check"]
                )
            ));
        }

        // Text: mimics the target with urgency vocabulary. Self-contained
        // clones copy more of the target's prose.
        let text_sentences = if evasion.minimal_text || evasion.image_based {
            0
        } else if evasion.self_contained {
            self.rng.gen_range(3..6)
        } else {
            self.rng.gen_range(1..3)
        };
        let reused_template = content_brand.name != brand.name;
        for _ in 0..text_sentences {
            let mut s = lexicon::sample_sentence(&mut self.rng, language, 4, 2);
            if !evasion.no_brand_hint {
                s.push(' ');
                s.push_str(&brand_word);
                if self.rng.gen_bool(0.6) {
                    s.push(' ');
                    s.push_str(pick(&mut self.rng, keywords));
                }
            }
            page = page.paragraph(&s);
        }
        // A sloppily re-pointed template keeps a stray mention of the real
        // target in the prose, so both brands surface as candidates.
        if reused_template && text_sentences > 0 {
            page = page.paragraph(&format!(
                "{} {}",
                brand.display,
                pick(&mut self.rng, brand.sector.keywords())
            ));
        }

        // Resources: mostly lifted from the real target (uncontrolled!) —
        // unless the kit is a self-contained clone serving local copies.
        if !evasion.no_brand_hint && !evasion.self_contained {
            for res in ["logo.png", "style.css", "secure.js"] {
                if self.rng.gen_bool(0.85) {
                    page = page.image(&format!("https://{target_host}/{res}"));
                }
            }
            // Outgoing links to the target keep the page believable.
            // Image-based kits wrap images, not text, so their anchors
            // carry no rendered terms.
            for link in ["help", "privacy", "terms"] {
                if self.rng.gen_bool(0.75) {
                    let anchor = if evasion.image_based || evasion.minimal_text {
                        String::new()
                    } else {
                        format!("{brand_word} {link}")
                    };
                    page = page.link(&format!("https://{target_host}/{link}"), &anchor);
                }
            }
        }
        // Cloned relative navigation: kits copied from the target keep
        // some of its nav links, which resolve on the phisher's own host.
        if self.rng.gen_bool(0.7) {
            let n_nav = self.rng.gen_range(1..4);
            for nav in ["signin", "account", "contact"].iter().take(n_nav) {
                let anchor = if evasion.image_based || evasion.minimal_text {
                    String::new()
                } else if evasion.no_brand_hint {
                    (*nav).to_owned()
                } else {
                    format!("{brand_word} {nav}")
                };
                page = page.link(&format!("/{nav}"), &anchor);
            }
        }
        // Own resources: self-contained clones serve everything locally.
        page = page.stylesheet("/kit.css");
        if evasion.self_contained {
            for res in ["logo.png", "hero.jpg"] {
                page = page.image(&format!("/assets/{res}"));
            }
            page = page.script("/assets/app.js");
            // At most one discreet link to the target.
            if !evasion.no_brand_hint && self.rng.gen_bool(0.4) {
                page = page.link(&format!("https://{target_host}/help"), "help");
            }
        } else if !evasion.no_brand_hint && self.rng.gen_bool(0.3) {
            page = page.iframe(&format!("https://{target_host}/frame"));
        }

        // Decoy brand mentions: leftover template text or partner
        // references that also point at another brand.
        if !evasion.no_brand_hint && !self.decoy_brands.is_empty() && self.rng.gen_bool(0.2) {
            let idx = self.rng.gen_range(0..self.decoy_brands.len());
            let decoy = self.decoy_brands[idx].clone();
            if decoy.name != brand.name {
                let mentions = self.rng.gen_range(1..=3);
                for _ in 0..mentions {
                    if !evasion.image_based && !evasion.minimal_text {
                        page = page.paragraph(&format!(
                            "in partnership with {} {}",
                            decoy.display,
                            pick(&mut self.rng, decoy.sector.keywords())
                        ));
                    }
                }
                if self.rng.gen_bool(0.6) {
                    page = page.link(
                        &format!("https://www.{}/partner", decoy.domain),
                        &decoy.display,
                    );
                }
            }
        }

        // The harvest form.
        let fields: &[&str] = match self.rng.gen_range(0..3) {
            0 => &["email", "password"],
            1 => &["username", "password", "pin"],
            _ => &["cardnumber", "expiry", "cvv", "password"],
        };
        page = page.form("/collect.php", fields);

        // Image-based kits draw the notice inside the image too.
        if !evasion.no_brand_hint && !evasion.image_based && self.rng.gen_bool(0.6) {
            page = page.copyright(&format!("© 2015 {}", content_brand.display));
        }

        let html = page.build();
        if evasion.image_based && !evasion.no_brand_hint {
            // Brand text exists only on the rendering, not in the HTML.
            let rendered = format!(
                "{} {} sign in to continue {}",
                brand.display,
                pick(&mut self.rng, keywords),
                brand.display
            );
            Page::with_rendered_text(html, rendered)
        } else {
            Page::new(html)
        }
    }
}

fn pick<'a, R: Rng>(rng: &mut R, pool: &[&'a str]) -> &'a str {
    pool.choose(rng).expect("non-empty pool")
}

/// Produces a typosquatted variant of a brand name: letter swap, doubled
/// letter, dropped letter, or look-alike digit substitution.
fn typosquat<R: Rng>(name: &str, rng: &mut R) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 4 {
        return format!("{name}{}", rng.gen_range(0..9));
    }
    let mut out = chars.clone();
    match rng.gen_range(0..4) {
        0 => {
            // Swap two adjacent letters.
            let i = rng.gen_range(0..out.len() - 1);
            out.swap(i, i + 1);
        }
        1 => {
            // Double a letter.
            let i = rng.gen_range(0..out.len());
            out.insert(i, out[i]);
        }
        2 => {
            // Drop a letter.
            let i = rng.gen_range(1..out.len());
            out.remove(i);
        }
        _ => {
            // Look-alike substitution.
            for c in &mut out {
                match *c {
                    'o' => {
                        *c = '0';
                        break;
                    }
                    'l' => {
                        *c = '1';
                        break;
                    }
                    'e' => {
                        *c = '3';
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brands::BrandCorpus;
    use kyp_web::Browser;

    fn setup() -> (WebWorld, PhishGenerator, BrandCorpus) {
        (
            WebWorld::new(),
            PhishGenerator::new(2),
            BrandCorpus::standard(),
        )
    }

    #[test]
    fn phish_scrapes_and_harvests() {
        let (mut world, mut generator, corpus) = setup();
        for i in 0..20 {
            let site = generator.phish_site(
                &mut world,
                corpus.cyclic(i),
                Language::English,
                None,
                EvasionProfile::default(),
            );
            let visit = Browser::new(&world).visit(&site.start_url).unwrap();
            assert!(visit.input_count >= 2, "kit {i} has {}", visit.input_count);
        }
    }

    #[test]
    fn phish_points_at_target() {
        let (mut world, mut generator, corpus) = setup();
        let brand = corpus.by_name("paypago").unwrap();
        let mut pointed = 0;
        for _ in 0..10 {
            let site = generator.phish_site(
                &mut world,
                brand,
                Language::English,
                Some(HostingStrategy::Compromised),
                EvasionProfile::default(),
            );
            let visit = Browser::new(&world).visit(&site.start_url).unwrap();
            let hits = visit
                .logged_links
                .iter()
                .chain(&visit.href_links)
                .filter(|u| u.rdn().as_deref() == Some(brand.domain.as_str()))
                .count();
            if hits > 0 {
                pointed += 1;
            }
            assert_eq!(site.target.as_deref(), Some("paypago"));
        }
        assert!(pointed >= 8, "only {pointed}/10 kits referenced the target");
    }

    #[test]
    fn phisher_domain_differs_from_target() {
        let (mut world, mut generator, corpus) = setup();
        for i in 0..30 {
            let brand = corpus.cyclic(i);
            let site = generator.phish_site(
                &mut world,
                brand,
                Language::English,
                None,
                EvasionProfile::default(),
            );
            let visit = Browser::new(&world).visit(&site.start_url).unwrap();
            assert_ne!(
                visit.landing_url.rdn().as_deref(),
                Some(brand.domain.as_str()),
                "kit must not be hosted on the target"
            );
        }
    }

    #[test]
    fn brand_subdomain_strategy_spells_target_in_fqdn() {
        let (mut world, mut generator, corpus) = setup();
        let brand = corpus.by_name("paypago").unwrap();
        let site = generator.phish_site(
            &mut world,
            brand,
            Language::English,
            Some(HostingStrategy::BrandSubdomain),
            EvasionProfile::default(),
        );
        let visit = Browser::new(&world).visit(&site.start_url).unwrap();
        let fqdn = visit.landing_url.fqdn_str().unwrap();
        assert!(fqdn.starts_with("paypago.com."), "fqdn {fqdn}");
        assert_ne!(visit.landing_url.rdn().as_deref(), Some("paypago.com"));
    }

    #[test]
    fn ip_host_strategy() {
        let (mut world, mut generator, corpus) = setup();
        let site = generator.phish_site(
            &mut world,
            corpus.cyclic(3),
            Language::English,
            Some(HostingStrategy::IpHost),
            EvasionProfile::default(),
        );
        let visit = Browser::new(&world).visit(&site.start_url).unwrap();
        assert!(visit.landing_url.host().is_ip());
    }

    #[test]
    fn image_based_kit_hides_text_in_rendering() {
        let (mut world, mut generator, corpus) = setup();
        let brand = corpus.by_name("paypago").unwrap();
        let site = generator.phish_site(
            &mut world,
            brand,
            Language::English,
            Some(HostingStrategy::Compromised),
            EvasionProfile {
                image_based: true,
                ..EvasionProfile::default()
            },
        );
        let visit = Browser::new(&world).visit(&site.start_url).unwrap();
        assert!(!visit.text.to_lowercase().contains("paypago"));
        assert!(visit.screenshot_text.to_lowercase().contains("paypago"));
    }

    #[test]
    fn hintless_kit_has_no_target() {
        let (mut world, mut generator, corpus) = setup();
        let site = generator.phish_site(
            &mut world,
            corpus.cyclic(7),
            Language::English,
            Some(HostingStrategy::Compromised),
            EvasionProfile {
                no_brand_hint: true,
                ..EvasionProfile::default()
            },
        );
        assert_eq!(site.target, None);
        let visit = Browser::new(&world).visit(&site.start_url).unwrap();
        let brand = corpus.cyclic(7);
        assert!(!visit.text.to_lowercase().contains(&brand.name));
        assert!(!visit.title.to_lowercase().contains(&brand.name));
        // A hintless kit may keep generic navigation, but nothing on the
        // page — anchors or loaded resources — may reference the target.
        for link in visit.href_links.iter().chain(&visit.logged_links) {
            let s = link.as_str().to_lowercase();
            assert!(
                !s.contains(&brand.name) && !s.contains(&brand.domain),
                "hintless kit leaks target through link {s}"
            );
        }
    }

    #[test]
    fn typosquat_variants() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..20 {
            let squat = typosquat("paypago", &mut rng);
            assert_ne!(squat, "paypago");
            assert!(!squat.is_empty());
        }
        // Short names get a digit suffix.
        let squat = typosquat("abc", &mut rng);
        assert!(squat.starts_with("abc"));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let corpus = BrandCorpus::standard();
            let mut world = WebWorld::new();
            let mut generator = PhishGenerator::new(seed);
            (0..10)
                .map(|i| {
                    generator
                        .phish_site(
                            &mut world,
                            corpus.cyclic(i),
                            Language::English,
                            None,
                            EvasionProfile::default(),
                        )
                        .start_url
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }
}
