//! The synthetic brand corpus: the services phishing campaigns target.
//!
//! The paper's `phishBrand` set covers 126 distinct targets; this corpus
//! provides 130+ synthetic brands with realistic name shapes (single-word,
//! compound, hyphenated) across the sectors phishers actually hit
//! (payments, banking, email, social, e-commerce, ...). All names are
//! fabricated; structural realism is what matters to the features.

use serde::{Deserialize, Serialize};

/// Business sector of a brand; drives its page vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Sector {
    /// Online payments and money transfer.
    Payments,
    /// Retail banking.
    Banking,
    /// Web mail and messaging.
    Email,
    /// Social networking.
    Social,
    /// Online shopping.
    Ecommerce,
    /// Parcel delivery and logistics.
    Logistics,
    /// Streaming and gaming.
    Entertainment,
    /// Telecom and utilities.
    Telecom,
}

impl Sector {
    /// English vocabulary characteristic of the sector (brand pages and
    /// phish mimicking them sprinkle these terms).
    pub fn keywords(&self) -> &'static [&'static str] {
        match self {
            Sector::Payments => &["payment", "money", "transfer", "wallet", "balance", "send"],
            Sector::Banking => &["banking", "account", "credit", "loan", "mortgage", "branch"],
            Sector::Email => &["mail", "inbox", "message", "contact", "folder", "compose"],
            Sector::Social => &["friends", "profile", "share", "photo", "message", "follow"],
            Sector::Ecommerce => &["shop", "cart", "order", "shipping", "deal", "product"],
            Sector::Logistics => &[
                "parcel", "tracking", "delivery", "shipment", "courier", "pickup",
            ],
            Sector::Entertainment => &["stream", "watch", "play", "game", "movie", "series"],
            Sector::Telecom => &["mobile", "plan", "data", "roaming", "contract", "phone"],
        }
    }
}

/// One brand: a service with a registered domain phishers impersonate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Brand {
    /// The mld of the brand's domain, e.g. `paypago`.
    pub name: String,
    /// Human display name, e.g. `PayPago`.
    pub display: String,
    /// The registered domain, e.g. `paypago.com`.
    pub domain: String,
    /// Business sector.
    pub sector: Sector,
}

impl Brand {
    fn new(name: &str, display: &str, suffix: &str, sector: Sector) -> Self {
        Brand {
            name: name.to_owned(),
            display: display.to_owned(),
            domain: format!("{name}.{suffix}"),
            sector,
        }
    }

    /// The brand's terms as they appear after canonicalisation (e.g.
    /// `pay-safe` → `["pay", "safe"]`).
    pub fn terms(&self) -> Vec<String> {
        kyp_text::extract_terms(&self.display)
    }
}

/// The standard brand corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrandCorpus {
    brands: Vec<Brand>,
}

impl BrandCorpus {
    /// Builds the standard 130-brand corpus (deterministic).
    pub fn standard() -> Self {
        let mut brands = Vec::new();

        // Hand-shaped anchor brands covering the common name shapes.
        let anchors: &[(&str, &str, &str, Sector)] = &[
            ("paypago", "PayPago", "com", Sector::Payments),
            ("moneygrid", "MoneyGrid", "com", Sector::Payments),
            ("swiftcoin", "SwiftCoin", "io", Sector::Payments),
            ("bankofarcadia", "Bank of Arcadia", "com", Sector::Banking),
            ("northbank", "NorthBank", "com", Sector::Banking),
            (
                "creditunion-plus",
                "CreditUnion Plus",
                "org",
                Sector::Banking,
            ),
            ("firstmeridian", "First Meridian", "com", Sector::Banking),
            ("mailhaven", "MailHaven", "com", Sector::Email),
            ("postalo", "Postalo", "net", Sector::Email),
            ("chattersphere", "ChatterSphere", "com", Sector::Social),
            ("linkloop", "LinkLoop", "com", Sector::Social),
            ("shoporama", "Shoporama", "com", Sector::Ecommerce),
            ("megamarket", "MegaMarket", "com", Sector::Ecommerce),
            ("auctionline", "AuctionLine", "com", Sector::Ecommerce),
            ("parcelwing", "ParcelWing", "com", Sector::Logistics),
            ("expressroute", "ExpressRoute", "com", Sector::Logistics),
            ("streamvale", "StreamVale", "com", Sector::Entertainment),
            ("gamerealm", "GameRealm", "com", Sector::Entertainment),
            ("telenova", "TeleNova", "com", Sector::Telecom),
            ("mobiline", "MobiLine", "com", Sector::Telecom),
        ];
        for (name, display, suffix, sector) in anchors {
            brands.push(Brand::new(name, display, suffix, *sector));
        }

        // Programmatic brands: first × second part combinations, cycled
        // through sectors and suffixes for variety.
        const FIRST: [&str; 11] = [
            "pay", "bank", "shop", "mail", "cloud", "trade", "coin", "swift", "nova", "prime",
            "metro",
        ];
        const SECOND: [&str; 10] = [
            "pal", "zone", "hub", "line", "port", "center", "express", "direct", "one", "go",
        ];
        const SECTORS: [Sector; 8] = [
            Sector::Payments,
            Sector::Banking,
            Sector::Email,
            Sector::Social,
            Sector::Ecommerce,
            Sector::Logistics,
            Sector::Entertainment,
            Sector::Telecom,
        ];
        const SUFFIXES: [&str; 5] = ["com", "net", "io", "co", "org"];
        for (i, first) in FIRST.iter().enumerate() {
            for (j, second) in SECOND.iter().enumerate() {
                let name = format!("{first}{second}");
                if brands.iter().any(|b: &Brand| b.name == name) {
                    continue;
                }
                let display = format!("{}{}", capitalize(first), capitalize(second));
                let sector = SECTORS[(i * SECOND.len() + j) % SECTORS.len()];
                let suffix = SUFFIXES[(i + j) % SUFFIXES.len()];
                brands.push(Brand::new(&name, &display, suffix, sector));
            }
        }
        BrandCorpus { brands }
    }

    /// All brands.
    pub fn brands(&self) -> &[Brand] {
        &self.brands
    }

    /// Number of brands.
    pub fn len(&self) -> usize {
        self.brands.len()
    }

    /// `true` when the corpus is empty (never for `standard`).
    pub fn is_empty(&self) -> bool {
        self.brands.is_empty()
    }

    /// Brand at index `i % len` (convenient cyclic access for generators).
    pub fn cyclic(&self, i: usize) -> &Brand {
        &self.brands[i % self.brands.len()]
    }

    /// Finds a brand by mld name.
    pub fn by_name(&self, name: &str) -> Option<&Brand> {
        self.brands.iter().find(|b| b.name == name)
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_large_enough_for_phishbrand() {
        let c = BrandCorpus::standard();
        assert!(c.len() >= 126, "need ≥126 targets, got {}", c.len());
        assert!(!c.is_empty());
    }

    #[test]
    fn names_are_unique() {
        let c = BrandCorpus::standard();
        let names: std::collections::HashSet<&str> =
            c.brands().iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn domains_parse_with_brand_mld() {
        let c = BrandCorpus::standard();
        for b in c.brands() {
            let url = kyp_url::Url::parse(&format!("https://{}/", b.domain)).unwrap();
            assert_eq!(url.mld(), Some(b.name.as_str()), "{}", b.domain);
        }
    }

    #[test]
    fn compound_brand_terms() {
        let c = BrandCorpus::standard();
        let boa = c.by_name("bankofarcadia").unwrap();
        assert_eq!(boa.terms(), ["bank", "arcadia"]);
        let pp = c.by_name("paypago").unwrap();
        assert_eq!(pp.terms(), ["paypago"]);
    }

    #[test]
    fn cyclic_access_wraps() {
        let c = BrandCorpus::standard();
        assert_eq!(c.cyclic(0).name, c.cyclic(c.len()).name);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            BrandCorpus::standard().brands().len(),
            BrandCorpus::standard().brands().len()
        );
        assert_eq!(
            BrandCorpus::standard().brands()[42],
            BrandCorpus::standard().brands()[42]
        );
    }

    #[test]
    fn sector_keywords_nonempty() {
        for s in [
            Sector::Payments,
            Sector::Banking,
            Sector::Email,
            Sector::Social,
            Sector::Ecommerce,
            Sector::Logistics,
            Sector::Entertainment,
            Sector::Telecom,
        ] {
            assert!(s.keywords().len() >= 4);
        }
    }
}
