#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Synthetic dataset generation for the *Know Your Phish* reproduction.
//!
//! The paper evaluates on PhishTank feeds and Intel Security URL lists
//! (Table V) — ephemeral, proprietary data that cannot ship with an
//! offline reproduction. This crate builds the closest synthetic
//! equivalent: a deterministic multilingual web of legitimate sites and
//! phishing kits whose *structural* statistics follow the regularities the
//! paper documents (Sections II-A, III-A, VII-B/C):
//!
//! - legitimate sites register brand-spelling domains, link mostly to
//!   themselves, and reuse their brand terms coherently across text,
//!   title, domain and links;
//! - phishing kits mimic a target's content but are hosted on unrelated
//!   or obfuscated domains, load content from the target, redirect more,
//!   and harvest credentials through input fields;
//! - documented evasions exist in the tail: IP-hosted URLs, minimal-text
//!   pages, image-based pages, typosquatting.
//!
//! Everything is seeded ([`rand_chacha`]) so datasets regenerate bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use kyp_datagen::{CampaignConfig, Corpus};
//!
//! let corpus = Corpus::generate(&CampaignConfig::tiny());
//! assert!(corpus.phish_test.len() > 10);
//! assert!(corpus.leg_train.len() > 50);
//! ```

pub mod brands;
pub mod campaign;
pub mod lexicon;
pub mod phish;
pub(crate) mod portal;
pub mod sites;
pub mod stats;

pub use brands::{Brand, BrandCorpus, Sector};
pub use campaign::{CampaignConfig, Corpus, PhishRecord};
pub use lexicon::Language;
pub use phish::{EvasionProfile, HostingStrategy, PhishGenerator, PhishSite};
pub use sites::{SiteGenerator, SiteInfo, SiteKind};
