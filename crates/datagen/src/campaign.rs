//! Dataset campaigns mirroring the paper's Table V.
//!
//! A [`Corpus`] bundles everything an experiment needs: the simulated web,
//! the domain ranking (Alexa substitute), the search-engine index over the
//! legitimate corpus, and the URL lists of each dataset:
//!
//! | paper set    | here                | paper size |
//! |--------------|---------------------|------------|
//! | `phishTrain` | `phish_train`       | 1,036      |
//! | `phishTest`  | `phish_test`        | 1,216      |
//! | `phishBrand` | `phish_brand`       | 600 / 126 targets |
//! | `legTrain`   | `leg_train`         | 4,531      |
//! | `English`    | `language_tests[0]` | 100,000    |
//! | fr/de/it/pt/es | `language_tests[1..]` | 10,000 each |
//!
//! Sizes scale linearly via [`CampaignConfig::scaled`] so experiments can
//! trade fidelity for runtime; the class ratios (85–125 legitimate per
//! phish at full scale) are preserved.

use crate::brands::BrandCorpus;
use crate::lexicon::Language;
use crate::phish::{EvasionProfile, HostingStrategy, PhishGenerator};
use crate::sites::SiteGenerator;
use kyp_search::SearchEngine;
use kyp_web::{DomainRanker, WebWorld};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Sizes and seed of a corpus generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; every sub-generator derives from it.
    pub seed: u64,
    /// Phishing training set size (paper: 1,036).
    pub phish_train: usize,
    /// Phishing test set size (paper: 1,216).
    pub phish_test: usize,
    /// Target-identification set size (paper: 600).
    pub phish_brand: usize,
    /// Legitimate (English) training set size (paper: 4,531).
    pub leg_train: usize,
    /// English test set size (paper: 100,000).
    pub english_test: usize,
    /// Per-language test set size for fr/de/it/pt/es (paper: 10,000).
    pub other_language_test: usize,
}

impl CampaignConfig {
    /// The paper's full Table V sizes (heavy: ~150k pages).
    pub fn paper_scale() -> Self {
        CampaignConfig {
            seed: 2015,
            phish_train: 1_036,
            phish_test: 1_216,
            phish_brand: 600,
            leg_train: 4_531,
            english_test: 100_000,
            other_language_test: 10_000,
        }
    }

    /// Table V scaled by `fraction` (class ratios preserved; minimums keep
    /// every set non-trivial).
    pub fn scaled(fraction: f64) -> Self {
        let full = Self::paper_scale();
        let s = |n: usize, min: usize| (((n as f64) * fraction).round() as usize).max(min);
        CampaignConfig {
            seed: full.seed,
            phish_train: s(full.phish_train, 30),
            phish_test: s(full.phish_test, 30),
            phish_brand: s(full.phish_brand, 20),
            leg_train: s(full.leg_train, 100),
            english_test: s(full.english_test, 200),
            other_language_test: s(full.other_language_test, 50),
        }
    }

    /// A minimal corpus for unit tests and doc examples.
    pub fn tiny() -> Self {
        CampaignConfig {
            seed: 7,
            phish_train: 30,
            phish_test: 30,
            phish_brand: 24,
            leg_train: 120,
            english_test: 150,
            other_language_test: 40,
        }
    }
}

/// One phishing URL with its ground-truth target.
#[derive(Debug, Clone, PartialEq)]
pub struct PhishRecord {
    /// The URL distributed to victims.
    pub url: String,
    /// Ground-truth target mld, `None` for hint-less kits (the paper's
    /// "unknown target" pages).
    pub target: Option<String>,
}

/// A fully generated evaluation corpus (see the module docs).
#[derive(Debug)]
pub struct Corpus {
    /// The simulated web hosting every page.
    pub world: WebWorld,
    /// The offline popularity ranking (Alexa substitute).
    pub ranker: DomainRanker,
    /// Search engine indexed over the legitimate corpus only.
    pub engine: SearchEngine,
    /// The brand corpus used for targets and brand sites.
    pub brands: BrandCorpus,
    /// Phishing training URLs (paper `phishTrain`).
    pub phish_train: Vec<PhishRecord>,
    /// Phishing test URLs, collected "later" (paper `phishTest`).
    pub phish_test: Vec<PhishRecord>,
    /// Target-identification set with known targets (paper `phishBrand`).
    pub phish_brand: Vec<PhishRecord>,
    /// Legitimate training URLs (paper `legTrain`).
    pub leg_train: Vec<String>,
    /// Per-language legitimate test sets, English first.
    pub language_tests: Vec<(Language, Vec<String>)>,
}

impl Corpus {
    /// Generates a corpus. Deterministic for a given config.
    pub fn generate(config: &CampaignConfig) -> Corpus {
        let mut world = WebWorld::new();
        let brands = BrandCorpus::standard();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        let mut engine = SearchEngine::new();
        let mut legit_rdns: Vec<String> = Vec::new();

        // --- Brand sites: the anchor legitimate corpus, always indexed.
        let mut site_gen = SiteGenerator::new(config.seed.wrapping_add(1));
        let mut brand_urls: Vec<String> = Vec::new();
        for brand in brands.brands() {
            let info = site_gen.brand_site(&mut world, brand, Language::English);
            engine.index_page(&info.rdn, &info.mld, &info.index_text);
            legit_rdns.push(info.rdn.clone());
            brand_urls.push(info.start_url);
        }

        // --- Legitimate training set (English): generic + brand mix.
        let mut leg_train = Vec::with_capacity(config.leg_train);
        for i in 0..config.leg_train {
            if i % 12 == 0 {
                // Revisit a brand site (popular sites recur in URL feeds).
                leg_train.push(brand_urls[i / 12 % brand_urls.len()].clone());
            } else {
                let info = site_gen.generic_site(&mut world, Language::English);
                engine.index_page(&info.rdn, &info.mld, &info.index_text);
                legit_rdns.push(info.rdn.clone());
                leg_train.push(info.start_url);
            }
        }

        // --- Language test sets.
        let mut language_tests = Vec::new();
        for (li, lang) in Language::ALL.into_iter().enumerate() {
            let n = if lang == Language::English {
                config.english_test
            } else {
                config.other_language_test
            };
            let mut lang_gen = SiteGenerator::new(config.seed.wrapping_add(10 + li as u64));
            let mut urls = Vec::with_capacity(n);
            for i in 0..n {
                if i % 25 == 0 && lang != Language::English {
                    // Localised brand sites: brands serve their customers
                    // in their own language.
                    let brand = brands.cyclic(i / 25 + li * 31);
                    let info = lang_gen.brand_site(&mut world, brand, lang);
                    engine.index_page(&info.rdn, &info.mld, &info.index_text);
                    urls.push(info.start_url);
                } else if i % 10 == 0 {
                    urls.push(brand_urls[(i / 10 + li * 13) % brand_urls.len()].clone());
                } else {
                    let info = lang_gen.generic_site(&mut world, lang);
                    engine.index_page(&info.rdn, &info.mld, &info.index_text);
                    legit_rdns.push(info.rdn.clone());
                    urls.push(info.start_url);
                }
            }
            language_tests.push((lang, urls));
        }

        // --- Domain ranking: brands at the top, then ~40% of generic
        // legitimate domains (the paper reports 43.5% of test RDNs ranked).
        let mut ranked: Vec<String> = brands.brands().iter().map(|b| b.domain.clone()).collect();
        let mut generic: Vec<String> = legit_rdns
            .iter()
            .filter(|r| !ranked.contains(r))
            .cloned()
            .collect();
        generic.shuffle(&mut rng);
        generic.truncate((generic.len() as f64 * 0.4) as usize);
        ranked.extend(generic);
        let ranker = DomainRanker::from_ranked(ranked);

        // --- Phishing campaigns: three "collection campaigns" with
        // different seeds (the paper's temporally separated feeds).
        // Compromised kits may hijack generic legitimate domains (some of
        // which are popularity-ranked), removing the easy URL signals.
        let mut pool = legit_rdns.clone();
        pool.shuffle(&mut rng);
        pool.truncate(300.min(pool.len()));
        let phish_train = Self::phish_campaign(
            &mut world,
            &brands,
            &pool,
            config.seed.wrapping_add(100),
            config.phish_train,
            false,
        );
        let phish_test = Self::phish_campaign(
            &mut world,
            &brands,
            &pool,
            config.seed.wrapping_add(200),
            config.phish_test,
            false,
        );
        let phish_brand = Self::phish_campaign(
            &mut world,
            &brands,
            &pool,
            config.seed.wrapping_add(300),
            config.phish_brand,
            true,
        );

        Corpus {
            world,
            ranker,
            engine,
            brands,
            phish_train,
            phish_test,
            phish_brand,
            leg_train,
            language_tests,
        }
    }

    /// Generates one phishing collection campaign.
    ///
    /// `for_brand_eval` biases the mix for the `phishBrand` replica: every
    /// brand appears as a target and ~3% of kits are hint-less (the
    /// paper's 17/600 unknown-target pages).
    fn phish_campaign(
        world: &mut WebWorld,
        brands: &BrandCorpus,
        compromised_pool: &[String],
        seed: u64,
        count: usize,
        for_brand_eval: bool,
    ) -> Vec<PhishRecord> {
        let mut generator = PhishGenerator::new(seed);
        generator.set_compromised_pool(compromised_pool.to_vec());
        generator.set_decoy_brands(brands.brands().to_vec());
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1));
        let mut records = Vec::with_capacity(count);
        for i in 0..count {
            let brand = brands.cyclic(if for_brand_eval {
                i // cycle so every brand occurs
            } else {
                rng.gen_range(0..brands.len() * 3) // popular brands repeat
            });
            // Phish follow their victims' languages, mostly English.
            let language = if rng.gen_bool(0.7) {
                Language::English
            } else {
                *[
                    Language::French,
                    Language::German,
                    Language::Italian,
                    Language::Portuguese,
                    Language::Spanish,
                ]
                .choose(&mut rng)
                .expect("languages")
            };
            let evasion = EvasionProfile {
                minimal_text: rng.gen_bool(0.05),
                image_based: rng.gen_bool(0.03),
                typo_terms: rng.gen_bool(0.03),
                no_brand_hint: rng.gen_bool(if for_brand_eval { 0.03 } else { 0.06 }),
                self_contained: rng.gen_bool(0.18),
            };
            // Hosting: realistic mix, with the paper's ~2% IP tail.
            let hosting = if rng.gen_bool(0.02) {
                Some(HostingStrategy::IpHost)
            } else {
                None
            };
            let site = generator.phish_site(world, brand, language, hosting, evasion);
            records.push(PhishRecord {
                url: site.start_url,
                target: site.target,
            });
        }
        records
    }

    /// The English test set (always present).
    pub fn english_test(&self) -> &[String] {
        &self.language_tests[0].1
    }

    /// The four named scrape bundles in their canonical order —
    /// `(name, urls, is_phish)` — shared by the jsonl and store output
    /// pipelines so that both write (and later read back) the exact
    /// same pages in the exact same order.
    pub fn scrape_bundles(&self) -> Vec<(&'static str, Vec<String>, bool)> {
        vec![
            (
                "phish_train",
                self.phish_train.iter().map(|r| r.url.clone()).collect(),
                true,
            ),
            (
                "phish_test",
                self.phish_test.iter().map(|r| r.url.clone()).collect(),
                true,
            ),
            ("leg_train", self.leg_train.clone(), false),
            ("leg_test", self.english_test().to_vec(), false),
        ]
    }

    /// Total number of hosted pages/redirects.
    pub fn world_len(&self) -> usize {
        self.world.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kyp_web::Browser;

    fn corpus() -> Corpus {
        Corpus::generate(&CampaignConfig::tiny())
    }

    #[test]
    fn sizes_match_config() {
        let c = corpus();
        let cfg = CampaignConfig::tiny();
        assert_eq!(c.phish_train.len(), cfg.phish_train);
        assert_eq!(c.phish_test.len(), cfg.phish_test);
        assert_eq!(c.phish_brand.len(), cfg.phish_brand);
        assert_eq!(c.leg_train.len(), cfg.leg_train);
        assert_eq!(c.english_test().len(), cfg.english_test);
        assert_eq!(c.language_tests.len(), 6);
        assert_eq!(c.language_tests[3].1.len(), cfg.other_language_test);
    }

    #[test]
    fn every_url_scrapes() {
        let c = corpus();
        let browser = Browser::new(&c.world);
        for r in c
            .phish_train
            .iter()
            .chain(&c.phish_test)
            .chain(&c.phish_brand)
        {
            browser
                .visit(&r.url)
                .unwrap_or_else(|e| panic!("{}: {e}", r.url));
        }
        for u in c.leg_train.iter().chain(c.english_test()) {
            browser.visit(u).unwrap_or_else(|e| panic!("{u}: {e}"));
        }
        for (lang, urls) in &c.language_tests {
            for u in urls {
                browser
                    .visit(u)
                    .unwrap_or_else(|e| panic!("{} {u}: {e}", lang.name()));
            }
        }
    }

    #[test]
    fn brand_targets_are_known_brands() {
        let c = corpus();
        for r in &c.phish_brand {
            if let Some(t) = &r.target {
                assert!(c.brands.by_name(t).is_some(), "unknown target {t}");
            }
        }
        // Most phishBrand entries have a target.
        let with_target = c.phish_brand.iter().filter(|r| r.target.is_some()).count();
        assert!(with_target >= c.phish_brand.len() * 8 / 10);
    }

    #[test]
    fn engine_knows_brand_sites() {
        let c = corpus();
        let hits = c.engine.query_domain("paypago.com", 3);
        assert!(!hits.is_empty());
    }

    #[test]
    fn ranker_covers_brands_not_phishers() {
        let c = corpus();
        assert!(c.ranker.contains("paypago.com"));
        let browser = Browser::new(&c.world);
        // Phisher landing RDNs must be unranked.
        let v = browser.visit(&c.phish_test[0].url).unwrap();
        if let Some(rdn) = v.landing_url.rdn() {
            assert!(!c.ranker.contains(&rdn), "phisher rdn {rdn} ranked");
        }
    }

    #[test]
    fn scrape_bundles_follow_generation_order() {
        let c = corpus();
        let bundles = c.scrape_bundles();
        let names: Vec<&str> = bundles.iter().map(|(n, _, _)| *n).collect();
        assert_eq!(
            names,
            ["phish_train", "phish_test", "leg_train", "leg_test"]
        );
        assert_eq!(bundles[0].1[0], c.phish_train[0].url);
        assert_eq!(bundles[2].1, c.leg_train);
        assert!(bundles[0].2 && bundles[1].2);
        assert!(!bundles[2].2 && !bundles[3].2);
    }

    #[test]
    fn deterministic() {
        let a = corpus();
        let b = corpus();
        assert_eq!(a.phish_test[5].url, b.phish_test[5].url);
        assert_eq!(a.leg_train[17], b.leg_train[17]);
        assert_eq!(a.world_len(), b.world_len());
    }

    #[test]
    fn train_and_test_campaigns_differ() {
        let c = corpus();
        let train: std::collections::HashSet<&str> =
            c.phish_train.iter().map(|r| r.url.as_str()).collect();
        let overlap = c
            .phish_test
            .iter()
            .filter(|r| train.contains(r.url.as_str()))
            .count();
        assert_eq!(overlap, 0, "campaigns must not share URLs");
    }
}
